(* dbmeta — the command-line face of the library: a Datalog engine, a
   schema-design tool, a schedule analyzer, and a DIMACS SAT solver. *)

open Cmdliner

let version = "1.9.0"

let read_file = Support.Io.read_file

(* Bad user input (unparseable files, queries, schedules, ill-typed
   plans, unsafe programs) is reported on stderr and exits 2; only
   genuine bugs may escape as a backtrace. *)
let input_error_to_exit f =
  let fail msg =
    Printf.eprintf "dbmeta: %s\n" msg;
    2
  in
  try f () with
  | Datalog.Parser.Parse_error msg
  | Calculus.Parser.Parse_error msg
  | Relational.Query_parser.Parse_error msg
  | Relational.Csv.Parse_error msg
  | Datalog.Checks.Unsafe_rule msg
  | Datalog.Checks.Not_stratifiable msg
  | Relational.Schema.Schema_error msg
  | Relational.Algebra.Type_error msg
  | Relational.Value.Type_clash msg
  | Invalid_argument msg
  | Failure msg ->
      fail msg
  | Relational.Database.Unknown_relation name ->
      fail (Printf.sprintf "unknown relation %S" name)
  | Relational.Codec.Corrupt msg ->
      fail (Printf.sprintf "corrupt record: %s" msg)
  | Storage.Pager.Corrupt msg | Storage.Wal.Corrupt msg ->
      fail (Printf.sprintf "corrupt database: %s" msg)
  | Storage.Engine.Unknown_table name ->
      fail (Printf.sprintf "no table %S in the database" name)
  | Planner.Indexes.Index_error msg -> fail msg
  | Sys_error msg -> fail msg

let load_tables tables =
  List.fold_left
    (fun db spec ->
      match String.index_opt spec '=' with
      | Some i ->
          let name = String.sub spec 0 i in
          let path = String.sub spec (i + 1) (String.length spec - i - 1) in
          Relational.Database.add db name (Relational.Csv.load path)
      | None ->
          raise
            (Invalid_argument
               (Printf.sprintf "--table expects name=file.csv, got %S" spec)))
    Relational.Database.empty tables

(* --- observability plumbing -------------------------------------------------- *)

(* [--metrics] prints the registry to stderr after the command, so the
   metrics block composes with (never corrupts) the command's stdout:
   `dbmeta db exec db --metrics=json 2>metrics.json` just works. *)
let metrics_arg =
  Arg.(value
       & opt ~vopt:(Some `Text)
           (some (enum [ ("text", `Text); ("json", `Json) ]))
           None
       & info [ "metrics" ] ~docv:"FORMAT"
           ~doc:"Collect runtime metrics and print the registry to stderr \
                 after the command: $(b,--metrics) for a text table, \
                 $(b,--metrics=json) for stable machine-readable JSON.  See \
                 docs/OBSERVABILITY.md for the metric name catalogue.")

let registry_of = function
  | None -> Obs.Registry.noop
  | Some _ -> Obs.Registry.create ()

let dump_metrics fmt registry =
  match fmt with
  | None -> ()
  | Some `Text -> prerr_string (Obs.Registry.to_text registry)
  | Some `Json -> prerr_string (Obs.Registry.to_json registry)

(* --- datalog run ----------------------------------------------------------- *)

let datalog_run file query engine explain metrics =
  input_error_to_exit @@ fun () ->
  let program = Datalog.Parser.parse_program (read_file file) in
  Datalog.Checks.check_safety program;
  let edb = Datalog.Facts.empty in
  let registry = registry_of metrics in
  (* the datalog.* instruments live in the semi-naive evaluator; --metrics
     therefore reports empty counters under --engine=naive *)
  let seminaive prog edb =
    fst (Datalog.Seminaive.eval_with_stats ~metrics:registry prog edb)
  in
  let code =
    match query with
    | None ->
        let result =
          match engine with
          | `Naive -> Datalog.Naive.eval program edb
          | `Seminaive | `Magic -> seminaive program edb
        in
        let idb = Datalog.Ast.idb_predicates program in
        List.iter
          (fun pred ->
            Datalog.Facts.Tuple_set.iter
              (fun tup ->
                Printf.printf "%s(%s).\n" pred
                  (String.concat ", "
                     (Array.to_list
                        (Array.map Relational.Value.to_literal tup))))
              (Datalog.Facts.get result pred))
          idb;
        0
    | Some q ->
        let q = Datalog.Parser.parse_query q in
        let answers =
          match engine with
          | `Naive -> Datalog.Naive.query program edb q
          | `Seminaive ->
              Datalog.Naive.filter_by_query
                (Datalog.Facts.get (seminaive program edb) q.Datalog.Ast.pred)
                q
          | `Magic -> Datalog.Magic.query program edb q
        in
        let provenance =
          if explain then Some (snd (Datalog.Provenance.eval program edb))
          else None
        in
        Datalog.Facts.Tuple_set.iter
          (fun tup ->
            Printf.printf "%s(%s).\n" q.Datalog.Ast.pred
              (String.concat ", "
                 (Array.to_list (Array.map Relational.Value.to_literal tup)));
            match provenance with
            | Some store ->
                print_string (Datalog.Provenance.explain store q.Datalog.Ast.pred tup)
            | None -> ())
          answers;
        0
  in
  dump_metrics metrics registry;
  code

let datalog_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Datalog program (rules and facts).")
  in
  let query =
    Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY"
           ~doc:"Query atom, e.g. 'path(1, X)'. Without it, every IDB \
                 predicate is dumped.")
  in
  let engine =
    Arg.(value
         & opt (enum [ ("naive", `Naive); ("seminaive", `Seminaive); ("magic", `Magic) ])
             `Seminaive
         & info [ "e"; "engine" ] ~docv:"ENGINE"
             ~doc:"Evaluation strategy: naive, seminaive, or magic (magic \
                   requires a positive program and a query).")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Print a proof tree under each answer (why-provenance).")
  in
  Cmd.v
    (Cmd.info "datalog" ~version ~doc:"Evaluate a Datalog program")
    Term.(const datalog_run $ file $ query $ engine $ explain $ metrics_arg)

(* --- query ------------------------------------------------------------------- *)

let query_run text tables optimize =
  input_error_to_exit @@ fun () ->
  let db = load_tables tables in
  let expr = Relational.Query_parser.parse text in
  let catalog = Relational.Algebra.catalog_of_database db in
  let expr =
    if optimize then
      Relational.Optimizer.optimize catalog
        (Relational.Optimizer.stats_of_database db)
        expr
    else expr
  in
  if optimize then
    Printf.printf "plan: %s\n" (Relational.Algebra.to_string expr);
  print_string (Relational.Relation.to_string (Relational.Eval.eval db expr));
  0

let query_cmd =
  let text =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Algebra expression, e.g. \
                 'project[sname](select[grade >= 85](students join enrolled))'.")
  in
  let tables =
    Arg.(value & opt_all string [] & info [ "t"; "table" ] ~docv:"NAME=FILE"
           ~doc:"Bind a relation name to a CSV file (repeatable). The CSV \
                 header carries the schema as name:type pairs.")
  in
  let optimize =
    Arg.(value & flag & info [ "O"; "optimize" ]
           ~doc:"Run the optimizer and print the chosen plan.")
  in
  Cmd.v
    (Cmd.info "query" ~version ~doc:"Evaluate a relational algebra query over CSV tables")
    Term.(const query_run $ text $ tables $ optimize)

(* --- calculus ----------------------------------------------------------------- *)

let calculus_run text tables interpret show_plan =
  input_error_to_exit @@ fun () ->
  let q = Calculus.Parser.parse_query text in
  let db = load_tables tables in
  Printf.printf "query: %s\n" (Calculus.Formula.query_to_string q);
  Printf.printf "safety: %s\n"
    (Calculus.Safety.explain (Calculus.Safety.is_safe_range q));
  let result =
    if interpret then Calculus.Active_domain.eval db q
    else begin
      let plan = Calculus.To_algebra.translate_query db q in
      if show_plan then
        Printf.printf "plan: %s\n" (Relational.Algebra.to_string plan);
      Relational.Eval.eval db plan
    end
  in
  print_string (Relational.Relation.to_string result);
  0

let calculus_cmd =
  let text =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Calculus query, e.g. \
                 '{x | exists y. edge(x, y) and not edge(x, x)}'.")
  in
  let tables =
    Arg.(value & opt_all string [] & info [ "t"; "table" ] ~docv:"NAME=FILE"
           ~doc:"Bind a relation name to a CSV file (repeatable).")
  in
  let interpret =
    Arg.(value & flag & info [ "interpret" ]
           ~doc:"Use the naive active-domain interpreter instead of \
                 compiling to algebra (Codd's theorem).")
  in
  let show_plan =
    Arg.(value & flag & info [ "plan" ] ~doc:"Print the compiled algebra plan.")
  in
  Cmd.v
    (Cmd.info "calculus" ~version ~doc:"Evaluate a relational calculus query over CSV tables")
    Term.(const calculus_run $ text $ tables $ interpret $ show_plan)

(* --- design ------------------------------------------------------------------ *)

let design_run attrs fds =
  input_error_to_exit @@ fun () ->
  let universe = Dependencies.Attrs.of_string attrs in
  let fds = Dependencies.Fd.set_of_string fds in
  let scheme = { Dependencies.Normal_forms.name = "r"; attrs = universe; fds } in
  Printf.printf "scheme: %s\n"
    (Dependencies.Normal_forms.scheme_to_string scheme);
  let keys = Dependencies.Fd.candidate_keys ~universe fds in
  Printf.printf "candidate keys: %s\n"
    (String.concat ", " (List.map Dependencies.Attrs.to_string keys));
  Printf.printf "minimal cover: %s\n"
    (Dependencies.Fd.set_to_string (Dependencies.Fd.minimal_cover fds));
  Printf.printf "2NF: %b  3NF: %b  BCNF: %b\n"
    (Dependencies.Normal_forms.is_2nf scheme)
    (Dependencies.Normal_forms.is_3nf scheme)
    (Dependencies.Normal_forms.is_bcnf scheme);
  List.iter
    (fun v ->
      Printf.printf "  BCNF violation: %s (%s)\n"
        (Dependencies.Fd.to_string v.Dependencies.Normal_forms.fd)
        v.Dependencies.Normal_forms.reason)
    (Dependencies.Normal_forms.violations_bcnf scheme);
  let bcnf = Dependencies.Normal_forms.bcnf_decompose scheme in
  Printf.printf "BCNF decomposition (lossless %b, dep-preserving %b):\n"
    (Dependencies.Normal_forms.lossless scheme bcnf)
    (Dependencies.Normal_forms.dependency_preserving scheme bcnf);
  List.iter
    (fun s ->
      Printf.printf "  %s\n" (Dependencies.Normal_forms.scheme_to_string s))
    bcnf;
  let threenf = Dependencies.Normal_forms.synthesize_3nf scheme in
  Printf.printf "3NF synthesis (lossless %b, dep-preserving %b):\n"
    (Dependencies.Normal_forms.lossless scheme threenf)
    (Dependencies.Normal_forms.dependency_preserving scheme threenf);
  List.iter
    (fun s ->
      Printf.printf "  %s\n" (Dependencies.Normal_forms.scheme_to_string s))
    threenf;
  0

let design_cmd =
  let attrs =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTRS"
           ~doc:"Attributes, e.g. 'ABC' or 'city,street,zip'.")
  in
  let fds =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FDS"
           ~doc:"Functional dependencies, e.g. 'AB -> C; C -> A'.")
  in
  Cmd.v
    (Cmd.info "design" ~version ~doc:"Analyze and normalize a relation scheme")
    Term.(const design_run $ attrs $ fds)

(* --- schedule ------------------------------------------------------------------ *)

let schedule_run text =
  input_error_to_exit @@ fun () ->
  let s = Transactions.Schedule.of_string text in
  Printf.printf "schedule: %s\n" (Transactions.Schedule.to_string s);
  Printf.printf "well-formed: %b\n" (Transactions.Schedule.well_formed s);
  Printf.printf "conflict-serializable: %b\n"
    (Transactions.Serializability.is_conflict_serializable s);
  (match Transactions.Serializability.conflict_equivalent_serial_order s with
  | Some order ->
      Printf.printf "equivalent serial order: %s\n"
        (String.concat " < " (List.map string_of_int order))
  | None -> ());
  if List.length (Transactions.Schedule.txns s) <= 8 then
    Printf.printf "view-serializable: %b\n"
      (Transactions.Serializability.is_view_serializable s);
  Printf.printf "recoverable: %b\navoids cascading aborts: %b\nstrict: %b\n"
    (Transactions.Serializability.is_recoverable s)
    (Transactions.Serializability.avoids_cascading_aborts s)
    (Transactions.Serializability.is_strict s);
  0

let schedule_cmd =
  let text =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCHEDULE"
           ~doc:"History, e.g. 'r1(x) w2(x) c1 c2'.")
  in
  Cmd.v
    (Cmd.info "schedule" ~version ~doc:"Analyze a transaction schedule")
    Term.(const schedule_run $ text)

(* --- sat ------------------------------------------------------------------------- *)

let sat_run file =
  input_error_to_exit @@ fun () ->
  let cnf = Sat.Cnf.of_dimacs (read_file file) in
  (match Sat.Dpll.solve cnf with
  | Sat.Dpll.Sat assignment ->
      print_endline "s SATISFIABLE";
      let lits =
        List.map (fun (v, b) -> if b then v else -v) assignment
        |> List.sort (fun a b -> Int.compare (abs a) (abs b))
      in
      Printf.printf "v %s 0\n" (String.concat " " (List.map string_of_int lits))
  | Sat.Dpll.Unsat -> print_endline "s UNSATISFIABLE");
  0

let sat_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"CNF in DIMACS format.")
  in
  Cmd.v (Cmd.info "sat" ~version ~doc:"Decide a DIMACS CNF with DPLL")
    Term.(const sat_run $ file)

(* --- db: the persistent storage engine --------------------------------------- *)

let crash_message path at =
  Printf.printf "simulated crash at: %s\n" at;
  Printf.printf
    "the database was left as the crash left it; run 'dbmeta db recover \
     %s' (or any other db command) to repair it\n"
    path;
  0

let dist_crash_message path shards at =
  Printf.printf "simulated crash at: %s\n" at;
  Printf.printf
    "the shards were left as the crash left them; run 'dbmeta db recover \
     %s --shards=%d' to resolve in-doubt transactions and repair them\n"
    path shards;
  0

let with_db ?crash_after ?faults ?(metrics = None) path f =
  let faults = Option.map Storage.Fault.spec_of_string faults in
  let registry = registry_of metrics in
  let code =
    match Storage.Engine.open_db ?crash_after ?faults ~metrics:registry path with
    | exception Storage.Fault.Crash at -> crash_message path at
    | eng -> (
        match
          let code = f eng in
          Storage.Engine.close eng;
          code
        with
        | code ->
            if Storage.Engine.read_only eng then begin
              Printf.printf
                "engine degraded to read-only: %s; pending writes were \
                 dropped and will be resolved by restart recovery\n"
                (Option.value ~default:"unflushable wal"
                   (Storage.Engine.degraded_reason eng));
              1
            end
            else code
        | exception Storage.Fault.Crash at ->
            Storage.Engine.crash eng;
            crash_message path at
        | exception Storage.Engine.Read_only reason ->
            Storage.Engine.close eng;
            Printf.printf
              "engine degraded to read-only: %s; pending writes were \
               dropped and will be resolved by restart recovery\n"
              reason;
            1)
  in
  dump_metrics metrics registry;
  code

(* [--verify-wal]: run the offline WL passes over the log as it sits on
   disk and fold any errors into the exit code — the dynamic layer
   closing the loop with `dbmeta lint wal`. *)
let wal_audit ?(label = "wal audit") path code =
  let report = Storage.Wal.report_file (Storage.Engine.wal_path path) in
  let diags = Analysis.Wal_lint.lint report in
  if diags = [] then begin
    Printf.printf "%s: clean (%d record(s), %d byte(s))\n" label
      (List.length report.Storage.Wal.records)
      report.Storage.Wal.total_bytes;
    code
  end
  else begin
    print_string (Analysis.Diagnostic.list_to_text diags);
    max code (Analysis.Diagnostic.exit_code diags)
  end

let report_repair eng =
  match Storage.Engine.last_repair eng with
  | Some { Storage.Engine.quarantined; replayed } ->
      Printf.printf
        "repair: quarantined %d corrupt page(s), rebuilt the item store \
         from %d logged write(s)\n"
        (List.length quarantined) replayed
  | None -> ()

let report_recovery eng =
  report_repair eng;
  match Storage.Engine.last_recovery eng with
  | Some o -> Printf.printf "recovery: %s\n" (Storage.Recovery.outcome_to_string o)
  | None -> print_endline "recovery: log clean, nothing to do"

let db_init_run path force =
  input_error_to_exit @@ fun () ->
  if Sys.file_exists path && not force then
    invalid_arg
      (Printf.sprintf "%s already exists (use --force to overwrite)" path);
  if Sys.file_exists path then Sys.remove path;
  let wal = Storage.Engine.wal_path path in
  if Sys.file_exists wal then Sys.remove wal;
  with_db path (fun eng ->
      Printf.printf "created %s (%d pages, wal at %s)\n" path
        (Storage.Pager.page_count (Storage.Engine.pager eng))
        wal;
      0)

let db_load_run path tables crash_after faults metrics =
  input_error_to_exit @@ fun () ->
  let db = load_tables tables in
  with_db ?crash_after ?faults ~metrics path (fun eng ->
      let names =
        Relational.Database.fold
          (fun name rel acc ->
            Storage.Engine.save_table eng name rel;
            Printf.printf "loaded %s: %d tuples\n" name
              (Relational.Relation.cardinality rel);
            name :: acc)
          db []
      in
      (* refresh the planner's statistics for what was just loaded *)
      if names <> [] then
        ignore (Planner.Stats.analyze eng names : Planner.Stats.t);
      0)

(* The default query path goes through the cost-based planner and the
   Volcano executor — tuples stream off heap pages and indexes, no table
   is materialized up front.  [--no-plan] keeps the pre-planner
   evaluator (materialize everything, Eval.eval) for comparison; the two
   print byte-identical results because the planner path realigns its
   output to the query's own schema. *)
let db_query_run path text no_plan no_optimize no_semantic optimize certify
    explain metrics =
  input_error_to_exit @@ fun () ->
  with_db ~metrics path (fun eng ->
      let expr = Relational.Query_parser.parse text in
      if no_plan then begin
        let db = Storage.Engine.database eng in
        let catalog = Relational.Algebra.catalog_of_database db in
        let expr =
          if optimize then
            Relational.Optimizer.optimize catalog
              (Relational.Optimizer.stats_of_database db)
              expr
          else expr
        in
        if optimize then
          Printf.printf "plan: %s\n" (Relational.Algebra.to_string expr);
        print_string
          (Relational.Relation.to_string (Relational.Eval.eval db expr));
        0
      end
      else begin
        let config =
          {
            Planner.Plan.default_config with
            optimize = not no_optimize;
            semantic = not no_semantic;
          }
        in
        let ctx = Planner.Plan.make ~config eng in
        (* the query's own schema fixes the output column order, whatever
           shape the rewrites leave the plan in *)
        let schema =
          Relational.Algebra.schema_of (Planner.Plan.catalog ctx) expr
        in
        let plan = Planner.Plan.plan ctx expr in
        let certify_code =
          if not certify then 0
          else begin
            let report = Planner.Certify.certify ctx expr plan in
            List.iter
              (fun (s : Planner.Certify.stage) ->
                Printf.printf "certify: %s %s\n" s.Planner.Certify.name
                  (Planner.Certify.verdict_to_string s.Planner.Certify.verdict))
              report;
            let diags = Analysis.Semantic_lint.of_certify report in
            let errors =
              List.filter
                (fun d -> Analysis.Diagnostic.exit_code [ d ] = 1)
                diags
            in
            if errors <> [] then begin
              print_string (Analysis.Diagnostic.list_to_text errors);
              1
            end
            else 0
          end
        in
        if certify_code <> 0 then certify_code
        else
        match explain with
        | Some `Text ->
            print_string (Planner.Physical.to_text plan);
            0
        | Some `Json ->
            print_endline (Planner.Physical.to_json plan);
            0
        | None ->
            if optimize then
              Printf.printf "plan: %s\n"
                (Relational.Algebra.to_string
                   (Relational.Optimizer.optimize (Planner.Plan.catalog ctx)
                      (Planner.Stats.row_stats (Planner.Plan.stats ctx))
                      expr));
            let result = Planner.Exec.run ctx plan in
            print_string
              (Relational.Relation.to_string
                 (Relational.Relation.project result
                    (Relational.Schema.attributes schema)));
            0
      end)

let db_set_run path assignments abort crash_after faults =
  input_error_to_exit @@ fun () ->
  let parsed =
    List.map
      (fun spec ->
        match String.index_opt spec '=' with
        | Some i -> (
            let item = String.sub spec 0 i in
            let v = String.sub spec (i + 1) (String.length spec - i - 1) in
            match (item, int_of_string_opt v) with
            | "", _ | _, None ->
                invalid_arg
                  (Printf.sprintf "expected item=int, got %S" spec)
            | _, Some v -> (item, v))
        | None -> invalid_arg (Printf.sprintf "expected item=int, got %S" spec))
      assignments
  in
  with_db ?crash_after ?faults path (fun eng ->
      let txn = Storage.Engine.begin_txn eng in
      List.iter (fun (item, v) -> Storage.Engine.write eng ~txn item v) parsed;
      if abort then begin
        Storage.Engine.abort eng ~txn;
        Printf.printf "txn %d aborted (writes rolled back)\n" txn
      end
      else begin
        Storage.Engine.commit eng ~txn;
        Printf.printf "txn %d committed: %d write(s)\n" txn (List.length parsed)
      end;
      0)

let db_get_run path items =
  input_error_to_exit @@ fun () ->
  with_db path (fun eng ->
      (match items with
      | [] ->
          List.iter
            (fun (item, v) -> Printf.printf "%s = %d\n" item v)
            (Storage.Engine.items eng)
      | items ->
          List.iter
            (fun item ->
              Printf.printf "%s = %d\n" item (Storage.Engine.read eng item))
            items);
      0)

let db_status_run path =
  input_error_to_exit @@ fun () ->
  (* the raw log, inspected before recovery rewrites it *)
  let raw = Storage.Wal.report_file (Storage.Engine.wal_path path) in
  with_db path (fun eng ->
      let pager = Storage.Engine.pager eng in
      Printf.printf "file: %s (format v1, %d pages of %d bytes)\n" path
        (Storage.Pager.page_count pager)
        Storage.Page.size;
      report_recovery eng;
      Printf.printf "wal: %d surviving record(s) before open%s\n"
        (List.length raw.Storage.Wal.records)
        (let torn = raw.Storage.Wal.total_bytes - raw.Storage.Wal.clean_bytes in
         if torn = 0 then ""
         else Printf.sprintf ", %d torn tail byte(s)" torn);
      Printf.printf "items: %d\n" (Storage.Engine.item_count eng);
      let tables = Storage.Engine.table_info eng in
      Printf.printf "tables: %d\n" (List.length tables);
      List.iter
        (fun (name, schema, first) ->
          Printf.printf "  %s(%s) @ page %d: %d tuples\n" name
            (String.concat ", "
               (List.map
                  (fun (a, ty) -> a ^ ":" ^ Relational.Value.ty_to_string ty)
                  (Relational.Schema.pairs schema)))
            first
            (Relational.Relation.cardinality (Storage.Engine.load_table eng name)))
        tables;
      let hits, misses =
        let s = Storage.Buffer_pool.stats (Storage.Engine.pool eng) in
        (s.Storage.Buffer_pool.hits, s.Storage.Buffer_pool.misses)
      in
      Printf.printf "buffer pool: %d/%d resident, %d hits, %d misses\n"
        (Storage.Buffer_pool.resident (Storage.Engine.pool eng))
        (Storage.Buffer_pool.capacity (Storage.Engine.pool eng))
        hits misses;
      (* a replica family beside this file means the db is one node of a
         replication group: report its role from the descriptor *)
      (match Replication.Repl_meta.load_group path with
      | None -> ()
      | Some g ->
          let module M = Replication.Repl_meta in
          let clean k =
            (Storage.Wal.report_file
               (Storage.Engine.wal_path (M.node_path path k)))
              .Storage.Wal.clean_bytes
          in
          let p = clean g.M.primary in
          let worst =
            List.fold_left
              (fun acc k ->
                if k = g.M.primary then acc
                else max acc (p - min p (clean k)))
              0
              (List.init g.M.nodes Fun.id)
          in
          Printf.printf
            "replication: %s of %d node(s), epoch %d, sync=%s, worst lag \
             %d byte(s)\n"
            (if g.M.primary = 0 then "primary"
             else Printf.sprintf "replica (primary: node %d)" g.M.primary)
            g.M.nodes g.M.epoch
            (M.sync_mode_to_string g.M.sync)
            worst);
      0)

(* Sharded recovery is auto-detected: a dist base has no file of its
   own, only BASE.shardK files, so probing them cannot misfire on a
   single-node database. *)
let db_recover_run path verify_wal shards metrics =
  input_error_to_exit @@ fun () ->
  let shards =
    match shards with
    | Some n when n <= 0 ->
        invalid_arg (Printf.sprintf "--shards must be positive, got %d" n)
    | Some _ as n -> n
    | None ->
        let n = Distributed.Coordinator.discover path in
        if n > 0 then Some n else None
  in
  match shards with
  | None ->
      let code =
        with_db ~metrics path (fun eng ->
            report_recovery eng;
            Printf.printf "items: %d, tables: %d\n"
              (Storage.Engine.item_count eng)
              (List.length (Storage.Engine.table_names eng));
            0)
      in
      if verify_wal then wal_audit path code else code
  | Some n ->
      let registry = registry_of metrics in
      let coord =
        Distributed.Coordinator.open_dist ~shards:n ~metrics:registry path
      in
      let completed, presumed = Distributed.Coordinator.resolved coord in
      Printf.printf
        "resolution: %d in-doubt transaction(s) — %d completed from the \
         coordinator's decision, %d presumed aborted\n"
        (completed + presumed) completed presumed;
      List.iteri
        (fun k o ->
          Printf.printf "shard %d recovery: %s\n" k
            (match o with
            | Some o -> Storage.Recovery.outcome_to_string o
            | None -> "log clean, nothing to do"))
        (Distributed.Coordinator.recoveries coord);
      Printf.printf "items: %d across %d shard(s)\n"
        (List.length (Distributed.Coordinator.items coord))
        n;
      Distributed.Coordinator.close coord;
      let code =
        if verify_wal then
          List.fold_left
            (fun code k ->
              wal_audit
                ~label:(Printf.sprintf "shard %d wal audit" k)
                (Distributed.Coordinator.shard_path path k)
                code)
            0 (List.init n Fun.id)
        else 0
      in
      dump_metrics metrics registry;
      code

(* The sharded variant of [db exec]: same workload generator, but the
   programs run against a 2PC coordinator over N engines instead of one.
   Returns the exit code; printing mirrors the single-node path so the
   two reports read side by side. *)
let db_exec_dist path n ~txns ~seed spec crash_after timeout verify verify_wal
    registry trace programs =
  if n <= 0 then
    invalid_arg (Printf.sprintf "--shards must be positive, got %d" n);
  match
    Distributed.Coordinator.open_dist ~shards:n ?faults:spec ?crash_after
      ~metrics:registry ~trace path
  with
  | exception Storage.Fault.Crash at -> dist_crash_message path n at
  | coord ->
      let completed, presumed = Distributed.Coordinator.resolved coord in
      if completed + presumed > 0 then
        Printf.printf
          "resolution: %d in-doubt transaction(s) — %d completed, %d \
           presumed aborted\n"
          (completed + presumed) completed presumed;
      let config =
        { Distributed.Executor.default_config with seed; lock_timeout = timeout }
      in
      let stats = Distributed.Executor.run ~config coord programs in
      if stats.Distributed.Executor.crashed = None then (
        try Distributed.Coordinator.close coord
        with Storage.Fault.Crash at ->
          Distributed.Coordinator.crash coord;
          Printf.printf "simulated crash at close: %s\n" at);
      Printf.printf
        "committed %d/%d  restarts %d  deadlocks %d  timeouts %d  \
         commit-aborts %d\n"
        stats.Distributed.Executor.committed txns
        stats.Distributed.Executor.restarts
        stats.Distributed.Executor.deadlocks
        stats.Distributed.Executor.timeouts
        stats.Distributed.Executor.commit_aborts;
      Printf.printf
        "throughput: %.4f commits/step (%d steps, %d wasted ops, %d net \
         ticks)\n"
        (Distributed.Executor.throughput stats)
        stats.Distributed.Executor.steps
        stats.Distributed.Executor.wasted_ops
        (Distributed.Coordinator.net_ticks coord);
      if stats.Distributed.Executor.stranded > 0 then
        Printf.printf
          "stranded: %d decision(s) undelivered; their locks stay held and \
           restart recovery will complete them\n"
          stats.Distributed.Executor.stranded;
      let code =
        match stats.Distributed.Executor.crashed with
        | Some { Storage.Fault.site; io_index } ->
            Printf.printf "simulated crash at: %s (io %d)\n" site io_index;
            Printf.printf
              "run 'dbmeta db recover %s --shards=%d' to resolve in-doubt \
               transactions and repair the shards\n"
              path n;
            0
        | None ->
            if stats.Distributed.Executor.degraded then begin
              Printf.printf
                "coordinator or shard degraded to read-only; unresolved \
                 transactions are in doubt and will be settled by restart \
                 recovery\n";
              1
            end
            else if stats.Distributed.Executor.committed = txns then 0
            else 1
      in
      let code =
        if verify then
          match Distributed.Coordinator.model_divergence ~path with
          | None ->
              print_endline "model check: ok";
              code
          | Some (expected, actual) ->
              let show kv =
                String.concat ", "
                  (List.map (fun (i, v) -> Printf.sprintf "%s=%d" i v) kv)
              in
              Printf.printf
                "model check: DIVERGED\n  expected: %s\n  actual:   %s\n"
                (show expected) (show actual);
              1
        else code
      in
      if verify_wal then
        List.fold_left
          (fun code k ->
            wal_audit
              ~label:(Printf.sprintf "shard %d wal audit" k)
              (Distributed.Coordinator.shard_path path k)
              code)
          code (List.init n Fun.id)
      else code

(* The replicated variant of [db exec]: the workload runs sequentially
   against a primary that ships its WAL to N replicas after every
   commit.  Sequential on purpose — replication is about durability and
   failover, not concurrency, and a deterministic txn-at-a-time driver
   keeps acked/local-only counts reproducible from the seed. *)
let db_exec_repl path n sync ~txns spec crash_after verify_wal registry trace
    programs =
  if n <= 0 then
    invalid_arg (Printf.sprintf "--replicas must be positive, got %d" n);
  let module G = Replication.Group in
  match
    G.open_group ~replicas:n ~sync ?faults:spec ?crash_after ~metrics:registry
      ~trace path
  with
  | exception Storage.Fault.Crash at ->
      Printf.printf "simulated crash at: %s\n" at;
      Printf.printf
        "the group was left as the crash left it; run 'dbmeta db repl \
         status %s' to inspect it, 'dbmeta lint repl %s' to audit it, or \
         reopen with 'dbmeta db exec --replicas=%d %s' to heal the \
         replicas\n"
        path path n path;
      0
  | g ->
      Printf.printf "replication: %d node(s), sync=%s, epoch %d\n"
        (G.node_count g)
        (Replication.Repl_meta.sync_mode_to_string (G.sync_mode g))
        (G.epoch g);
      let acked = ref 0 and local = ref 0 and value = ref 0 in
      let crashed = ref None and fenced = ref None in
      (try
         Array.iter
           (fun prog ->
             let txn = G.begin_txn g in
             List.iter
               (function
                 | Transactions.Schedule.Read item ->
                     ignore (G.read g item : int)
                 | Transactions.Schedule.Write item ->
                     incr value;
                     G.write g ~txn item !value
                 | Transactions.Schedule.Commit | Transactions.Schedule.Abort
                   -> ())
               prog;
             match G.commit g ~txn with
             | G.Acked -> incr acked
             | G.Local_only -> incr local)
           programs;
         G.close g
       with
      | Storage.Fault.Crash at ->
          G.crash g;
          crashed := Some at
      | G.Fenced e ->
          G.crash g;
          fenced := Some e);
      Printf.printf "committed %d/%d  acked %d  local-only %d\n"
        (!acked + !local) txns !acked !local;
      Printf.printf "worst lag %d byte(s), %d net tick(s)\n" (G.lag g)
        (G.net_ticks g);
      let code =
        match (!crashed, !fenced) with
        | Some at, _ ->
            Printf.printf "simulated crash at: %s\n" at;
            Printf.printf
              "run 'dbmeta db exec --replicas=%d %s' again to heal, or \
               'dbmeta db failover %s' to promote a replica\n"
              n path path;
            0
        | None, Some e ->
            Printf.printf
              "primary fenced by epoch %d: a failover promoted another \
               node; this primary stopped accepting writes\n"
              e;
            1
        | None, None -> if !acked + !local = txns then 0 else 1
      in
      if verify_wal then
        List.fold_left
          (fun code k ->
            wal_audit
              ~label:(Printf.sprintf "node %d wal audit" k)
              (Replication.Repl_meta.node_path path k)
              code)
          code
          (List.init (G.node_count g) Fun.id)
      else code

let db_exec_run path shards replicas sync_mode txns ops items write_ratio skew
    seed faults crash_after timeout verify verify_wal metrics trace_file =
  input_error_to_exit @@ fun () ->
  let spec = Option.map Storage.Fault.spec_of_string faults in
  let registry = registry_of metrics in
  let trace =
    match trace_file with
    | None -> Obs.Trace.noop
    | Some _ -> Obs.Trace.create ()
  in
  let params =
    {
      Transactions.Workload.txns;
      ops_per_txn = ops;
      items;
      skew;
      write_ratio;
    }
  in
  let programs = Transactions.Workload.generate (Support.Rng.create seed) params in
  Printf.printf
    "workload: %d txns x %d ops over %d items (%.0f%% writes, skew %.1f), \
     seed %d\n"
    txns ops items (write_ratio *. 100.) skew seed;
  (match spec with
  | Some s -> Printf.printf "faults: %s\n" (Storage.Fault.spec_to_string s)
  | None -> ());
  let code =
    match (shards, replicas) with
    | Some _, Some _ ->
        invalid_arg "--shards and --replicas are mutually exclusive"
    | Some n, None ->
        db_exec_dist path n ~txns ~seed spec crash_after timeout verify
          verify_wal registry trace programs
    | None, Some n ->
        db_exec_repl path n sync_mode ~txns spec crash_after verify_wal
          registry trace programs
    | None, None -> (
    match
      Storage.Engine.open_db ?crash_after ?faults:spec ~metrics:registry
        ~trace path
    with
    | exception Storage.Fault.Crash at -> crash_message path at
    | eng ->
        let config =
          { Storage.Executor.default_config with seed; lock_timeout = timeout }
        in
        let stats = Storage.Executor.run ~config eng programs in
        if stats.Storage.Executor.crashed = None then (
          try Storage.Engine.close eng
          with Storage.Fault.Crash at ->
            Storage.Engine.crash eng;
            Printf.printf "simulated crash at close: %s\n" at);
        Printf.printf
          "committed %d/%d  restarts %d  deadlocks %d  timeouts %d  repairs \
           %d  io-retries %d\n"
          stats.Storage.Executor.committed txns stats.Storage.Executor.restarts
          stats.Storage.Executor.deadlocks stats.Storage.Executor.timeouts
          stats.Storage.Executor.repairs stats.Storage.Executor.io_retries;
        Printf.printf "throughput: %.4f commits/step (%d steps, %d wasted ops)\n"
          (Storage.Executor.throughput stats)
          stats.Storage.Executor.steps stats.Storage.Executor.wasted_ops;
        let code =
          match stats.Storage.Executor.crashed with
          | Some { Storage.Fault.site; io_index } ->
              Printf.printf "simulated crash at: %s (io %d)\n" site io_index;
              Printf.printf
                "run 'dbmeta db recover %s' (or any other db command) to \
                 repair the database\n"
                path;
              0
          | None ->
              if stats.Storage.Executor.degraded then begin
                Printf.printf
                  "engine degraded to read-only: %s; unresolved transactions \
                   are in doubt and will be aborted by restart recovery\n"
                  (Option.value ~default:"unflushable wal"
                     (Storage.Engine.degraded_reason eng));
                1
              end
              else if stats.Storage.Executor.committed = txns then 0
              else 1
        in
        let code =
        if verify then
          match Storage.Executor.model_divergence ~path with
          | None ->
              print_endline "model check: ok";
              code
          | Some (expected, actual) ->
              let show kv =
                String.concat ", "
                  (List.map (fun (i, v) -> Printf.sprintf "%s=%d" i v) kv)
              in
              Printf.printf "model check: DIVERGED\n  expected: %s\n  actual:   %s\n"
                (show expected) (show actual);
              1
        else code
        in
        if verify_wal then wal_audit path code else code)
  in
  (match trace_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Obs.Trace.to_chrome trace);
      close_out oc;
      Printf.eprintf "trace: %d span(s) written to %s (%d dropped)\n"
        (List.length (Obs.Trace.events trace))
        file (Obs.Trace.dropped trace));
  dump_metrics metrics registry;
  code

let db_file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DB"
         ~doc:"Database file (its WAL lives alongside as DB.wal).")

let crash_after_arg =
  Arg.(value & opt (some int) None & info [ "crash-after" ] ~docv:"N"
         ~doc:"Fault injection: let $(docv) durable I/Os succeed, then \
               crash the engine mid-operation (a WAL flush crash leaves a \
               torn tail).  For demonstrating recovery.")

let faults_arg =
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC"
         ~doc:"Fault spec, comma-separated: $(b,crash=N) (crash budget), \
               $(b,torn=P) / $(b,flip=P) / $(b,eio=P) (per-I/O \
               probabilities of torn writes, bit flips, transient EIO), \
               $(b,drop=P) / $(b,delay=P) / $(b,part=P) (per-message \
               probabilities of dropped, late, and partitioned messages — \
               2PC exchanges under $(b,db exec --shards), WAL shipping \
               under $(b,db exec --replicas)), and $(b,seed=N) for the \
               fault RNG.  Any kind scopes to sites containing a \
               substring with $(b,kind@site=P), e.g. $(b,eio@read=0.3) \
               or $(b,drop@ship=1).  Example: \
               'crash=7,torn=0.1,eio@read=0.3,seed=42'.  The full \
               mini-language is docs/FAULTS.md.")

let db_init_cmd =
  let force =
    Arg.(value & flag & info [ "force" ] ~doc:"Overwrite an existing database.")
  in
  Cmd.v
    (Cmd.info "init" ~version ~doc:"Create an empty database file")
    Term.(const db_init_run $ db_file_arg $ force)

let db_load_cmd =
  let tables =
    Arg.(value & opt_all string [] & info [ "t"; "table" ] ~docv:"NAME=FILE"
           ~doc:"Load a CSV file as a named table (repeatable).")
  in
  Cmd.v
    (Cmd.info "load" ~version ~doc:"Load CSV tables into the database")
    Term.(const db_load_run $ db_file_arg $ tables $ crash_after_arg $ faults_arg
          $ metrics_arg)

let db_query_cmd =
  let text =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Algebra expression over the stored tables.")
  in
  let no_plan =
    Arg.(value & flag & info [ "no-plan" ]
           ~doc:"Bypass the physical planner: materialize every table and \
                 run the logical evaluator (the pre-planner path, kept for \
                 comparison).")
  in
  let no_optimize =
    Arg.(value & flag & info [ "no-optimize" ]
           ~doc:"Compile the query as written, skipping the logical \
                 rewrite pipeline (access-path selection still applies).")
  in
  let no_semantic =
    Arg.(value & flag & info [ "no-semantic" ]
           ~doc:"Skip chase-based join elimination (the semantic rewrite \
                 that drops joins provable redundant under the recorded \
                 key dependencies).")
  in
  let certify =
    Arg.(value & flag & info [ "certify" ]
           ~doc:"Translation-validate the plan: replay every rewrite \
                 stage and the physical plan's logical shadow, proving \
                 each step equivalent by conjunctive-query containment \
                 under the recorded dependencies.  A refuted stage prints \
                 an SQ101/SQ102 error and exits 1 without executing.")
  in
  let optimize =
    Arg.(value & flag & info [ "O"; "optimize" ]
           ~doc:"Print the logically optimized plan before the results.")
  in
  let explain =
    Arg.(value
         & opt ~vopt:(Some `Text)
             (some (enum [ ("text", `Text); ("json", `Json) ]))
             None
         & info [ "explain" ] ~docv:"FORMAT"
             ~doc:"Print the chosen physical plan with cost estimates \
                   instead of executing: $(b,--explain) for an indented \
                   tree, $(b,--explain=json) for machine-readable JSON.")
  in
  Cmd.v
    (Cmd.info "query" ~version
       ~doc:"Evaluate a relational algebra query over stored tables \
             through the cost-based planner")
    Term.(const db_query_run $ db_file_arg $ text $ no_plan $ no_optimize
          $ no_semantic $ optimize $ certify $ explain $ metrics_arg)

(* --- db index: the secondary-index catalog ----------------------------------- *)

let index_kind_arg =
  Arg.(value
       & opt
           (enum
              [ ("btree", Planner.Indexes.Btree); ("hash", Planner.Indexes.Hash) ])
           Planner.Indexes.Btree
       & info [ "kind" ] ~docv:"KIND"
           ~doc:"Index structure: $(b,btree) (point lookups, range and \
                 ordered scans) or $(b,hash) (point lookups only).")

let db_index_table_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"TABLE"
         ~doc:"The indexed table.")

let db_index_attr_arg =
  Arg.(required & pos 2 (some string) None & info [] ~docv:"COLUMN"
         ~doc:"The indexed column.")

let db_index_create_run path table attr kind =
  input_error_to_exit @@ fun () ->
  with_db path (fun eng ->
      let idx = Planner.Indexes.load eng in
      Planner.Indexes.create eng idx { Planner.Indexes.table; attr; kind };
      (* fresh statistics, so the cost model prices the new access path
         off current cardinalities *)
      ignore (Planner.Stats.analyze eng [ table ] : Planner.Stats.t);
      Printf.printf "created %s index on %s(%s)\n"
        (Planner.Indexes.kind_to_string kind)
        table attr;
      0)

let db_index_drop_run path table attr kind =
  input_error_to_exit @@ fun () ->
  with_db path (fun eng ->
      let idx = Planner.Indexes.load eng in
      Planner.Indexes.drop eng idx { Planner.Indexes.table; attr; kind };
      Printf.printf "dropped %s index on %s(%s)\n"
        (Planner.Indexes.kind_to_string kind)
        table attr;
      0)

let db_index_list_run path =
  input_error_to_exit @@ fun () ->
  with_db path (fun eng ->
      (match Planner.Indexes.defs (Planner.Indexes.load eng) with
      | [] -> print_endline "no indexes"
      | defs ->
          List.iter
            (fun d ->
              Printf.printf "%s(%s) %s\n" d.Planner.Indexes.table
                d.Planner.Indexes.attr
                (Planner.Indexes.kind_to_string d.Planner.Indexes.kind))
            defs);
      0)

let db_index_cmd =
  let create =
    Cmd.v
      (Cmd.info "create" ~version
         ~doc:"Register a secondary index and refresh the table's \
               statistics")
      Term.(const db_index_create_run $ db_file_arg $ db_index_table_arg
            $ db_index_attr_arg $ index_kind_arg)
  in
  let drop =
    Cmd.v
      (Cmd.info "drop" ~version ~doc:"Remove a secondary index")
      Term.(const db_index_drop_run $ db_file_arg $ db_index_table_arg
            $ db_index_attr_arg $ index_kind_arg)
  in
  let list =
    Cmd.v
      (Cmd.info "list" ~version ~doc:"List the registered indexes")
      Term.(const db_index_list_run $ db_file_arg)
  in
  Cmd.group
    (Cmd.info "index" ~version
       ~doc:"Manage the secondary-index catalog the planner chooses \
             access paths from")
    [ create; drop; list ]

let db_set_cmd =
  let assignments =
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"ITEM=VALUE"
           ~doc:"Integer assignments, applied in one transaction.")
  in
  let abort =
    Arg.(value & flag & info [ "abort" ]
           ~doc:"Roll the transaction back instead of committing \
                 (demonstrates undo).")
  in
  Cmd.v
    (Cmd.info "set" ~version
       ~doc:"Write items transactionally (WAL-protected)")
    Term.(const db_set_run $ db_file_arg $ assignments $ abort $ crash_after_arg
          $ faults_arg)

let db_get_cmd =
  let items =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"ITEM"
           ~doc:"Items to read; with none, every nonzero item is listed.")
  in
  Cmd.v
    (Cmd.info "get" ~version ~doc:"Read items from the transactional store")
    Term.(const db_get_run $ db_file_arg $ items)

let db_status_cmd =
  Cmd.v
    (Cmd.info "status" ~version
       ~doc:"Show pages, tables, items, WAL and buffer-pool state")
    Term.(const db_status_run $ db_file_arg)

let shards_arg =
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
         ~doc:"Operate on the sharded database rooted at DB: $(docv) \
               independent engines at DB.shardN under a two-phase-commit \
               coordinator whose log lives at DB.2pc.")

let replicas_arg =
  Arg.(value & opt (some int) None & info [ "replicas" ] ~docv:"N"
         ~doc:"Replicate the database at DB to $(docv) replica copies at \
               DB.r1 … DB.rN: the primary ships its WAL after every \
               commit, and replicas apply it through continuous redo.  \
               The group descriptor lives at DB.repl, the quorum-ack \
               journal at DB.acks.")

let sync_mode_arg =
  Arg.(value
       & opt
           (enum
              [ ("quorum", Replication.Repl_meta.Quorum);
                ("async", Replication.Repl_meta.Async) ])
           Replication.Repl_meta.Quorum
       & info [ "sync-mode" ] ~docv:"MODE"
           ~doc:"Commit acknowledgement mode for $(b,--replicas): \
                 $(b,quorum) acks a commit only after a majority of nodes \
                 hold its bytes (journaled durably first), $(b,async) \
                 acks after local durability and ships best-effort.")

(* --- db failover / db repl status: replication-group operations ------- *)

let db_failover_run path metrics =
  input_error_to_exit @@ fun () ->
  let registry = registry_of metrics in
  let g = Replication.Group.open_group ~metrics:registry path in
  let old = Replication.Group.primary_id g in
  let winner = Replication.Group.failover g in
  Printf.printf
    "failover: node %d promoted to primary (epoch %d); node %d rejoins \
     as a replica\n"
    winner
    (Replication.Group.epoch g)
    old;
  Replication.Group.catch_up g;
  Printf.printf "replicas healed; worst lag %d byte(s)\n"
    (Replication.Group.lag g);
  Replication.Group.close g;
  dump_metrics metrics registry;
  0

let db_failover_cmd =
  Cmd.v
    (Cmd.info "failover" ~version
       ~doc:"Promote the most-advanced eligible replica to primary: crash \
             the old primary, bump the fencing epoch, and heal the \
             remaining nodes (including the deposed primary, which \
             rejoins as a replica)")
    Term.(const db_failover_run $ db_file_arg $ metrics_arg)

(* The whole report is computed from files — descriptor, node stamps,
   ack journal, and read-only WAL scans — so it works on the survivors
   of a crashed or fenced group without touching them. *)
let db_repl_status_run path =
  input_error_to_exit @@ fun () ->
  let module M = Replication.Repl_meta in
  let group = M.load_group path in
  let nodes =
    match group with Some g -> g.M.nodes | None -> M.discover path
  in
  if nodes < 2 then
    invalid_arg
      (Printf.sprintf
         "no replication group at %S (expected a descriptor at %s or \
          replica files %s, ...)"
         path (M.group_path path) (M.node_path path 1));
  let primary_id = match group with Some g -> g.M.primary | None -> 0 in
  (match group with
  | Some g ->
      Printf.printf "group: %d node(s), sync=%s, epoch %d, primary node %d\n"
        g.M.nodes
        (M.sync_mode_to_string g.M.sync)
        g.M.epoch g.M.primary
  | None ->
      Printf.printf "group: %d node(s), no descriptor (assuming node 0 \
                     primary)\n"
        nodes);
  let clean k =
    (Storage.Wal.report_file
       (Storage.Engine.wal_path (M.node_path path k)))
      .Storage.Wal.clean_bytes
  in
  let primary_clean = clean primary_id in
  for k = 0 to nodes - 1 do
    let stamp = M.load_node (M.node_path path k) in
    let epoch_s, snap =
      match stamp with
      | Some (e, s) -> (string_of_int e, s)
      | None -> ("unstamped", 0)
    in
    if k = primary_id then
      Printf.printf "node %d: primary, epoch %s, %d byte(s) durable\n" k
        epoch_s primary_clean
    else
      let c = clean k in
      Printf.printf
        "node %d: replica, epoch %s, %d/%d byte(s) (lag %d), snapshot @ %d\n"
        k epoch_s c primary_clean
        (primary_clean - min primary_clean c)
        snap
  done;
  (match M.load_acks path with
  | [] -> print_endline "acks: none journaled"
  | acks ->
      let last = List.nth acks (List.length acks - 1) in
      Printf.printf
        "acks: %d journaled (last: txn %d @ %d, epoch %d)\n"
        (List.length acks) last.M.txn last.M.lsn last.M.ack_epoch);
  0

let db_repl_cmd =
  let status =
    Cmd.v
      (Cmd.info "status" ~version
         ~doc:"Report a replication group's role, epoch, per-node lag, \
               and ack journal from its files alone (works on the \
               survivors of a crash)")
      Term.(const db_repl_status_run $ db_file_arg)
  in
  Cmd.group
    (Cmd.info "repl" ~version
       ~doc:"Inspect a WAL-shipping replication group")
    [ status ]

let db_recover_cmd =
  let verify_wal =
    Arg.(value & flag & info [ "verify-wal" ]
           ~doc:"After recovery, audit the rewritten log with the offline \
                 WAL verifier (codes WL001-WL010, same passes as \
                 $(b,dbmeta lint wal)) and fold any errors into the exit \
                 code; on a sharded database, every shard log is audited.")
  in
  Cmd.v
    (Cmd.info "recover" ~version
       ~doc:"Run restart recovery (on a sharded database: the 2PC \
             termination protocol, then every shard's recovery) and \
             report its outcome")
    Term.(const db_recover_run $ db_file_arg $ verify_wal $ shards_arg
          $ metrics_arg)

let db_exec_cmd =
  let txns =
    Arg.(value & opt int 4 & info [ "txns" ] ~docv:"N"
           ~doc:"Concurrent transactions in the workload.")
  in
  let ops =
    Arg.(value & opt int 5 & info [ "ops" ] ~docv:"K"
           ~doc:"Operations per transaction.")
  in
  let items =
    Arg.(value & opt int 8 & info [ "items" ] ~docv:"M"
           ~doc:"Database size (items x0 … x(M-1)); smaller = hotter.")
  in
  let write_ratio =
    Arg.(value & opt float 0.5 & info [ "write-ratio" ] ~docv:"R"
           ~doc:"Fraction of operations that are writes.")
  in
  let skew =
    Arg.(value & opt float 0.5 & info [ "skew" ] ~docv:"Z"
           ~doc:"Zipf access skew; 0 = uniform.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S"
           ~doc:"Seed for the workload generator and the restart-backoff \
                 jitter; every run is reproducible from it.")
  in
  let timeout =
    Arg.(value & opt (some int) None & info [ "timeout" ] ~docv:"T"
           ~doc:"Lock-wait timeout in scheduler rounds (deadlocks are \
                 detected either way; this also bounds ordinary waits).")
  in
  let verify =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"After the run, reopen the database and check its \
                 committed state against the Transactions.Recovery model \
                 of the surviving log.")
  in
  let verify_wal =
    Arg.(value & flag & info [ "verify-wal" ]
           ~doc:"After the run, audit the on-disk log with the offline \
                 WAL verifier (codes WL001-WL010, same passes as \
                 $(b,dbmeta lint wal)) and fold any errors into the exit \
                 code.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record spans (WAL flushes, commits/aborts, transaction \
                 incarnations per executor slot) and write them as Chrome \
                 trace_event JSON to $(docv) — open it in about:tracing \
                 or ui.perfetto.dev.")
  in
  Cmd.v
    (Cmd.info "exec" ~version
       ~doc:"Run an interleaved transaction workload under locking, \
             deadlock retry, and (optionally) injected faults; with \
             $(b,--shards) the workload runs against a sharded database \
             under two-phase commit, with $(b,--replicas) against a \
             WAL-shipping replication group")
    Term.(const db_exec_run $ db_file_arg $ shards_arg $ replicas_arg
          $ sync_mode_arg $ txns $ ops $ items $ write_ratio $ skew $ seed
          $ faults_arg $ crash_after_arg $ timeout $ verify $ verify_wal
          $ metrics_arg $ trace)

let db_cmd =
  let doc = "persistent storage: pager, buffer pool, WAL, recovery" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "A database file is a sequence of 4096-byte CRC-checked slotted \
         pages behind a header page; updates to the transactional item \
         store are protected by a binary write-ahead log, and every open \
         runs ARIES-lite restart recovery (redo from the last checkpoint, \
         then undo of uncommitted transactions).  $(b,--crash-after) \
         injects a crash at the Nth durable I/O so the recovery path can \
         be watched from the command line; $(b,--faults) widens the \
         injection to torn writes, bit flips, and transient EIO under a \
         seeded RNG.  Corrupt item-store pages are quarantined and \
         rebuilt from the log; an unflushable WAL degrades the engine to \
         read-only.  $(b,db exec) runs an interleaved workload under \
         shared/exclusive locking with deadlock detection and \
         victim retry.";
    ]
  in
  Cmd.group
    (Cmd.info "db" ~version ~doc ~man)
    [
      db_init_cmd; db_load_cmd; db_query_cmd; db_index_cmd; db_set_cmd;
      db_get_cmd; db_status_cmd; db_recover_cmd; db_exec_cmd; db_failover_cmd;
      db_repl_cmd;
    ]

(* --- lint ------------------------------------------------------------------------- *)

let format_arg =
  Arg.(value
       & opt
           (enum
              [ ("text", Analysis.Pass.Text); ("json", Analysis.Pass.Json) ])
           Analysis.Pass.Text
       & info [ "format" ] ~docv:"FORMAT"
           ~doc:"Output format: text or json.")

(* Every lint subcommand parses its artifact, then goes through this one
   driver — rendering and exit-code policy live in Analysis.Pass, so
   text/JSON/exit behaviour cannot drift between subcommands. *)
let drive format passes input =
  let output, code = Analysis.Pass.drive ~format passes input in
  print_string output;
  code

let lint_datalog_run file query format =
  input_error_to_exit @@ fun () ->
  let program = Datalog.Parser.parse_program (read_file file) in
  let query = Option.map Datalog.Parser.parse_query query in
  drive format
    (Analysis.Datalog_lint.passes @ Analysis.Semantic_lint.datalog_passes)
    { Analysis.Datalog_lint.program; query }

let lint_datalog_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Datalog program to analyze.")
  in
  let query =
    Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY"
           ~doc:"Query atom; enables dead-rule (DL008) analysis and \
                 sharpens unused-predicate (DL005) reporting.")
  in
  Cmd.v
    (Cmd.info "datalog" ~version
       ~doc:"Lint a Datalog program (codes DL001-DL008, SQ006-SQ008)")
    Term.(const lint_datalog_run $ file $ query $ format_arg)

(* name=a:int,b:string — a schema for a relation that has no CSV backing *)
let parse_schema_spec spec =
  let fail () =
    invalid_arg
      (Printf.sprintf
         "--schema expects name=attr:type,... with types int, string, \
          float, bool; got %S"
         spec)
  in
  match String.index_opt spec '=' with
  | None -> fail ()
  | Some i ->
      let name = String.sub spec 0 i in
      let body = String.sub spec (i + 1) (String.length spec - i - 1) in
      let pairs =
        List.map
          (fun field ->
            match String.index_opt field ':' with
            | None -> fail ()
            | Some j -> (
                let attr = String.sub field 0 j in
                let ty =
                  String.sub field (j + 1) (String.length field - j - 1)
                in
                match Relational.Value.ty_of_string ty with
                | Some ty when attr <> "" -> (attr, ty)
                | _ -> fail ()))
          (String.split_on_char ',' body |> List.filter (fun f -> f <> ""))
      in
      if name = "" || pairs = [] then fail ();
      (name, Relational.Schema.make pairs)

let lint_query_run text file tables schemas fd_specs format =
  input_error_to_exit @@ fun () ->
  let text =
    match (text, file) with
    | Some t, None -> t
    | None, Some f -> String.trim (read_file f)
    | Some _, Some _ ->
        invalid_arg "give either a QUERY argument or --file, not both"
    | None, None -> invalid_arg "expected a QUERY argument or --file"
  in
  let db = load_tables tables in
  let inline = List.map parse_schema_spec schemas in
  let catalog name =
    match List.assoc_opt name inline with
    | Some s -> Some s
    | None -> Analysis.Relational_lint.catalog_of_database db name
  in
  let fds =
    List.map
      (fun spec ->
        match Analysis.Semantic_lint.fd_of_spec ~catalog spec with
        | Ok fd -> fd
        | Error msg -> invalid_arg msg)
      fd_specs
  in
  let plan = Relational.Query_parser.parse text in
  (* the RA suite and the semantic SQ suite share one drive: the RA
     passes just ignore the dependencies *)
  let ra_passes =
    List.map
      (Analysis.Pass.adapt
         (fun { Analysis.Semantic_lint.catalog; plan; _ } ->
           { Analysis.Relational_lint.catalog; plan }))
      Analysis.Relational_lint.passes
  in
  drive format
    (ra_passes @ Analysis.Semantic_lint.passes)
    { Analysis.Semantic_lint.catalog; fds; plan }

let lint_query_cmd =
  let text =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Algebra expression to analyze.")
  in
  let file =
    Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE"
           ~doc:"Read the query from $(docv) instead of the command line \
                 (one expression, whitespace and newlines allowed).")
  in
  let tables =
    Arg.(value & opt_all string [] & info [ "t"; "table" ] ~docv:"NAME=FILE"
           ~doc:"Bind a relation name to a CSV file (repeatable).")
  in
  let schemas =
    Arg.(value & opt_all string [] & info [ "s"; "schema" ] ~docv:"NAME=SPEC"
           ~doc:"Declare a relation schema inline, e.g. \
                 'edge=src:int,dst:int' (repeatable; no data needed).")
  in
  let fds =
    Arg.(value & opt_all string [] & info [ "fd" ] ~docv:"SPEC"
           ~doc:"Declare a functional dependency for the chase-based \
                 passes, e.g. 'students: sid -> sname year' (repeatable; \
                 attributes must exist in the relation's schema).")
  in
  Cmd.v
    (Cmd.info "query" ~version
       ~doc:"Lint a relational algebra plan (codes RA001-RA006, \
             SQ001-SQ005)")
    Term.(const lint_query_run $ text $ file $ tables $ schemas $ fds
          $ format_arg)

(* --- lint plan: the physical-plan suite --------------------------------------- *)

(* The plan is compiled AND executed before linting: PL003 (estimate
   divergence) needs the actual row counts only a run can fill in.  The
   other passes would work on the unexecuted plan, but one uniform
   artifact keeps the subcommand simple. *)
let lint_plan_run path text no_optimize format =
  input_error_to_exit @@ fun () ->
  with_db path (fun eng ->
      let expr = Relational.Query_parser.parse text in
      let config =
        { Planner.Plan.default_config with optimize = not no_optimize }
      in
      let ctx = Planner.Plan.make ~config eng in
      let plan = Planner.Plan.plan ctx expr in
      ignore (Planner.Exec.run ctx plan : Relational.Relation.t);
      drive format Analysis.Plan_lint.passes
        {
          Analysis.Plan_lint.plan;
          indexes = Planner.Indexes.defs (Planner.Plan.indexes ctx);
        })

let lint_plan_cmd =
  let text =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Algebra expression to plan, execute, and analyze against \
                 the stored tables.")
  in
  let no_optimize =
    Arg.(value & flag & info [ "no-optimize" ]
           ~doc:"Lint the query as written, skipping the logical rewrite \
                 pipeline — unpushed selections over indexed tables then \
                 surface as PL001.")
  in
  Cmd.v
    (Cmd.info "plan" ~version
       ~doc:"Lint a physical query plan against a database (codes \
             PL001-PL004)")
    Term.(const lint_plan_run $ db_file_arg $ text $ no_optimize $ format_arg)

let lint_schedule_run text file format =
  input_error_to_exit @@ fun () ->
  let text =
    match (text, file) with
    | Some t, None -> t
    | None, Some f -> String.trim (read_file f)
    | Some _, Some _ ->
        invalid_arg "give either a SCHEDULE argument or --file, not both"
    | None, None -> invalid_arg "expected a SCHEDULE argument or --file"
  in
  drive format Analysis.Concurrency_lint.schedule_passes
    (Transactions.Locked_schedule.of_string text)

let lint_schedule_cmd =
  let text =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SCHEDULE"
           ~doc:"History, e.g. 'r1(x) w2(x) c1 c2'; lock-annotated \
                 histories ('sl1(x) r1(x) u1(x) ...') additionally get \
                 the lock-discipline and concurrency-prediction passes.")
  in
  let file =
    Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE"
           ~doc:"Read the schedule from $(docv) instead of the command \
                 line (whitespace-separated tokens, newlines allowed).")
  in
  Cmd.v
    (Cmd.info "schedule" ~version
       ~doc:"Lint a transaction schedule (codes TX001-TX010, CC001-CC006)")
    Term.(const lint_schedule_run $ text $ file $ format_arg)

(* Register every runtime metric name on a fresh registry by exercising
   each instrumented subsystem once.  Registration happens at component
   construction (and, for the per-site fault counters, at first firing),
   so a tiny deterministic workload covers the whole name set. *)
let registered_metric_names () =
  let registry = Obs.Registry.create () in
  (* fault.*: per-site counters register lazily when a fault fires *)
  let fault = Storage.Fault.create () in
  Storage.Fault.set_metrics fault registry;
  let rule = [ { Storage.Fault.scope = None; prob = 1.0 } ] in
  Storage.Fault.configure fault
    { Storage.Fault.no_faults with torn = rule; flip = rule; eio = rule };
  ignore (Storage.Fault.torn_write fault ~at:"wal flush" : bool);
  ignore (Storage.Fault.bit_flip fault ~at:"page 1 write" ~len:8 : int option);
  ignore (Storage.Fault.transient fault ~at:"pager fsync" : bool);
  Storage.Fault.arm fault 0;
  (try Storage.Fault.io fault ~at:"wal flush" ~on_crash:(fun () -> ())
   with Storage.Fault.Crash _ -> ());
  (* pager/pool/wal/engine register at open; lock.*/exec.* at run *)
  let path = Filename.temp_file "dbmeta-lint-metrics" ".db" in
  Sys.remove path;
  let eng = Storage.Engine.open_db ~metrics:registry path in
  let programs =
    Transactions.Workload.generate (Support.Rng.create 0)
      {
        Transactions.Workload.txns = 2;
        ops_per_txn = 2;
        items = 1;
        skew = 0.;
        write_ratio = 1.0;
      }
  in
  let config =
    { Storage.Executor.default_config with lock_timeout = Some 8 }
  in
  ignore (Storage.Executor.run ~config eng programs : Storage.Executor.stats);
  (* plan.*: the planner registers its counters at context creation *)
  ignore (Planner.Plan.make eng : Planner.Plan.ctx);
  Storage.Engine.close eng;
  (try Sys.remove path with Sys_error _ -> ());
  (try Sys.remove (Storage.Engine.wal_path path) with Sys_error _ -> ());
  (* 2pc.*: the coordinator and its message layer register at open *)
  let base = Filename.temp_file "dbmeta-lint-metrics" ".dist" in
  Sys.remove base;
  let coord =
    Distributed.Coordinator.open_dist ~shards:1 ~metrics:registry base
  in
  Distributed.Coordinator.close coord;
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    [
      Distributed.Coordinator.coord_path base;
      Distributed.Coordinator.shard_path base 0;
      Storage.Engine.wal_path (Distributed.Coordinator.shard_path base 0);
    ];
  (* repl.*: the group, its replicas, and its shipping channel register
     at open; one commit exercises the quorum path *)
  let rbase = Filename.temp_file "dbmeta-lint-metrics" ".repl" in
  Sys.remove rbase;
  let grp = Replication.Group.open_group ~replicas:1 ~metrics:registry rbase in
  let txn = Replication.Group.begin_txn grp in
  Replication.Group.write grp ~txn "x" 1;
  ignore (Replication.Group.commit grp ~txn : Replication.Group.outcome);
  Replication.Group.close grp;
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    (Replication.Repl_meta.group_path rbase
     :: Replication.Repl_meta.acks_path rbase
     :: List.concat_map
          (fun k ->
            let p = Replication.Repl_meta.node_path rbase k in
            [ p; Storage.Engine.wal_path p; Replication.Repl_meta.epoch_path p ])
          [ 0; 1 ]);
  (* datalog.*: the semi-naive evaluator registers its instruments *)
  let prog =
    Datalog.Parser.parse_program
      "e(1, 2). e(2, 3). p(X, Y) :- e(X, Y). p(X, Y) :- p(X, Z), e(Z, Y)."
  in
  ignore
    (Datalog.Seminaive.eval_with_stats ~metrics:registry prog
       Datalog.Facts.empty);
  Obs.Registry.names registry

let lint_metrics_run catalogue format =
  input_error_to_exit @@ fun () ->
  let registered = registered_metric_names () in
  drive format Analysis.Obs_lint.passes
    { Analysis.Obs_lint.registered; catalogue_text = read_file catalogue }

let lint_metrics_cmd =
  let catalogue =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CATALOGUE"
           ~doc:"The metric catalogue to check, normally \
                 docs/OBSERVABILITY.md.")
  in
  Cmd.v
    (Cmd.info "metrics" ~version
       ~doc:"Check the runtime metric registry against the documented \
             catalogue (codes OB001-OB002)")
    Term.(const lint_metrics_run $ catalogue $ format_arg)

let lint_wal_run file format =
  input_error_to_exit @@ fun () ->
  drive format Analysis.Wal_lint.passes (Storage.Wal.report_file file)

let lint_wal_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"WAL"
           ~doc:"Binary write-ahead log to verify, normally DB.wal.  The \
                 file is opened read-only — a survivor log left by a \
                 crashed process is inspected as-is, never repaired.")
  in
  Cmd.v
    (Cmd.info "wal" ~version
       ~doc:"Verify a binary write-ahead log offline (codes WL001-WL010)")
    Term.(const lint_wal_run $ file $ format_arg)

let lint_commit_run base format =
  input_error_to_exit @@ fun () ->
  if Distributed.Coordinator.discover base = 0 then
    invalid_arg
      (Printf.sprintf "no shard files for %S (expected %s, %s, ...)" base
         (Distributed.Coordinator.shard_path base 0)
         (Distributed.Coordinator.shard_path base 1));
  drive format Analysis.Commit_lint.passes (Analysis.Commit_lint.of_base base)

let lint_commit_cmd =
  let base =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE"
           ~doc:"Sharded database base path: the coordinator log at \
                 BASE.2pc and every shard log BASE.shardK.wal are scanned \
                 read-only — the survivor files of a crashed run are \
                 inspected as-is, never repaired.")
  in
  Cmd.v
    (Cmd.info "commit" ~version
       ~doc:"Verify a two-phase-commit coordinator log against its shard \
             WALs (codes 2C001-2C006)")
    Term.(const lint_commit_run $ base $ format_arg)

let lint_repl_run base format =
  input_error_to_exit @@ fun () ->
  if
    Replication.Repl_meta.load_group base = None
    && Replication.Repl_meta.discover base < 2
  then
    invalid_arg
      (Printf.sprintf
         "no replication files for %S (expected a descriptor at %s or \
          replica files %s, ...)"
         base
         (Replication.Repl_meta.group_path base)
         (Replication.Repl_meta.node_path base 1));
  drive format Analysis.Replication_lint.passes
    (Analysis.Replication_lint.of_base base)

let lint_repl_cmd =
  let base =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE"
           ~doc:"Replication group base path: the descriptor at \
                 BASE.repl, the ack journal BASE.acks, and every node's \
                 WAL and epoch stamp are scanned read-only — the \
                 survivor files of a crashed or failed-over group are \
                 inspected as-is, never repaired.")
  in
  Cmd.v
    (Cmd.info "repl" ~version
       ~doc:"Verify a replication group's cross-log agreement: diverged \
             replicas, stale-epoch writes, acked-but-lost commits, and \
             snapshot/log-tail gaps (codes RP001-RP004)")
    Term.(const lint_repl_run $ base $ format_arg)

let lint_cmd =
  let doc =
    "Static analysis over Datalog programs, algebra plans, transaction \
     schedules, write-ahead logs, commit and replication protocols, and \
     the metric catalogue"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the relevant pass suite and prints severity-graded \
         diagnostics (error, warning, info) with stable codes.  Every \
         subcommand ($(b,datalog), $(b,query), $(b,plan), $(b,schedule), \
         $(b,wal), $(b,commit), $(b,metrics)) goes through the same driver \
         and exit-code policy: exits 0 when no errors were found, 1 when \
         at least one error-severity diagnostic was reported, and 2 when \
         the input does not parse.";
    ]
  in
  Cmd.group
    (Cmd.info "lint" ~version ~doc ~man)
    [
      lint_datalog_cmd; lint_query_cmd; lint_plan_cmd; lint_schedule_cmd;
      lint_wal_cmd; lint_commit_cmd; lint_repl_cmd; lint_metrics_cmd;
    ]

(* --- main ------------------------------------------------------------------------- *)

let main_cmd =
  let doc = "database metatheory workbench (PODS '95 reproduction)" in
  let info = Cmd.info "dbmeta" ~version ~doc in
  Cmd.group info
    [
      datalog_cmd; query_cmd; calculus_cmd; design_cmd; schedule_cmd; sat_cmd;
      db_cmd; lint_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
