(* dbmeta — the command-line face of the library: a Datalog engine, a
   schema-design tool, a schedule analyzer, and a DIMACS SAT solver. *)

open Cmdliner

let version = "1.1.0"

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)

(* Bad user input (unparseable files, queries, schedules, ill-typed
   plans, unsafe programs) is reported on stderr and exits 2; only
   genuine bugs may escape as a backtrace. *)
let input_error_to_exit f =
  let fail msg =
    Printf.eprintf "dbmeta: %s\n" msg;
    2
  in
  try f () with
  | Datalog.Parser.Parse_error msg
  | Calculus.Parser.Parse_error msg
  | Relational.Query_parser.Parse_error msg
  | Relational.Csv.Parse_error msg
  | Datalog.Checks.Unsafe_rule msg
  | Datalog.Checks.Not_stratifiable msg
  | Relational.Schema.Schema_error msg
  | Relational.Algebra.Type_error msg
  | Relational.Value.Type_clash msg
  | Invalid_argument msg
  | Failure msg ->
      fail msg
  | Relational.Database.Unknown_relation name ->
      fail (Printf.sprintf "unknown relation %S" name)
  | Sys_error msg -> fail msg

let load_tables tables =
  List.fold_left
    (fun db spec ->
      match String.index_opt spec '=' with
      | Some i ->
          let name = String.sub spec 0 i in
          let path = String.sub spec (i + 1) (String.length spec - i - 1) in
          Relational.Database.add db name (Relational.Csv.load path)
      | None ->
          raise
            (Invalid_argument
               (Printf.sprintf "--table expects name=file.csv, got %S" spec)))
    Relational.Database.empty tables

(* --- datalog run ----------------------------------------------------------- *)

let datalog_run file query engine explain =
  input_error_to_exit @@ fun () ->
  let program = Datalog.Parser.parse_program (read_file file) in
  Datalog.Checks.check_safety program;
  let edb = Datalog.Facts.empty in
  match query with
  | None ->
      let result =
        match engine with
        | `Naive -> Datalog.Naive.eval program edb
        | `Seminaive | `Magic -> Datalog.Seminaive.eval program edb
      in
      let idb = Datalog.Ast.idb_predicates program in
      List.iter
        (fun pred ->
          Datalog.Facts.Tuple_set.iter
            (fun tup ->
              Printf.printf "%s(%s).\n" pred
                (String.concat ", "
                   (Array.to_list
                      (Array.map Relational.Value.to_literal tup))))
            (Datalog.Facts.get result pred))
        idb;
      0
  | Some q ->
      let q = Datalog.Parser.parse_query q in
      let answers =
        match engine with
        | `Naive -> Datalog.Naive.query program edb q
        | `Seminaive -> Datalog.Seminaive.query program edb q
        | `Magic -> Datalog.Magic.query program edb q
      in
      let provenance =
        if explain then Some (snd (Datalog.Provenance.eval program edb))
        else None
      in
      Datalog.Facts.Tuple_set.iter
        (fun tup ->
          Printf.printf "%s(%s).\n" q.Datalog.Ast.pred
            (String.concat ", "
               (Array.to_list (Array.map Relational.Value.to_literal tup)));
          match provenance with
          | Some store ->
              print_string (Datalog.Provenance.explain store q.Datalog.Ast.pred tup)
          | None -> ())
        answers;
      0

let datalog_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Datalog program (rules and facts).")
  in
  let query =
    Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY"
           ~doc:"Query atom, e.g. 'path(1, X)'. Without it, every IDB \
                 predicate is dumped.")
  in
  let engine =
    Arg.(value
         & opt (enum [ ("naive", `Naive); ("seminaive", `Seminaive); ("magic", `Magic) ])
             `Seminaive
         & info [ "e"; "engine" ] ~docv:"ENGINE"
             ~doc:"Evaluation strategy: naive, seminaive, or magic (magic \
                   requires a positive program and a query).")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Print a proof tree under each answer (why-provenance).")
  in
  Cmd.v
    (Cmd.info "datalog" ~version ~doc:"Evaluate a Datalog program")
    Term.(const datalog_run $ file $ query $ engine $ explain)

(* --- query ------------------------------------------------------------------- *)

let query_run text tables optimize =
  input_error_to_exit @@ fun () ->
  let db = load_tables tables in
  let expr = Relational.Query_parser.parse text in
  let catalog = Relational.Algebra.catalog_of_database db in
  let expr =
    if optimize then
      Relational.Optimizer.optimize catalog
        (Relational.Optimizer.stats_of_database db)
        expr
    else expr
  in
  if optimize then
    Printf.printf "plan: %s\n" (Relational.Algebra.to_string expr);
  print_string (Relational.Relation.to_string (Relational.Eval.eval db expr));
  0

let query_cmd =
  let text =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Algebra expression, e.g. \
                 'project[sname](select[grade >= 85](students join enrolled))'.")
  in
  let tables =
    Arg.(value & opt_all string [] & info [ "t"; "table" ] ~docv:"NAME=FILE"
           ~doc:"Bind a relation name to a CSV file (repeatable). The CSV \
                 header carries the schema as name:type pairs.")
  in
  let optimize =
    Arg.(value & flag & info [ "O"; "optimize" ]
           ~doc:"Run the optimizer and print the chosen plan.")
  in
  Cmd.v
    (Cmd.info "query" ~version ~doc:"Evaluate a relational algebra query over CSV tables")
    Term.(const query_run $ text $ tables $ optimize)

(* --- calculus ----------------------------------------------------------------- *)

let calculus_run text tables interpret show_plan =
  input_error_to_exit @@ fun () ->
  let q = Calculus.Parser.parse_query text in
  let db = load_tables tables in
  Printf.printf "query: %s\n" (Calculus.Formula.query_to_string q);
  Printf.printf "safety: %s\n"
    (Calculus.Safety.explain (Calculus.Safety.is_safe_range q));
  let result =
    if interpret then Calculus.Active_domain.eval db q
    else begin
      let plan = Calculus.To_algebra.translate_query db q in
      if show_plan then
        Printf.printf "plan: %s\n" (Relational.Algebra.to_string plan);
      Relational.Eval.eval db plan
    end
  in
  print_string (Relational.Relation.to_string result);
  0

let calculus_cmd =
  let text =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Calculus query, e.g. \
                 '{x | exists y. edge(x, y) and not edge(x, x)}'.")
  in
  let tables =
    Arg.(value & opt_all string [] & info [ "t"; "table" ] ~docv:"NAME=FILE"
           ~doc:"Bind a relation name to a CSV file (repeatable).")
  in
  let interpret =
    Arg.(value & flag & info [ "interpret" ]
           ~doc:"Use the naive active-domain interpreter instead of \
                 compiling to algebra (Codd's theorem).")
  in
  let show_plan =
    Arg.(value & flag & info [ "plan" ] ~doc:"Print the compiled algebra plan.")
  in
  Cmd.v
    (Cmd.info "calculus" ~version ~doc:"Evaluate a relational calculus query over CSV tables")
    Term.(const calculus_run $ text $ tables $ interpret $ show_plan)

(* --- design ------------------------------------------------------------------ *)

let design_run attrs fds =
  input_error_to_exit @@ fun () ->
  let universe = Dependencies.Attrs.of_string attrs in
  let fds = Dependencies.Fd.set_of_string fds in
  let scheme = { Dependencies.Normal_forms.name = "r"; attrs = universe; fds } in
  Printf.printf "scheme: %s\n"
    (Dependencies.Normal_forms.scheme_to_string scheme);
  let keys = Dependencies.Fd.candidate_keys ~universe fds in
  Printf.printf "candidate keys: %s\n"
    (String.concat ", " (List.map Dependencies.Attrs.to_string keys));
  Printf.printf "minimal cover: %s\n"
    (Dependencies.Fd.set_to_string (Dependencies.Fd.minimal_cover fds));
  Printf.printf "2NF: %b  3NF: %b  BCNF: %b\n"
    (Dependencies.Normal_forms.is_2nf scheme)
    (Dependencies.Normal_forms.is_3nf scheme)
    (Dependencies.Normal_forms.is_bcnf scheme);
  List.iter
    (fun v ->
      Printf.printf "  BCNF violation: %s (%s)\n"
        (Dependencies.Fd.to_string v.Dependencies.Normal_forms.fd)
        v.Dependencies.Normal_forms.reason)
    (Dependencies.Normal_forms.violations_bcnf scheme);
  let bcnf = Dependencies.Normal_forms.bcnf_decompose scheme in
  Printf.printf "BCNF decomposition (lossless %b, dep-preserving %b):\n"
    (Dependencies.Normal_forms.lossless scheme bcnf)
    (Dependencies.Normal_forms.dependency_preserving scheme bcnf);
  List.iter
    (fun s ->
      Printf.printf "  %s\n" (Dependencies.Normal_forms.scheme_to_string s))
    bcnf;
  let threenf = Dependencies.Normal_forms.synthesize_3nf scheme in
  Printf.printf "3NF synthesis (lossless %b, dep-preserving %b):\n"
    (Dependencies.Normal_forms.lossless scheme threenf)
    (Dependencies.Normal_forms.dependency_preserving scheme threenf);
  List.iter
    (fun s ->
      Printf.printf "  %s\n" (Dependencies.Normal_forms.scheme_to_string s))
    threenf;
  0

let design_cmd =
  let attrs =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTRS"
           ~doc:"Attributes, e.g. 'ABC' or 'city,street,zip'.")
  in
  let fds =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FDS"
           ~doc:"Functional dependencies, e.g. 'AB -> C; C -> A'.")
  in
  Cmd.v
    (Cmd.info "design" ~version ~doc:"Analyze and normalize a relation scheme")
    Term.(const design_run $ attrs $ fds)

(* --- schedule ------------------------------------------------------------------ *)

let schedule_run text =
  input_error_to_exit @@ fun () ->
  let s = Transactions.Schedule.of_string text in
  Printf.printf "schedule: %s\n" (Transactions.Schedule.to_string s);
  Printf.printf "well-formed: %b\n" (Transactions.Schedule.well_formed s);
  Printf.printf "conflict-serializable: %b\n"
    (Transactions.Serializability.is_conflict_serializable s);
  (match Transactions.Serializability.conflict_equivalent_serial_order s with
  | Some order ->
      Printf.printf "equivalent serial order: %s\n"
        (String.concat " < " (List.map string_of_int order))
  | None -> ());
  if List.length (Transactions.Schedule.txns s) <= 8 then
    Printf.printf "view-serializable: %b\n"
      (Transactions.Serializability.is_view_serializable s);
  Printf.printf "recoverable: %b\navoids cascading aborts: %b\nstrict: %b\n"
    (Transactions.Serializability.is_recoverable s)
    (Transactions.Serializability.avoids_cascading_aborts s)
    (Transactions.Serializability.is_strict s);
  0

let schedule_cmd =
  let text =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCHEDULE"
           ~doc:"History, e.g. 'r1(x) w2(x) c1 c2'.")
  in
  Cmd.v
    (Cmd.info "schedule" ~version ~doc:"Analyze a transaction schedule")
    Term.(const schedule_run $ text)

(* --- sat ------------------------------------------------------------------------- *)

let sat_run file =
  input_error_to_exit @@ fun () ->
  let cnf = Sat.Cnf.of_dimacs (read_file file) in
  (match Sat.Dpll.solve cnf with
  | Sat.Dpll.Sat assignment ->
      print_endline "s SATISFIABLE";
      let lits =
        List.map (fun (v, b) -> if b then v else -v) assignment
        |> List.sort (fun a b -> Int.compare (abs a) (abs b))
      in
      Printf.printf "v %s 0\n" (String.concat " " (List.map string_of_int lits))
  | Sat.Dpll.Unsat -> print_endline "s UNSATISFIABLE");
  0

let sat_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"CNF in DIMACS format.")
  in
  Cmd.v (Cmd.info "sat" ~version ~doc:"Decide a DIMACS CNF with DPLL")
    Term.(const sat_run $ file)

(* --- lint ------------------------------------------------------------------------- *)

let format_arg =
  Arg.(value
       & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "format" ] ~docv:"FORMAT"
           ~doc:"Output format: text or json.")

let render_and_exit format diags =
  (match format with
  | `Text -> print_string (Analysis.Diagnostic.list_to_text diags)
  | `Json -> print_string (Analysis.Diagnostic.list_to_json diags));
  Analysis.Diagnostic.exit_code diags

let lint_datalog_run file query format =
  input_error_to_exit @@ fun () ->
  let program = Datalog.Parser.parse_program (read_file file) in
  let query = Option.map Datalog.Parser.parse_query query in
  render_and_exit format (Analysis.Datalog_lint.lint ?query program)

let lint_datalog_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Datalog program to analyze.")
  in
  let query =
    Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY"
           ~doc:"Query atom; enables dead-rule (DL008) analysis and \
                 sharpens unused-predicate (DL005) reporting.")
  in
  Cmd.v
    (Cmd.info "datalog" ~version
       ~doc:"Lint a Datalog program (codes DL001-DL008)")
    Term.(const lint_datalog_run $ file $ query $ format_arg)

(* name=a:int,b:string — a schema for a relation that has no CSV backing *)
let parse_schema_spec spec =
  let fail () =
    invalid_arg
      (Printf.sprintf
         "--schema expects name=attr:type,... with types int, string, \
          float, bool; got %S"
         spec)
  in
  match String.index_opt spec '=' with
  | None -> fail ()
  | Some i ->
      let name = String.sub spec 0 i in
      let body = String.sub spec (i + 1) (String.length spec - i - 1) in
      let pairs =
        List.map
          (fun field ->
            match String.index_opt field ':' with
            | None -> fail ()
            | Some j -> (
                let attr = String.sub field 0 j in
                let ty =
                  String.sub field (j + 1) (String.length field - j - 1)
                in
                match Relational.Value.ty_of_string ty with
                | Some ty when attr <> "" -> (attr, ty)
                | _ -> fail ()))
          (String.split_on_char ',' body |> List.filter (fun f -> f <> ""))
      in
      if name = "" || pairs = [] then fail ();
      (name, Relational.Schema.make pairs)

let lint_query_run text tables schemas format =
  input_error_to_exit @@ fun () ->
  let db = load_tables tables in
  let inline = List.map parse_schema_spec schemas in
  let catalog name =
    match List.assoc_opt name inline with
    | Some s -> Some s
    | None -> Analysis.Relational_lint.catalog_of_database db name
  in
  let plan = Relational.Query_parser.parse text in
  render_and_exit format (Analysis.Relational_lint.lint ~catalog plan)

let lint_query_cmd =
  let text =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Algebra expression to analyze.")
  in
  let tables =
    Arg.(value & opt_all string [] & info [ "t"; "table" ] ~docv:"NAME=FILE"
           ~doc:"Bind a relation name to a CSV file (repeatable).")
  in
  let schemas =
    Arg.(value & opt_all string [] & info [ "s"; "schema" ] ~docv:"NAME=SPEC"
           ~doc:"Declare a relation schema inline, e.g. \
                 'edge=src:int,dst:int' (repeatable; no data needed).")
  in
  Cmd.v
    (Cmd.info "query" ~version
       ~doc:"Lint a relational algebra plan (codes RA001-RA006)")
    Term.(const lint_query_run $ text $ tables $ schemas $ format_arg)

let lint_schedule_run text format =
  input_error_to_exit @@ fun () ->
  render_and_exit format (Analysis.Transaction_lint.lint_string text)

let lint_schedule_cmd =
  let text =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCHEDULE"
           ~doc:"History, e.g. 'r1(x) w2(x) c1 c2'; lock-annotated \
                 histories ('sl1(x) r1(x) u1(x) ...') additionally get \
                 the lock-discipline passes.")
  in
  Cmd.v
    (Cmd.info "schedule" ~version
       ~doc:"Lint a transaction schedule (codes TX001-TX010)")
    Term.(const lint_schedule_run $ text $ format_arg)

let lint_cmd =
  let doc =
    "Static analysis over Datalog programs, algebra plans, and \
     transaction schedules"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the relevant pass suite and prints severity-graded \
         diagnostics (error, warning, info) with stable codes.  Exits 0 \
         when no errors were found, 1 when at least one error-severity \
         diagnostic was reported, and 2 when the input does not parse.";
    ]
  in
  Cmd.group
    (Cmd.info "lint" ~version ~doc ~man)
    [ lint_datalog_cmd; lint_query_cmd; lint_schedule_cmd ]

(* --- main ------------------------------------------------------------------------- *)

let main_cmd =
  let doc = "database metatheory workbench (PODS '95 reproduction)" in
  let info = Cmd.info "dbmeta" ~version ~doc in
  Cmd.group info
    [
      datalog_cmd; query_cmd; calculus_cmd; design_cmd; schedule_cmd; sat_cmd;
      lint_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
