(* Tests for the access-method library (B+tree, extendible hashing) and
   the nested relational model. *)

module R = Relational
module B = Access.Btree
module H = Access.Hash_index
module N = Nested
open R.Value

let check_inv msg = function
  | Ok () -> ()
  | Error e -> Alcotest.fail (msg ^ ": " ^ e)

(* --- btree ------------------------------------------------------------------ *)

let test_btree_basic () =
  let t = B.create ~order:4 () in
  List.iter (fun k -> B.insert t (Int k) (k * 10)) [ 5; 1; 9; 3; 7; 2; 8; 4; 6 ];
  Alcotest.(check (list int)) "find 7" [ 70 ] (B.find t (Int 7));
  Alcotest.(check (list int)) "find missing" [] (B.find t (Int 42));
  Alcotest.(check int) "cardinality" 9 (B.cardinality t);
  check_inv "after inserts" (B.check_invariants t)

let test_btree_duplicates () =
  let t = B.create () in
  B.insert t (Int 1) "a";
  B.insert t (Int 1) "b";
  Alcotest.(check (list string)) "payloads in order" [ "a"; "b" ] (B.find t (Int 1))

let test_btree_range () =
  let t = B.of_list (List.init 50 (fun k -> (Int k, k))) in
  let hits = B.range t ~lo:(Int 10) ~hi:(Int 19) in
  Alcotest.(check int) "ten keys" 10 (List.length hits);
  Alcotest.(check bool) "sorted" true
    (List.for_all2
       (fun (k, _) expected -> R.Value.equal k (Int expected))
       hits
       (List.init 10 (fun i -> 10 + i)))

let test_btree_range_empty_and_edges () =
  let t = B.of_list (List.init 10 (fun k -> (Int (2 * k), k))) in
  Alcotest.(check int) "gap range" 0
    (List.length (B.range t ~lo:(Int 1) ~hi:(Int 1)));
  Alcotest.(check int) "full range" 10
    (List.length (B.range t ~lo:(Int 0) ~hi:(Int 100)));
  Alcotest.(check int) "below everything" 0
    (List.length (B.range t ~lo:(Int (-10)) ~hi:(Int (-1))))

let test_btree_delete_lazy () =
  let t = B.of_list (List.init 30 (fun k -> (Int k, k))) in
  Alcotest.(check bool) "delete hits" true (B.delete t (Int 13));
  Alcotest.(check bool) "gone" false (B.mem t (Int 13));
  Alcotest.(check bool) "second delete misses" false (B.delete t (Int 13));
  Alcotest.(check int) "one fewer key" 29 (B.cardinality t);
  check_inv "lazy deletion keeps structure" (B.check_invariants t)

let test_btree_height_grows_logarithmically () =
  let t = B.of_list (List.init 500 (fun k -> (Int k, k))) in
  Alcotest.(check bool)
    (Printf.sprintf "height %d within bounds" (B.height t))
    true
    (B.height t >= 3 && B.height t <= 6);
  check_inv "big tree" (B.check_invariants t)

let test_btree_type_clash () =
  let t = B.create () in
  B.insert t (Int 1) 0;
  Alcotest.(check bool) "string key rejected" true
    (match B.insert t (String "x") 0 with
    | () -> false
    | exception B.Key_type_clash _ -> true)

let test_btree_index_relation () =
  let index = B.index_relation Fixtures.enrolled "grade" in
  let hits =
    B.select_range index Fixtures.enrolled ~lo:(Int 85) ~hi:(Int 100)
  in
  let scan =
    R.Relation.select
      (fun tup ->
        match tup.(2) with Int g -> g >= 85 && g <= 100 | _ -> false)
      Fixtures.enrolled
  in
  Alcotest.check Fixtures.relation_testable "index = scan" scan hits

let prop_btree_matches_map =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"btree agrees with a reference map"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let t = B.create ~order:(3 + Support.Rng.int rng 6) () in
         let reference = Hashtbl.create 32 in
         for _ = 1 to 150 do
           let k = Support.Rng.int rng 60 in
           if Support.Rng.int rng 4 = 0 then begin
             ignore (B.delete t (Int k));
             Hashtbl.remove reference k
           end
           else begin
             B.insert t (Int k) k;
             Hashtbl.replace reference k
               ((match Hashtbl.find_opt reference k with
                | Some ps -> ps
                | None -> [])
               @ [ k ])
           end
         done;
         B.check_invariants t = Ok ()
         && List.for_all
              (fun k ->
                B.find t (Int k)
                = (match Hashtbl.find_opt reference k with
                  | Some ps -> ps
                  | None -> []))
              (List.init 60 Fun.id)))

let prop_btree_iter_sorted =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"btree iteration is sorted"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let t = B.create ~order:4 () in
         for _ = 1 to 100 do
           B.insert t (Int (Support.Rng.int rng 1000)) ()
         done;
         let keys = ref [] in
         B.iter (fun k _ -> keys := k :: !keys) t;
         let keys = List.rev !keys in
         let rec sorted = function
           | [] | [ _ ] -> true
           | a :: (b :: _ as rest) -> R.Value.compare a b < 0 && sorted rest
         in
         sorted keys))

(* --- extendible hashing --------------------------------------------------------- *)

let test_hash_basic () =
  let h = H.create ~bucket_capacity:2 () in
  List.iter (fun k -> H.insert h (Int k) (k * 10)) (List.init 40 Fun.id);
  Alcotest.(check (list int)) "find" [ 130 ] (H.find h (Int 13));
  Alcotest.(check (list int)) "missing" [] (H.find h (Int 400));
  Alcotest.(check int) "cardinality" 40 (H.cardinality h);
  Alcotest.(check bool) "directory grew" true (H.global_depth h > 0);
  check_inv "after inserts" (H.check_invariants h)

let test_hash_duplicates_and_delete () =
  let h = H.create () in
  H.insert h (String "k") 1;
  H.insert h (String "k") 2;
  Alcotest.(check (list int)) "accumulates" [ 1; 2 ] (H.find h (String "k"));
  Alcotest.(check bool) "delete" true (H.delete h (String "k"));
  Alcotest.(check bool) "gone" false (H.mem h (String "k"))

let test_hash_directory_power_of_two () =
  let h = H.create ~bucket_capacity:1 () in
  List.iter (fun k -> H.insert h (Int k) k) (List.init 64 Fun.id);
  Alcotest.(check int) "2^depth" (1 lsl H.global_depth h) (H.directory_size h);
  Alcotest.(check bool) "buckets <= directory" true
    (H.bucket_count h <= H.directory_size h);
  check_inv "invariants" (H.check_invariants h)

let prop_hash_matches_map =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"hash index agrees with a reference map"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let h = H.create ~bucket_capacity:(1 + Support.Rng.int rng 4) () in
         let reference = Hashtbl.create 32 in
         for _ = 1 to 200 do
           let k = Support.Rng.int rng 80 in
           if Support.Rng.int rng 4 = 0 then begin
             ignore (H.delete h (Int k));
             Hashtbl.remove reference k
           end
           else begin
             H.insert h (Int k) k;
             Hashtbl.replace reference k
               ((match Hashtbl.find_opt reference k with
                | Some ps -> ps
                | None -> [])
               @ [ k ])
           end
         done;
         H.check_invariants h = Ok ()
         && List.for_all
              (fun k ->
                H.find h (Int k)
                = (match Hashtbl.find_opt reference k with
                  | Some ps -> ps
                  | None -> []))
              (List.init 80 Fun.id)))

(* --- nested relations -------------------------------------------------------------- *)

let flat_courses =
  N.of_flat
    (R.Relation.of_list
       (R.Schema.make [ ("student", TString); ("course", TString) ])
       [
         [ String "ada"; String "db" ];
         [ String "ada"; String "logic" ];
         [ String "bob"; String "db" ];
       ])

let test_nest_groups () =
  let nested = N.nest flat_courses ~into:"courses" [ "course" ] in
  Alcotest.(check int) "two students" 2 (N.cardinality nested);
  Alcotest.(check int) "depth 2" 2 (N.depth (N.schema nested));
  (* ada has two courses *)
  let ada_row =
    List.find
      (fun tup -> tup.(0) = N.V (String "ada"))
      (N.tuples nested)
  in
  (match ada_row.(1) with
  | N.R inner -> Alcotest.(check int) "ada's courses" 2 (N.cardinality inner)
  | N.V _ -> Alcotest.fail "expected nested relation")

let test_unnest_inverts_nest () =
  let nested = N.nest flat_courses ~into:"courses" [ "course" ] in
  let back = N.unnest nested "courses" in
  Alcotest.(check bool) "unnest . nest = id" true (N.equal back flat_courses)

let test_nest_after_unnest_needs_pnf () =
  (* a non-PNF nested relation: same atomic key with different sets *)
  let inner_schema = [ ("c", N.Atom TString) ] in
  let inner values =
    N.create inner_schema
      (List.map (fun v -> [| N.V (String v) |]) values)
  in
  let non_pnf =
    N.create
      [ ("s", N.Atom TString); ("cs", N.Set inner_schema) ]
      [
        [| N.V (String "ada"); N.R (inner [ "db" ]) |];
        [| N.V (String "ada"); N.R (inner [ "logic" ]) |];
      ]
  in
  Alcotest.(check bool) "not PNF" false (N.is_pnf non_pnf);
  let roundtrip = N.nest (N.unnest non_pnf "cs") ~into:"cs" [ "c" ] in
  (* the two rows collapse into one: information is lost *)
  Alcotest.(check int) "rows merged" 1 (N.cardinality roundtrip);
  Alcotest.(check bool) "roundtrip differs" false (N.equal roundtrip non_pnf);
  (* whereas a PNF relation survives *)
  let pnf = N.nest flat_courses ~into:"cs" [ "course" ] in
  Alcotest.(check bool) "PNF holds" true (N.is_pnf pnf);
  let rt = N.nest (N.unnest pnf "cs") ~into:"cs" [ "course" ] in
  Alcotest.(check bool) "PNF roundtrip exact" true (N.equal rt pnf)

let test_unnest_drops_empty_sets () =
  let inner_schema = [ ("c", N.Atom TString) ] in
  let with_empty =
    N.create
      [ ("s", N.Atom TString); ("cs", N.Set inner_schema) ]
      [ [| N.V (String "eve"); N.R (N.create inner_schema []) |] ]
  in
  let flat = N.unnest with_empty "cs" in
  Alcotest.(check int) "eve disappears" 0 (N.cardinality flat)

let test_flatten_deep () =
  let nested = N.nest flat_courses ~into:"cs" [ "course" ] in
  let deeper = N.nest nested ~into:"block" [ "cs" ] in
  Alcotest.(check int) "depth 3" 3 (N.depth (N.schema deeper));
  let flat = N.flatten deeper in
  Alcotest.(check int) "flat depth 1" 1 (N.depth (N.schema flat));
  Alcotest.(check bool) "flatten recovers the original" true
    (N.equal flat flat_courses)

let test_nested_type_checks () =
  Alcotest.(check bool) "bad atom type" true
    (match
       N.create [ ("a", N.Atom TInt) ] [ [| N.V (String "x") |] ]
     with
    | _ -> false
    | exception N.Nested_error _ -> true);
  Alcotest.(check bool) "relation where atom expected" true
    (match
       N.create
         [ ("a", N.Atom TInt) ]
         [ [| N.R (N.create [ ("b", N.Atom TInt) ] []) |] ]
     with
    | _ -> false
    | exception N.Nested_error _ -> true)

let test_nest_errors () =
  Alcotest.(check bool) "unknown attribute" true
    (match N.nest flat_courses ~into:"x" [ "nope" ] with
    | _ -> false
    | exception N.Nested_error _ -> true);
  Alcotest.(check bool) "empty fold" true
    (match N.nest flat_courses ~into:"x" [] with
    | _ -> false
    | exception N.Nested_error _ -> true);
  Alcotest.(check bool) "name clash" true
    (match N.nest flat_courses ~into:"student" [ "course" ] with
    | _ -> false
    | exception N.Nested_error _ -> true)

let prop_unnest_nest_identity =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:50 ~name:"unnest . nest = id on random flat relations"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let schema =
           R.Schema.make [ ("a", TInt); ("b", TInt); ("c", TInt) ]
         in
         let rel = R.Generator.random_relation rng schema ~size:12 ~domain:4 in
         let flat = N.of_flat rel in
         let nested = N.nest flat ~into:"g" [ "c" ] in
         N.is_pnf nested
         && N.equal (N.unnest nested "g") flat
         && N.equal (N.nest (N.unnest nested "g") ~into:"g" [ "c" ]) nested))

let prop_nest_not_commutative_in_general =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30
       ~name:"nest_b . nest_c and nest_c . nest_b differ in schema"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let schema = R.Schema.make [ ("a", TInt); ("b", TInt); ("c", TInt) ] in
         let rel = R.Generator.random_relation rng schema ~size:8 ~domain:3 in
         let flat = N.of_flat rel in
         let bc = N.nest (N.nest flat ~into:"gb" [ "b" ]) ~into:"gc" [ "c" ] in
         let cb = N.nest (N.nest flat ~into:"gc" [ "c" ]) ~into:"gb" [ "b" ] in
         (* the two orders produce structurally different schemas *)
         N.schema bc <> N.schema cb))

let suite =
  [
    Alcotest.test_case "btree basic" `Quick test_btree_basic;
    Alcotest.test_case "btree duplicates" `Quick test_btree_duplicates;
    Alcotest.test_case "btree range" `Quick test_btree_range;
    Alcotest.test_case "btree range edges" `Quick test_btree_range_empty_and_edges;
    Alcotest.test_case "btree lazy delete" `Quick test_btree_delete_lazy;
    Alcotest.test_case "btree height" `Quick test_btree_height_grows_logarithmically;
    Alcotest.test_case "btree type clash" `Quick test_btree_type_clash;
    Alcotest.test_case "btree secondary index" `Quick test_btree_index_relation;
    prop_btree_matches_map;
    prop_btree_iter_sorted;
    Alcotest.test_case "hash basic" `Quick test_hash_basic;
    Alcotest.test_case "hash duplicates/delete" `Quick test_hash_duplicates_and_delete;
    Alcotest.test_case "hash directory 2^d" `Quick test_hash_directory_power_of_two;
    prop_hash_matches_map;
    Alcotest.test_case "nest groups" `Quick test_nest_groups;
    Alcotest.test_case "unnest inverts nest" `Quick test_unnest_inverts_nest;
    Alcotest.test_case "nest/unnest needs PNF" `Quick test_nest_after_unnest_needs_pnf;
    Alcotest.test_case "unnest drops empty sets" `Quick test_unnest_drops_empty_sets;
    Alcotest.test_case "flatten deep" `Quick test_flatten_deep;
    Alcotest.test_case "nested type checks" `Quick test_nested_type_checks;
    Alcotest.test_case "nest errors" `Quick test_nest_errors;
    prop_unnest_nest_identity;
    prop_nest_not_commutative_in_general;
  ]
