(* Tests for the second extension batch: WAL/undo recovery, the
   universal-relation window, the calculus parser, and the evolving
   research graph. *)

module R = Relational
module T = Transactions
module Dep = Dependencies
module M = Metatheory
module F = Calculus.Formula
open R.Value
open Fixtures

(* --- recovery ------------------------------------------------------------- *)

let store_testable =
  Alcotest.testable
    (fun fmt store ->
      Format.pp_print_string fmt
        (String.concat ", "
           (List.map (fun (i, v) -> Printf.sprintf "%s=%d" i v)
              (List.sort Stdlib.compare store))))
    (fun a b ->
      let norm s = List.sort Stdlib.compare (List.filter (fun (_, v) -> v <> 0) s) in
      norm a = norm b)

let test_recovery_simple_undo () =
  let log =
    [
      T.Recovery.Begin 1;
      T.Recovery.Write (1, "x", 0, 5);
      T.Recovery.Commit 1;
      T.Recovery.Begin 2;
      T.Recovery.Write (2, "x", 5, 9);
      (* crash: t2 in flight *)
    ]
  in
  let disk = T.Recovery.apply_log [] log in
  Alcotest.(check int) "dirty value on disk" 9 (T.Recovery.read disk "x");
  let recovered = T.Recovery.recover disk log in
  Alcotest.(check int) "undo restores committed value" 5
    (T.Recovery.read recovered "x");
  Alcotest.check store_testable "matches committed state"
    (T.Recovery.committed_state log)
    recovered

let test_recovery_winners_losers () =
  let log =
    [
      T.Recovery.Begin 1;
      T.Recovery.Begin 2;
      T.Recovery.Write (1, "a", 0, 1);
      T.Recovery.Commit 1;
      T.Recovery.Begin 3;
      T.Recovery.Write (3, "b", 0, 7);
    ]
  in
  Alcotest.(check (list int)) "winners" [ 1 ] (T.Recovery.winners log);
  Alcotest.(check (list int)) "losers" [ 2; 3 ] (T.Recovery.losers log)

let test_recovery_multiple_writes_reverse_undo () =
  (* the loser writes x twice; undo must restore the ORIGINAL value *)
  let log =
    [
      T.Recovery.Begin 1;
      T.Recovery.Write (1, "x", 0, 3);
      T.Recovery.Write (1, "x", 3, 8);
    ]
  in
  let disk = T.Recovery.apply_log [] log in
  Alcotest.(check int) "before recovery" 8 (T.Recovery.read disk "x");
  Alcotest.(check int) "after recovery" 0
    (T.Recovery.read (T.Recovery.recover disk log) "x")

let prop_recovery_correct =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:120
       ~name:"crash anywhere: recovery = committed prefix"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let specs =
           List.init (2 + Support.Rng.int rng 3) (fun t ->
               ( t + 1,
                 List.init (1 + Support.Rng.int rng 4) (fun _ ->
                     ( Printf.sprintf "x%d" (Support.Rng.int rng 4),
                       1 + Support.Rng.int rng 90 )) ))
         in
         let crash_at = Support.Rng.int rng 25 in
         let disk, log = T.Recovery.run_and_crash rng ~specs ~crash_at in
         let recovered = T.Recovery.recover disk log in
         let expected = T.Recovery.committed_state log in
         let norm s = List.sort Stdlib.compare (List.filter (fun (_, v) -> v <> 0) s) in
         norm recovered = norm expected))

let prop_recovery_idempotent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60
       ~name:"recovery is idempotent (crash during recovery is safe)"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let specs =
           List.init 3 (fun t ->
               ( t + 1,
                 List.init 3 (fun _ ->
                     ( Printf.sprintf "x%d" (Support.Rng.int rng 3),
                       1 + Support.Rng.int rng 90 )) ))
         in
         let crash_at = Support.Rng.int rng 16 in
         let disk, log = T.Recovery.run_and_crash rng ~specs ~crash_at in
         let once = T.Recovery.recover disk log in
         let twice = T.Recovery.recover once log in
         once = twice))

(* --- universal relation ------------------------------------------------------ *)

(* an acyclic scheme: students(sid, sname, year) - enrolled(sid, cid, grade)
   - courses(cid, title, dept) *)
let university_relations = [ students; enrolled; courses ]

let test_window_single_relation () =
  let w =
    Dep.Universal.window university_relations (Dep.Attrs.singleton "sname")
  in
  Alcotest.(check int) "all names" 5 (R.Relation.cardinality w)

let test_window_crosses_two_relations () =
  let w =
    Dep.Universal.window university_relations
      (Dep.Attrs.of_list [ "sname"; "grade" ])
  in
  (* one row per enrollment *)
  Alcotest.(check int) "name-grade pairs" 9 (R.Relation.cardinality w)

let test_window_spans_whole_tree () =
  let w =
    Dep.Universal.window university_relations
      (Dep.Attrs.of_list [ "sname"; "dept" ])
  in
  (* students' departments through their enrollments, deduplicated; the
     window's columns come out in sorted attribute order (dept, sname) *)
  Alcotest.(check bool) "ada took a cs course" true
    (R.Relation.mem w [| String "cs"; String "ada" |]);
  Alcotest.(check bool) "eve took nothing" false
    (R.Relation.fold
       (fun tup acc -> acc || R.Value.equal tup.(1) (String "eve"))
       w false)

let test_window_matches_direct_join () =
  let w =
    Dep.Universal.window university_relations
      (Dep.Attrs.of_list [ "sname"; "title" ])
  in
  let direct =
    R.Relation.project
      (R.Relation.join (R.Relation.join students enrolled) courses)
      [ "sname"; "title" ]
  in
  Alcotest.check relation_testable "window = projected join" direct w

let test_window_unknown_attribute () =
  Alcotest.(check bool) "unknown attr" true
    (match Dep.Universal.window university_relations (Dep.Attrs.singleton "zzz") with
    | _ -> false
    | exception Dep.Universal.Unknown_attribute _ -> true)

let test_window_disconnected () =
  let island =
    R.Relation.of_list (R.Schema.make [ ("k", TInt) ]) [ [ Int 1 ] ]
  in
  Alcotest.(check bool) "disconnected refused" true
    (match
       Dep.Universal.window (island :: university_relations)
         (Dep.Attrs.of_list [ "k"; "sname" ])
     with
    | _ -> false
    | exception Dep.Universal.Not_connected _ -> true)

let test_window_qualification_minimal () =
  (* asking for sid+cid needs only enrolled *)
  let qual =
    Dep.Universal.qualification university_relations
      (Dep.Attrs.of_list [ "sid"; "cid" ])
  in
  Alcotest.(check int) "single relation suffices" 1 (List.length qual)

(* --- calculus parser ------------------------------------------------------------ *)

let test_calc_parse_and_eval () =
  let q =
    Calculus.Parser.parse_query
      "{x | exists y. edge(x, y) and not edge(x, x)}"
  in
  let result = Calculus.Active_domain.eval graph_db q in
  (* sources without self-loop; the fixture graph has none, so all
     sources: 1,2,3,6,7 *)
  Alcotest.(check int) "sources" 5 (R.Relation.cardinality result)

let test_calc_parse_matches_ast () =
  let parsed = Calculus.Parser.parse_formula "exists z. edge(x, z) and edge(z, y)" in
  let expected =
    F.Exists
      ( "z",
        F.And (F.Atom ("edge", [ F.Var "x"; F.Var "z" ]),
               F.Atom ("edge", [ F.Var "z"; F.Var "y" ])) )
  in
  Alcotest.(check string) "same formula" (F.to_string expected) (F.to_string parsed)

let test_calc_parse_boolean () =
  let q = Calculus.Parser.parse_query "exists x. edge(x, 4)" in
  Alcotest.(check (list string)) "empty head" [] q.F.head;
  Alcotest.(check int) "true" 1
    (R.Relation.cardinality (Calculus.Active_domain.eval graph_db q))

let test_calc_parse_constants_and_comparisons () =
  let q = Calculus.Parser.parse_query "{x, y | edge(x, y) and x < y}" in
  let viaparse = Calculus.Active_domain.eval graph_db q in
  let manual =
    Calculus.Active_domain.eval graph_db
      {
        F.head = [ "x"; "y" ];
        body =
          F.And
            (F.Atom ("edge", [ F.Var "x"; F.Var "y" ]),
             F.Cmp (Relational.Algebra.Lt, F.Var "x", F.Var "y"));
      }
  in
  Alcotest.check relation_testable "same" manual viaparse

let test_calc_parse_forall () =
  let q =
    Calculus.Parser.parse_query
      "{x | (exists y. edge(x, y)) and (forall y. not edge(x, y) or edge(y, x))}"
  in
  (* vertices whose every out-edge is reciprocated: 6 and 7 *)
  Alcotest.(check int) "reciprocated" 2
    (R.Relation.cardinality (Calculus.Active_domain.eval graph_db q))

let test_calc_parse_errors () =
  let bad input =
    match Calculus.Parser.parse_query input with
    | _ -> false
    | exception (Calculus.Parser.Parse_error _ | F.Ill_formed _) -> true
  in
  Alcotest.(check bool) "missing brace" true (bad "{x | edge(x, x)");
  Alcotest.(check bool) "head not free" true (bad "{z | edge(x, x)}");
  Alcotest.(check bool) "keyword as var" true (bad "{x | exists and. edge(x, and)}");
  Alcotest.(check bool) "bare term" true (bad "{x | x}")

let test_calc_parse_translate_roundtrip () =
  let q =
    Calculus.Parser.parse_query "{x, y | exists z. edge(x, z) and edge(z, y)}"
  in
  let compiled = Calculus.To_algebra.translate_query graph_db q in
  Alcotest.check relation_testable "compiled = interpreted"
    (Calculus.Active_domain.eval graph_db q)
    (R.Eval.eval graph_db compiled)

(* --- evolution -------------------------------------------------------------------- *)

let test_evolution_runs () =
  let rng = Support.Rng.create 5 in
  let snaps = M.Evolution.simulate rng M.Evolution.default_params ~steps:120 in
  Alcotest.(check int) "one snapshot per step" 120 (List.length snaps);
  Alcotest.(check bool) "homophily stays in range" true
    (List.for_all
       (fun s ->
         s.M.Evolution.homophily >= 0.
         && s.M.Evolution.homophily
            <= M.Evolution.default_params.M.Evolution.max_homophily)
       snaps)

let test_evolution_crisis_raises_score () =
  let rng = Support.Rng.create 11 in
  (* force long crises *)
  let params =
    {
      M.Evolution.default_params with
      kuhn =
        {
          M.Kuhn.default_params with
          anomaly_rate = 0.8;
          revolution_rate = 0.02;
          remission_rate = 0.;
        };
    }
  in
  let snaps = M.Evolution.simulate rng params ~steps:250 in
  let mean sel =
    let xs = List.filter_map sel snaps in
    List.fold_left ( +. ) 0. xs /. float_of_int (max 1 (List.length xs))
  in
  let crisis_scores =
    mean (fun s ->
        if s.M.Evolution.stage = M.Kuhn.Crisis && s.M.Evolution.homophily > 20.
        then Some s.M.Evolution.crisis_score
        else None)
  in
  let calm_scores =
    mean (fun s ->
        if s.M.Evolution.homophily = 0. then Some s.M.Evolution.crisis_score
        else None)
  in
  Alcotest.(check bool)
    (Printf.sprintf "deep crisis scores higher (%.2f vs %.2f)" calm_scores
       crisis_scores)
    true
    (crisis_scores > calm_scores)

let test_evolution_revolution_resets () =
  let rng = Support.Rng.create 23 in
  let snaps = M.Evolution.simulate rng M.Evolution.default_params ~steps:2000 in
  (* wherever a revolution happened, the next snapshot has homophily 0 or
     freshly decaying *)
  let rec check = function
    | a :: (b :: _ as rest) ->
        (if a.M.Evolution.stage = M.Kuhn.Revolution then
           Alcotest.(check bool) "reset after revolution" true
             (b.M.Evolution.homophily <= 4.0));
        check rest
    | _ -> ()
  in
  check snaps

let suite =
  [
    Alcotest.test_case "recovery simple undo" `Quick test_recovery_simple_undo;
    Alcotest.test_case "recovery winners/losers" `Quick test_recovery_winners_losers;
    Alcotest.test_case "recovery reverse undo" `Quick
      test_recovery_multiple_writes_reverse_undo;
    prop_recovery_correct;
    prop_recovery_idempotent;
    Alcotest.test_case "window single relation" `Quick test_window_single_relation;
    Alcotest.test_case "window two relations" `Quick test_window_crosses_two_relations;
    Alcotest.test_case "window whole tree" `Quick test_window_spans_whole_tree;
    Alcotest.test_case "window = direct join" `Quick test_window_matches_direct_join;
    Alcotest.test_case "window unknown attribute" `Quick test_window_unknown_attribute;
    Alcotest.test_case "window disconnected" `Quick test_window_disconnected;
    Alcotest.test_case "window qualification minimal" `Quick
      test_window_qualification_minimal;
    Alcotest.test_case "calculus parse+eval" `Quick test_calc_parse_and_eval;
    Alcotest.test_case "calculus parse = ast" `Quick test_calc_parse_matches_ast;
    Alcotest.test_case "calculus boolean query" `Quick test_calc_parse_boolean;
    Alcotest.test_case "calculus comparisons" `Quick
      test_calc_parse_constants_and_comparisons;
    Alcotest.test_case "calculus forall" `Quick test_calc_parse_forall;
    Alcotest.test_case "calculus parse errors" `Quick test_calc_parse_errors;
    Alcotest.test_case "calculus parse/translate roundtrip" `Quick
      test_calc_parse_translate_roundtrip;
    Alcotest.test_case "evolution runs" `Quick test_evolution_runs;
    Alcotest.test_case "evolution crisis raises score" `Quick
      test_evolution_crisis_raises_score;
    Alcotest.test_case "evolution revolution resets" `Quick
      test_evolution_revolution_resets;
  ]
