(* Tests for the extension modules: Yannakakis acyclic-join evaluation,
   Armstrong relations, the algebra query parser, Datalog provenance,
   wait-die locking, the committee-overcorrection model, and the DPLL
   ablation switches. *)

module R = Relational
module A = R.Algebra
module D = Datalog
module Dep = Dependencies
module T = Transactions
module M = Metatheory
open R.Value
open Fixtures

let check_rel = Alcotest.check relation_testable

(* --- yannakakis -------------------------------------------------------------- *)

let chain_relations rng sizes =
  (* R1(a,b) - R2(b,c) - R3(c,d): an acyclic (path) join *)
  let s1 = R.Schema.make [ ("a", TInt); ("b", TInt) ] in
  let s2 = R.Schema.make [ ("b", TInt); ("c", TInt) ] in
  let s3 = R.Schema.make [ ("c", TInt); ("d", TInt) ] in
  List.map2
    (fun schema size -> R.Generator.random_relation rng schema ~size ~domain:6)
    [ s1; s2; s3 ] sizes

let test_yannakakis_plan_acyclic () =
  let schemas =
    [
      R.Schema.make [ ("a", TInt); ("b", TInt) ];
      R.Schema.make [ ("b", TInt); ("c", TInt) ];
      R.Schema.make [ ("c", TInt); ("d", TInt) ];
    ]
  in
  Alcotest.(check bool) "path query planar" true
    (Dep.Yannakakis.plan schemas <> None)

let test_yannakakis_plan_cyclic () =
  let triangle =
    [
      R.Schema.make [ ("a", TInt); ("b", TInt) ];
      R.Schema.make [ ("b", TInt); ("c", TInt) ];
      R.Schema.make [ ("c", TInt); ("a", TInt) ];
    ]
  in
  Alcotest.(check bool) "triangle has no plan" true
    (Dep.Yannakakis.plan triangle = None);
  Alcotest.(check bool) "join raises Cyclic" true
    (match
       Dep.Yannakakis.join
         (List.map (fun s -> R.Relation.create s) triangle)
     with
    | _ -> false
    | exception Dep.Yannakakis.Cyclic -> true)

let test_yannakakis_join_equals_fold_join () =
  let rng = Support.Rng.create 3 in
  let rels = chain_relations rng [ 12; 12; 12 ] in
  let expected =
    match rels with
    | [ r1; r2; r3 ] -> R.Relation.join (R.Relation.join r1 r2) r3
    | _ -> assert false
  in
  check_rel "same join" expected (Dep.Yannakakis.join rels)

let test_full_reducer_removes_dangling () =
  let s1 = R.Schema.make [ ("a", TInt); ("b", TInt) ] in
  let s2 = R.Schema.make [ ("b", TInt); ("c", TInt) ] in
  let r1 = R.Relation.of_list s1 [ [ Int 1; Int 2 ]; [ Int 5; Int 9 ] ] in
  let r2 = R.Relation.of_list s2 [ [ Int 2; Int 3 ] ] in
  match Dep.Yannakakis.full_reduce [ r1; r2 ] with
  | [ r1'; r2' ] ->
      (* (5, 9) dangles: no matching b in r2 *)
      Alcotest.(check int) "dangling tuple dropped" 1 (R.Relation.cardinality r1');
      Alcotest.(check int) "r2 untouched" 1 (R.Relation.cardinality r2')
  | _ -> Alcotest.fail "two relations in, two out"

let test_yannakakis_star_query () =
  (* star: center(a,b,c) with satellites on a, b, c *)
  let center =
    R.Relation.of_list
      (R.Schema.make [ ("a", TInt); ("b", TInt); ("c", TInt) ])
      [ [ Int 1; Int 2; Int 3 ]; [ Int 4; Int 5; Int 6 ] ]
  in
  let sat attr v =
    R.Relation.of_list (R.Schema.make [ (attr, TInt) ]) [ [ Int v ] ]
  in
  let result = Dep.Yannakakis.join [ center; sat "a" 1; sat "b" 2; sat "c" 3 ] in
  Alcotest.(check int) "one surviving center row" 1 (R.Relation.cardinality result)

let prop_yannakakis_equals_fold =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:50 ~name:"yannakakis = fold join on random chains"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let rels = chain_relations rng [ 8; 8; 8 ] in
         let expected =
           match rels with
           | [ r1; r2; r3 ] -> R.Relation.join (R.Relation.join r1 r2) r3
           | _ -> assert false
         in
         R.Relation.equal expected (Dep.Yannakakis.join rels)))

let prop_full_reducer_sound =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:50
       ~name:"full reduction preserves the join and leaves no dangling tuples"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let rels = chain_relations rng [ 8; 8; 8 ] in
         let reduced = Dep.Yannakakis.full_reduce rels in
         let expected =
           match rels with
           | [ r1; r2; r3 ] -> R.Relation.join (R.Relation.join r1 r2) r3
           | _ -> assert false
         in
         let joined =
           match reduced with
           | [ r1; r2; r3 ] -> R.Relation.join (R.Relation.join r1 r2) r3
           | _ -> assert false
         in
         (* join preserved, and every surviving tuple participates *)
         R.Relation.equal expected joined
         && List.for_all2
              (fun reduced_rel original ->
                R.Relation.subset reduced_rel original
                && R.Relation.fold
                     (fun tup ok ->
                       ok
                       && not
                            (R.Relation.is_empty
                               (R.Relation.semijoin
                                  (R.Relation.of_tuples
                                     (R.Relation.schema reduced_rel) [ tup ])
                                  expected)))
                     reduced_rel true)
              reduced rels))

(* --- armstrong relations -------------------------------------------------------- *)

let test_armstrong_simple () =
  let universe = Dep.Attrs.of_string "ABC" in
  let fds = Dep.Fd.set_of_string "A -> B" in
  let rel = Dep.Armstrong.relation ~universe fds in
  Alcotest.(check bool) "A -> B holds" true
    (Dep.Mvd.fd_holds_in rel (Dep.Fd.of_string "A -> B"));
  Alcotest.(check bool) "B -> A fails" false
    (Dep.Mvd.fd_holds_in rel (Dep.Fd.of_string "B -> A"));
  Alcotest.(check bool) "A -> C fails" false
    (Dep.Mvd.fd_holds_in rel (Dep.Fd.of_string "A -> C"))

let prop_armstrong_exact =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40
       ~name:"armstrong relation satisfies exactly the implied FDs"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let letters = [| "A"; "B"; "C"; "D" |] in
         let universe = Dep.Attrs.of_list (Array.to_list letters) in
         let random_attrs k =
           let out = ref Dep.Attrs.empty in
           for _ = 1 to k do
             out := Dep.Attrs.add (Support.Rng.pick rng letters) !out
           done;
           !out
         in
         let fds =
           List.init 3 (fun _ ->
               Dep.Fd.make (random_attrs 1) (random_attrs 2))
           |> List.filter (fun fd -> not (Dep.Fd.is_trivial fd))
         in
         let rel = Dep.Armstrong.relation ~universe fds in
         (* check agreement on a panel of candidate FDs *)
         let candidates =
           List.concat_map
             (fun l ->
               List.map
                 (fun r -> Dep.Fd.make (Dep.Attrs.of_string l) (Dep.Attrs.of_string r))
                 [ "A"; "B"; "C"; "D" ])
             [ "A"; "B"; "C"; "D"; "AB"; "CD"; "AC" ]
         in
         List.for_all
           (fun fd ->
             Dep.Fd.implies fds fd = Dep.Mvd.fd_holds_in rel fd)
           candidates))

(* --- query parser ------------------------------------------------------------------ *)

let test_parser_basic_query () =
  let e =
    R.Query_parser.parse
      "project[sname](select[grade >= 85](students join enrolled))"
  in
  let result = R.Eval.eval university e in
  Alcotest.(check int) "ada and dan" 2 (R.Relation.cardinality result)

let test_parser_set_ops () =
  let e =
    R.Query_parser.parse
      "project[sid](students) minus project[sid](enrolled)"
  in
  Alcotest.(check int) "one non-enrolled student" 1
    (R.Relation.cardinality (R.Eval.eval university e))

let test_parser_singleton_and_product () =
  let e = R.Query_parser.parse "<tag = \"x\", k = 7> times courses" in
  Alcotest.(check int) "tagged courses" 4
    (R.Relation.cardinality (R.Eval.eval university e))

let test_parser_rename_divide () =
  let e =
    R.Query_parser.parse
      "project[sid, cid](enrolled) divide project[cid](select[dept = \
       \"cs\"](courses))"
  in
  Alcotest.(check (list (list string))) "ada takes all cs" [ [ "1" ] ]
    (List.map (List.map R.Value.to_string) (rows (R.Eval.eval university e)))

let test_parser_precedence () =
  (* join binds tighter than union *)
  let e = R.Query_parser.parse "students join enrolled union students join enrolled" in
  Alcotest.(check int) "parsed as (sJe) u (sJe)" 9
    (R.Relation.cardinality (R.Eval.eval university e))

let test_parser_predicates () =
  let p = R.Query_parser.parse_predicate "not (a = 1 or b != 2) and c < 3" in
  Alcotest.(check string) "structure"
    "((not (a = 1 or b <> 2)) and c < 3)"
    (A.predicate_to_string p)

let test_parser_errors () =
  let bad input =
    match R.Query_parser.parse input with
    | _ -> false
    | exception R.Query_parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "unbalanced" true (bad "project[a](r");
  Alcotest.(check bool) "missing pred" true (bad "select[](r)");
  Alcotest.(check bool) "trailing" true (bad "r extra");
  Alcotest.(check bool) "bad char" true (bad "r ? s")

let test_parser_roundtrip_well_typed () =
  (* parse (print e) where print uses a compatible syntax subset *)
  let queries =
    [
      "students";
      "project[sname](students)";
      "select[year = 1 and sid > 0](students)";
      "rename[sid -> id](students)";
      "(students join enrolled) join courses";
    ]
  in
  List.iter
    (fun q ->
      let e = R.Query_parser.parse q in
      Alcotest.(check bool) q true
        (A.well_typed (A.catalog_of_database university) e))
    queries

(* --- provenance ---------------------------------------------------------------------- *)

let test_provenance_matches_seminaive () =
  let edb = D.Workloads.chain ~n:8 in
  let expected = D.Seminaive.eval D.Workloads.transitive_closure edb in
  let got, _ = D.Provenance.eval D.Workloads.transitive_closure edb in
  Alcotest.(check bool) "same facts" true (D.Facts.equal expected got)

let test_provenance_proof_tree () =
  let edb = D.Workloads.chain ~n:5 in
  let _, store = D.Provenance.eval D.Workloads.transitive_closure edb in
  match D.Provenance.proof_of store "path" [| Int 0; Int 5 |] with
  | None -> Alcotest.fail "path(0,5) should be derivable"
  | Some proof ->
      (* the right-linear TC derives path(0,5) through 5 path nodes and
         5 edge leaves: 10 proof nodes, depth 6 *)
      Alcotest.(check int) "proof size" 10 (D.Provenance.proof_size proof);
      Alcotest.(check int) "proof depth" 6 (D.Provenance.proof_depth proof)

let test_provenance_edb_and_missing () =
  let edb = D.Workloads.chain ~n:3 in
  let _, store = D.Provenance.eval D.Workloads.transitive_closure edb in
  Alcotest.(check bool) "edb fact has edb proof" true
    (match D.Provenance.proof_of store "edge" [| Int 0; Int 1 |] with
    | Some (D.Provenance.Edb_fact _) -> true
    | _ -> false);
  Alcotest.(check bool) "missing fact has no proof" true
    (D.Provenance.proof_of store "path" [| Int 2; Int 0 |] = None);
  Alcotest.(check bool) "explain mentions underivable" true
    (Str_contains.contains
       (D.Provenance.explain store "path" [| Int 2; Int 0 |])
       "not derivable")

let test_provenance_negation () =
  let edb = D.Workloads.chain ~n:3 in
  let _, store = D.Provenance.eval D.Workloads.reachable_negation edb in
  match D.Provenance.justification_of store "unreach" [| Int 3; Int 0 |] with
  | Some just ->
      Alcotest.(check int) "one negated check" 1
        (List.length just.D.Provenance.negated)
  | None -> Alcotest.fail "unreach(3,0) should be derived"

let prop_provenance_equals_seminaive =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"provenance eval = seminaive eval"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let edb = D.Workloads.random_graph rng ~nodes:7 ~edges:12 in
         let a = D.Seminaive.eval D.Workloads.reachable_negation edb in
         let b, _ = D.Provenance.eval D.Workloads.reachable_negation edb in
         D.Facts.equal a b))

let prop_proofs_are_well_founded =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"every derived fact has a finite proof"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let edb = D.Workloads.random_graph rng ~nodes:6 ~edges:10 in
         let result, store = D.Provenance.eval D.Workloads.transitive_closure edb in
         D.Facts.Tuple_set.for_all
           (fun tup ->
             match D.Provenance.proof_of store "path" tup with
             | Some proof -> D.Provenance.proof_depth proof <= 20
             | None -> false)
           (D.Facts.get result "path")))

(* --- wait-die ---------------------------------------------------------------------------- *)

let test_wait_die_no_deadlocks () =
  let rng = Support.Rng.create 12 in
  let params = { T.Workload.default with txns = 8; items = 6; write_ratio = 0.8 } in
  let specs = T.Workload.generate rng params in
  let stats = T.Simulation.run (T.Two_phase.create_wait_die ()) specs in
  Alcotest.(check int) "all commit" 8 stats.T.Simulation.committed;
  Alcotest.(check int) "prevention: no deadlock breaks" 0
    stats.T.Simulation.deadlocks

let prop_wait_die_serializable =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25
       ~name:"wait-die: serializable, strict, deadlock-free"
       (QCheck2.Gen.int_range 0 1_000_000)
       (fun seed ->
         let rng = Support.Rng.create seed in
         let params =
           {
             T.Workload.txns = 2 + Support.Rng.int rng 5;
             ops_per_txn = 1 + Support.Rng.int rng 6;
             items = 2 + Support.Rng.int rng 8;
             skew = Support.Rng.float rng 1.5;
             write_ratio = Support.Rng.float rng 1.0;
           }
         in
         let specs = T.Workload.generate rng params in
         let stats = T.Simulation.run (T.Two_phase.create_wait_die ()) specs in
         stats.T.Simulation.committed = params.T.Workload.txns
         && stats.T.Simulation.deadlocks = 0
         && T.Serializability.is_conflict_serializable stats.T.Simulation.history
         && T.Serializability.is_strict stats.T.Simulation.history))

(* --- committee model ---------------------------------------------------------------------- *)

let test_committee_tracks_without_overcorrection () =
  let interest = M.Committee.hump ~years:14 ~peak:16. in
  let out = M.Committee.simulate { M.Committee.overcorrection = 0.; noise = 0. } ~interest in
  Alcotest.(check bool) "tracks interest exactly" true
    (Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) out interest)

let test_committee_overcorrection_oscillates () =
  let interest = M.Committee.hump ~years:14 ~peak:16. in
  let calm =
    M.Committee.simulate { M.Committee.overcorrection = 0.2; noise = 0. } ~interest
  in
  let jerky =
    M.Committee.simulate { M.Committee.overcorrection = 1.6; noise = 0. } ~interest
  in
  Alcotest.(check bool) "overcorrection raises the 2-year harmonic" true
    (Support.Stats.harmonic_strength jerky 2
    > (2. *. Support.Stats.harmonic_strength calm 2));
  Alcotest.(check bool) "negative lag-1 autocorrelation of diffs" true
    (Support.Stats.autocorrelation (Support.Stats.diff jerky) 1 < -0.3)

let test_committee_dose_response_monotone_at_ends () =
  let interest = M.Committee.hump ~years:20 ~peak:12. in
  match M.Committee.harmonic_response ~gammas:[ 0.0; 0.8; 1.6 ] ~interest with
  | [ (_, h0); (_, h1); (_, h2) ] ->
      Alcotest.(check bool) "more overcorrection, more harmonic" true
        (h0 < h1 && h1 < h2)
  | _ -> Alcotest.fail "three gammas in, three responses out"

(* --- dpll ablation ---------------------------------------------------------------------------- *)

let test_dpll_ablations_agree () =
  let rng = Support.Rng.create 5 in
  for _ = 1 to 30 do
    let cnf =
      List.init 12 (fun _ ->
          List.init (1 + Support.Rng.int rng 3) (fun _ ->
              let v = 1 + Support.Rng.int rng 6 in
              if Support.Rng.bool rng then v else -v))
    in
    let verdict ?unit_propagation ?pure_literal () =
      match fst (Sat.Dpll.solve_with ?unit_propagation ?pure_literal cnf) with
      | Sat.Dpll.Sat _ -> true
      | Sat.Dpll.Unsat -> false
    in
    let full = verdict () in
    Alcotest.(check bool) "no unit prop" full (verdict ~unit_propagation:false ());
    Alcotest.(check bool) "no pure literal" full (verdict ~pure_literal:false ());
    Alcotest.(check bool) "bare backtracking" full
      (verdict ~unit_propagation:false ~pure_literal:false ())
  done

let test_dpll_unit_prop_reduces_decisions () =
  (* a long implication chain: unit propagation solves it without any
     branching, bare backtracking needs decisions *)
  let chain = List.init 19 (fun i -> [ -(i + 1); i + 2 ]) @ [ [ 1 ] ] in
  let _, with_up = Sat.Dpll.solve_with chain in
  let _, without =
    Sat.Dpll.solve_with ~unit_propagation:false ~pure_literal:false chain
  in
  Alcotest.(check int) "no decisions with unit propagation" 0
    with_up.Sat.Dpll.decisions;
  Alcotest.(check bool) "decisions without" true (without.Sat.Dpll.decisions > 0)

let suite =
  [
    Alcotest.test_case "yannakakis plan acyclic" `Quick test_yannakakis_plan_acyclic;
    Alcotest.test_case "yannakakis plan cyclic" `Quick test_yannakakis_plan_cyclic;
    Alcotest.test_case "yannakakis join = fold join" `Quick
      test_yannakakis_join_equals_fold_join;
    Alcotest.test_case "full reducer drops dangling" `Quick
      test_full_reducer_removes_dangling;
    Alcotest.test_case "yannakakis star query" `Quick test_yannakakis_star_query;
    prop_yannakakis_equals_fold;
    prop_full_reducer_sound;
    Alcotest.test_case "armstrong simple" `Quick test_armstrong_simple;
    prop_armstrong_exact;
    Alcotest.test_case "parser basic query" `Quick test_parser_basic_query;
    Alcotest.test_case "parser set ops" `Quick test_parser_set_ops;
    Alcotest.test_case "parser singleton/product" `Quick
      test_parser_singleton_and_product;
    Alcotest.test_case "parser divide" `Quick test_parser_rename_divide;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser predicates" `Quick test_parser_predicates;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "parser output well-typed" `Quick
      test_parser_roundtrip_well_typed;
    Alcotest.test_case "provenance = seminaive (fixed)" `Quick
      test_provenance_matches_seminaive;
    Alcotest.test_case "provenance proof tree" `Quick test_provenance_proof_tree;
    Alcotest.test_case "provenance edb/missing" `Quick test_provenance_edb_and_missing;
    Alcotest.test_case "provenance negation" `Quick test_provenance_negation;
    prop_provenance_equals_seminaive;
    prop_proofs_are_well_founded;
    Alcotest.test_case "wait-die no deadlocks" `Quick test_wait_die_no_deadlocks;
    prop_wait_die_serializable;
    Alcotest.test_case "committee tracks" `Quick test_committee_tracks_without_overcorrection;
    Alcotest.test_case "committee oscillates" `Quick
      test_committee_overcorrection_oscillates;
    Alcotest.test_case "committee dose-response" `Quick
      test_committee_dose_response_monotone_at_ends;
    Alcotest.test_case "dpll ablations agree" `Quick test_dpll_ablations_agree;
    Alcotest.test_case "unit prop removes decisions" `Quick
      test_dpll_unit_prop_reduces_decisions;
  ]
