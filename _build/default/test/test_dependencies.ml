(* Tests for dependency theory: Armstrong's axioms, closures, keys,
   covers, normal forms, decompositions, the chase, MVDs, and GYO
   acyclicity. *)

module Dep = Dependencies
module Attrs = Dep.Attrs
module Fd = Dep.Fd
open Fixtures

let attrs = Attrs.of_string
let fd = Fd.of_string
let fds = Fd.set_of_string

let check_attrs msg expected actual =
  Alcotest.(check string) msg (Attrs.to_string expected) (Attrs.to_string actual)

(* --- attrs ------------------------------------------------------------------ *)

let test_attrs_parsing () =
  check_attrs "run together" (Attrs.of_list [ "A"; "B"; "C" ]) (attrs "ABC");
  check_attrs "comma separated"
    (Attrs.of_list [ "sid"; "cid" ])
    (attrs "sid,cid");
  check_attrs "space separated"
    (Attrs.of_list [ "sid"; "cid" ])
    (attrs "sid cid")

(* --- armstrong axioms ---------------------------------------------------------- *)

let test_reflexivity () =
  Alcotest.(check bool) "AB -> B" true
    (Fd.reflexivity (attrs "AB") (attrs "B") <> None);
  Alcotest.(check bool) "A -> B invalid" true
    (Fd.reflexivity (attrs "A") (attrs "B") = None)

let test_augmentation () =
  let out = Fd.augmentation (fd "A -> B") (attrs "C") in
  Alcotest.(check string) "AC -> BC" "AC -> BC" (Fd.to_string out)

let test_transitivity () =
  match Fd.transitivity (fd "A -> B") (fd "B -> C") with
  | Some out -> Alcotest.(check string) "A -> C" "A -> C" (Fd.to_string out)
  | None -> Alcotest.fail "transitivity should apply"

let test_axioms_sound () =
  (* everything derivable by one axiom application is implied *)
  let base = fds "A -> B; B -> C" in
  let derived =
    List.filter_map Fun.id
      [
        Fd.reflexivity (attrs "ABC") (attrs "AB");
        Some (Fd.augmentation (fd "A -> B") (attrs "D"));
        Fd.transitivity (fd "A -> B") (fd "B -> C");
      ]
  in
  List.iter
    (fun d ->
      Alcotest.(check bool) (Fd.to_string d) true
        (Fd.implies (fds "A -> B; B -> C; D -> D" @ base) d))
    derived

(* --- closure / keys -------------------------------------------------------------- *)

let test_closure_textbook () =
  (* classic: R(ABCDEF), A->BC, B->E, CD->EF *)
  let f = fds "A -> BC; B -> E; CD -> EF" in
  check_attrs "A+ = ABCE" (attrs "ABCE") (Fd.closure (attrs "A") f);
  check_attrs "AD+ = all" (attrs "ABCDEF") (Fd.closure (attrs "AD") f);
  check_attrs "D+ = D" (attrs "D") (Fd.closure (attrs "D") f)

let test_implies () =
  let f = fds "A -> BC; B -> E; CD -> EF" in
  Alcotest.(check bool) "AD -> F" true (Fd.implies f (fd "AD -> F"));
  Alcotest.(check bool) "A -> D fails" false (Fd.implies f (fd "A -> D"))

let test_candidate_keys_simple () =
  let universe = attrs "ABC" in
  let keys = Fd.candidate_keys ~universe (fds "A -> B; B -> C") in
  Alcotest.(check (list string)) "only A" [ "A" ]
    (List.map Attrs.to_string keys)

let test_candidate_keys_multiple () =
  (* R(AB) with A->B and B->A: both singletons are keys *)
  let keys = Fd.candidate_keys ~universe:(attrs "AB") (fds "A -> B; B -> A") in
  Alcotest.(check (list string)) "A and B" [ "A"; "B" ]
    (List.map Attrs.to_string keys)

let test_candidate_keys_no_fds () =
  let keys = Fd.candidate_keys ~universe:(attrs "AB") [] in
  Alcotest.(check (list string)) "whole universe" [ "AB" ]
    (List.map Attrs.to_string keys)

let test_candidate_keys_minimality () =
  let universe = attrs "ABCD" in
  let keys = Fd.candidate_keys ~universe (fds "AB -> CD; C -> A") in
  (* AB and CB are keys *)
  Alcotest.(check (list string)) "AB and BC" [ "AB"; "BC" ]
    (List.map Attrs.to_string keys);
  List.iter
    (fun k ->
      Alcotest.(check bool) "is candidate key" true
        (Fd.is_candidate_key k ~universe (fds "AB -> CD; C -> A")))
    keys

(* --- minimal cover ----------------------------------------------------------------- *)

let test_minimal_cover_redundant_fd () =
  let f = fds "A -> B; B -> C; A -> C" in
  let cover = Fd.minimal_cover f in
  Alcotest.(check int) "two FDs" 2 (List.length cover);
  Alcotest.(check bool) "equivalent" true (Fd.equivalent_sets f cover)

let test_minimal_cover_extraneous_lhs () =
  let f = fds "AB -> C; A -> B" in
  let cover = Fd.minimal_cover f in
  Alcotest.(check bool) "equivalent" true (Fd.equivalent_sets f cover);
  (* AB -> C reduces to A -> C since A -> B *)
  Alcotest.(check bool) "A -> C in cover" true
    (List.exists (fun g -> Fd.equal g (fd "A -> C")) cover)

let test_minimal_cover_singleton_rhs () =
  let cover = Fd.minimal_cover (fds "A -> BC") in
  Alcotest.(check bool) "all singleton" true
    (List.for_all (fun (g : Fd.t) -> Attrs.cardinal g.Fd.rhs = 1) cover)

(* --- projection ----------------------------------------------------------------------- *)

let test_project_transitive () =
  (* R(ABC), A->B, B->C projected onto AC gives A->C *)
  let f = fds "A -> B; B -> C" in
  let p = Fd.project f ~onto:(attrs "AC") in
  Alcotest.(check bool) "A -> C survives" true (Fd.implies p (fd "A -> C"));
  Alcotest.(check bool) "nothing about B" true
    (List.for_all (fun (g : Fd.t) -> not (Attrs.mem "B" (Attrs.union g.Fd.lhs g.Fd.rhs))) p)

(* --- normal forms --------------------------------------------------------------------- *)

let scheme name a f = { Dep.Normal_forms.name; attrs = attrs a; fds = fds f }

let test_bcnf_check () =
  Alcotest.(check bool) "key FD is BCNF" true
    (Dep.Normal_forms.is_bcnf (scheme "r" "ABC" "A -> BC"));
  Alcotest.(check bool) "non-key lhs violates" false
    (Dep.Normal_forms.is_bcnf (scheme "r" "ABC" "A -> B; B -> C"))

let test_3nf_check () =
  (* B -> C with C nonprime violates 3NF; but in R(ABC) with A->B, B->A:
     lodging C... classic: city,street,zip *)
  let csz = scheme "addr" "CSZ" "CS -> Z; Z -> C" in
  Alcotest.(check bool) "CSZ is 3NF" true (Dep.Normal_forms.is_3nf csz);
  Alcotest.(check bool) "CSZ is not BCNF" false (Dep.Normal_forms.is_bcnf csz)

let test_2nf_check () =
  (* R(ABCD), key AB, A -> C is a partial dependency *)
  let s = scheme "r" "ABCD" "AB -> D; A -> C" in
  Alcotest.(check bool) "partial dependency" false (Dep.Normal_forms.is_2nf s);
  Alcotest.(check int) "one violation" 1
    (List.length (Dep.Normal_forms.violations_2nf s))

let test_bcnf_decompose_lossless () =
  let s = scheme "r" "ABC" "A -> B; B -> C" in
  let decomposition = Dep.Normal_forms.bcnf_decompose s in
  Alcotest.(check bool) "all BCNF" true
    (List.for_all Dep.Normal_forms.is_bcnf decomposition);
  Alcotest.(check bool) "lossless" true (Dep.Normal_forms.lossless s decomposition)

let test_bcnf_decompose_csz_loses_dependency () =
  let s = scheme "addr" "CSZ" "CS -> Z; Z -> C" in
  let decomposition = Dep.Normal_forms.bcnf_decompose s in
  Alcotest.(check bool) "all BCNF" true
    (List.for_all Dep.Normal_forms.is_bcnf decomposition);
  Alcotest.(check bool) "lossless" true (Dep.Normal_forms.lossless s decomposition);
  Alcotest.(check bool) "CS -> Z lost" false
    (Dep.Normal_forms.dependency_preserving s decomposition)

let test_3nf_synthesis () =
  let s = scheme "r" "ABCDE" "A -> B; BC -> D; D -> E" in
  let decomposition = Dep.Normal_forms.synthesize_3nf s in
  Alcotest.(check bool) "all 3NF" true
    (List.for_all Dep.Normal_forms.is_3nf decomposition);
  Alcotest.(check bool) "dependency preserving" true
    (Dep.Normal_forms.dependency_preserving s decomposition);
  Alcotest.(check bool) "lossless" true (Dep.Normal_forms.lossless s decomposition)

let test_3nf_synthesis_csz () =
  let s = scheme "addr" "CSZ" "CS -> Z; Z -> C" in
  let decomposition = Dep.Normal_forms.synthesize_3nf s in
  Alcotest.(check bool) "dependency preserving" true
    (Dep.Normal_forms.dependency_preserving s decomposition);
  Alcotest.(check bool) "lossless" true (Dep.Normal_forms.lossless s decomposition)

let test_4nf () =
  let s = scheme "r" "ABC" "" in
  let mvd = Dep.Mvd.of_string "A ->> B" in
  Alcotest.(check bool) "nontrivial MVD, A not key" false
    (Dep.Normal_forms.is_4nf s [ mvd ]);
  let s' = scheme "r" "ABC" "A -> BC" in
  Alcotest.(check bool) "A is key: fine" true (Dep.Normal_forms.is_4nf s' [ mvd ])

(* --- chase --------------------------------------------------------------------------- *)

let test_chase_lossless_textbook () =
  (* R(ABC), A->B: split into AB, AC is lossless *)
  Alcotest.(check bool) "AB/AC lossless" true
    (Dep.Chase.lossless_join ~universe:(attrs "ABC") (fds "A -> B")
       [ attrs "AB"; attrs "AC" ]);
  (* but AB, BC is lossy without B->C or B->A *)
  Alcotest.(check bool) "AB/BC lossy" false
    (Dep.Chase.lossless_join ~universe:(attrs "ABC") (fds "A -> B")
       [ attrs "AB"; attrs "BC" ])

let test_chase_implies_fd_agrees_with_closure () =
  let f = fds "A -> BC; B -> E; CD -> EF" in
  let deps = List.map (fun x -> Dep.Chase.Fd_dep x) f in
  let universe = attrs "ABCDEF" in
  List.iter
    (fun target ->
      Alcotest.(check bool) (Fd.to_string target)
        (Fd.implies f target)
        (Dep.Chase.implies_fd ~universe deps target))
    [ fd "AD -> F"; fd "A -> D"; fd "A -> E"; fd "CD -> F"; fd "B -> A" ]

let test_chase_mvd_implication () =
  let universe = attrs "ABC" in
  (* an FD implies the corresponding MVD *)
  let deps = [ Dep.Chase.Fd_dep (fd "A -> B") ] in
  Alcotest.(check bool) "A->B gives A->>B" true
    (Dep.Chase.implies_mvd ~universe deps (Dep.Mvd.of_string "A ->> B"));
  (* complementation: A->>B gives A->>C *)
  let deps2 = [ Dep.Chase.Mvd_dep (Dep.Mvd.of_string "A ->> B") ] in
  Alcotest.(check bool) "complement" true
    (Dep.Chase.implies_mvd ~universe deps2 (Dep.Mvd.of_string "A ->> C"));
  (* but not an arbitrary MVD *)
  Alcotest.(check bool) "B ->> A not implied" false
    (Dep.Chase.implies_mvd ~universe deps2 (Dep.Mvd.of_string "B ->> A"))

let test_chase_mvd_lossless () =
  (* MVD A->>B makes AB/AC lossless even without FDs *)
  Alcotest.(check bool) "mvd lossless" true
    (Dep.Chase.lossless_join_mixed ~universe:(attrs "ABC")
       [ Dep.Chase.Mvd_dep (Dep.Mvd.of_string "A ->> B") ]
       [ attrs "AB"; attrs "AC" ])

let test_chase_three_way () =
  (* R(ABCD), decomposition AB, BC, CD with B->C, C->D *)
  Alcotest.(check bool) "chain decomposition lossless" true
    (Dep.Chase.lossless_join ~universe:(attrs "ABCD") (fds "B -> C; C -> D")
       [ attrs "AB"; attrs "BC"; attrs "CD" ])

(* --- instance-level checks -------------------------------------------------------------- *)

let test_fd_holds_in_instance () =
  Alcotest.(check bool) "sid -> sname" true
    (Dep.Mvd.fd_holds_in students
       (Fd.make
          (Attrs.singleton "sid")
          (Attrs.singleton "sname")));
  Alcotest.(check bool) "year -> sname fails" false
    (Dep.Mvd.fd_holds_in students
       (Fd.make (Attrs.singleton "year") (Attrs.singleton "sname")))

let test_mvd_holds_in_instance () =
  (* build the canonical MVD example: course ->> teacher | book *)
  let open Relational.Value in
  let schema =
    Relational.Schema.make
      [ ("course", TString); ("teacher", TString); ("book", TString) ]
  in
  let rel ok =
    Relational.Relation.of_list schema
      ([
         [ String "db"; String "ann"; String "alice-book" ];
         [ String "db"; String "ann"; String "ullman" ];
         [ String "db"; String "bob"; String "alice-book" ];
       ]
      @ if ok then [ [ String "db"; String "bob"; String "ullman" ] ] else [])
  in
  let mvd =
    Dep.Mvd.make (Attrs.singleton "course") (Attrs.singleton "teacher")
  in
  Alcotest.(check bool) "complete cross product" true
    (Dep.Mvd.holds_in (rel true) mvd);
  Alcotest.(check bool) "missing combination" false
    (Dep.Mvd.holds_in (rel false) mvd)

(* --- hypergraph ---------------------------------------------------------------------------- *)

let test_gyo_acyclic () =
  (* a path of overlapping edges is acyclic *)
  Alcotest.(check bool) "path acyclic" true
    (Dep.Hypergraph.is_acyclic [ attrs "AB"; attrs "BC"; attrs "CD" ])

let test_gyo_cyclic () =
  (* the triangle: AB, BC, CA *)
  Alcotest.(check bool) "triangle cyclic" false
    (Dep.Hypergraph.is_acyclic [ attrs "AB"; attrs "BC"; attrs "CA" ])

let test_gyo_covered_triangle () =
  (* adding ABC covers the triangle and restores acyclicity *)
  Alcotest.(check bool) "covered triangle acyclic" true
    (Dep.Hypergraph.is_acyclic [ attrs "AB"; attrs "BC"; attrs "CA"; attrs "ABC" ])

let test_join_tree () =
  Alcotest.(check bool) "acyclic scheme has a join tree" true
    (Dep.Hypergraph.join_tree [ attrs "AB"; attrs "BC"; attrs "CD" ] <> None);
  Alcotest.(check bool) "cyclic has none" true
    (Dep.Hypergraph.join_tree [ attrs "AB"; attrs "BC"; attrs "CA" ] = None)

(* --- property tests --------------------------------------------------------------------------- *)

let property count name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let random_fds rng universe_size n_fds =
  let letters = Array.init universe_size (fun i -> String.make 1 (Char.chr (65 + i))) in
  let random_attrs k =
    let out = ref Attrs.empty in
    for _ = 1 to k do
      out := Attrs.add (Support.Rng.pick rng letters) !out
    done;
    !out
  in
  let universe = Attrs.of_list (Array.to_list letters) in
  let fds =
    List.init n_fds (fun _ ->
        let lhs = random_attrs (1 + Support.Rng.int rng 2) in
        let rhs = random_attrs (1 + Support.Rng.int rng 2) in
        Fd.make lhs rhs)
    |> List.filter (fun f -> not (Fd.is_trivial f))
  in
  (universe, fds)

let prop_minimal_cover_equivalent =
  property 80 "minimal cover is equivalent" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let _, f = random_fds rng 5 4 in
      Fd.equivalent_sets f (Fd.minimal_cover f))

let prop_chase_fd_matches_closure =
  property 60 "chase implication = closure implication" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let universe, f = random_fds rng 5 3 in
      let deps = List.map (fun x -> Dep.Chase.Fd_dep x) f in
      let _, targets = random_fds rng 5 2 in
      List.for_all
        (fun t -> Fd.implies f t = Dep.Chase.implies_fd ~universe deps t)
        targets)

let prop_bcnf_decomposition_sound =
  property 50 "bcnf decomposition: all BCNF and lossless" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let universe, f = random_fds rng 5 3 in
      let s = { Dep.Normal_forms.name = "r"; attrs = universe; fds = f } in
      let d = Dep.Normal_forms.bcnf_decompose s in
      List.for_all Dep.Normal_forms.is_bcnf d && Dep.Normal_forms.lossless s d)

let prop_3nf_synthesis_sound =
  property 50 "3nf synthesis: 3NF, lossless, dependency-preserving" seed_gen
    (fun seed ->
      let rng = Support.Rng.create seed in
      let universe, f = random_fds rng 5 3 in
      let s = { Dep.Normal_forms.name = "r"; attrs = universe; fds = f } in
      let d = Dep.Normal_forms.synthesize_3nf s in
      List.for_all Dep.Normal_forms.is_3nf d
      && Dep.Normal_forms.lossless s d
      && Dep.Normal_forms.dependency_preserving s d)

let prop_keys_are_candidate_keys =
  property 50 "candidate_keys returns exactly the candidate keys" seed_gen
    (fun seed ->
      let rng = Support.Rng.create seed in
      let universe, f = random_fds rng 5 3 in
      let keys = Fd.candidate_keys ~universe f in
      keys <> []
      && List.for_all (fun k -> Fd.is_candidate_key k ~universe f) keys)

let prop_fd_implies_mvd =
  property 40 "every implied FD gives an implied MVD" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let universe, f = random_fds rng 4 2 in
      let deps = List.map (fun x -> Dep.Chase.Fd_dep x) f in
      List.for_all
        (fun (g : Fd.t) ->
          Dep.Chase.implies_mvd ~universe deps (Dep.Mvd.of_fd g))
        f)

let suite =
  [
    Alcotest.test_case "attrs parsing" `Quick test_attrs_parsing;
    Alcotest.test_case "reflexivity" `Quick test_reflexivity;
    Alcotest.test_case "augmentation" `Quick test_augmentation;
    Alcotest.test_case "transitivity" `Quick test_transitivity;
    Alcotest.test_case "axioms sound" `Quick test_axioms_sound;
    Alcotest.test_case "closure textbook" `Quick test_closure_textbook;
    Alcotest.test_case "implies" `Quick test_implies;
    Alcotest.test_case "candidate keys simple" `Quick test_candidate_keys_simple;
    Alcotest.test_case "candidate keys multiple" `Quick test_candidate_keys_multiple;
    Alcotest.test_case "candidate keys no fds" `Quick test_candidate_keys_no_fds;
    Alcotest.test_case "candidate keys minimality" `Quick test_candidate_keys_minimality;
    Alcotest.test_case "minimal cover drops redundant" `Quick
      test_minimal_cover_redundant_fd;
    Alcotest.test_case "minimal cover extraneous lhs" `Quick
      test_minimal_cover_extraneous_lhs;
    Alcotest.test_case "minimal cover singleton rhs" `Quick
      test_minimal_cover_singleton_rhs;
    Alcotest.test_case "project transitive" `Quick test_project_transitive;
    Alcotest.test_case "bcnf check" `Quick test_bcnf_check;
    Alcotest.test_case "3nf check (CSZ)" `Quick test_3nf_check;
    Alcotest.test_case "2nf check" `Quick test_2nf_check;
    Alcotest.test_case "bcnf decompose lossless" `Quick test_bcnf_decompose_lossless;
    Alcotest.test_case "bcnf loses CS -> Z" `Quick
      test_bcnf_decompose_csz_loses_dependency;
    Alcotest.test_case "3nf synthesis" `Quick test_3nf_synthesis;
    Alcotest.test_case "3nf synthesis CSZ" `Quick test_3nf_synthesis_csz;
    Alcotest.test_case "4nf" `Quick test_4nf;
    Alcotest.test_case "chase lossless textbook" `Quick test_chase_lossless_textbook;
    Alcotest.test_case "chase implies_fd = closure" `Quick
      test_chase_implies_fd_agrees_with_closure;
    Alcotest.test_case "chase mvd implication" `Quick test_chase_mvd_implication;
    Alcotest.test_case "chase mvd lossless" `Quick test_chase_mvd_lossless;
    Alcotest.test_case "chase three-way" `Quick test_chase_three_way;
    Alcotest.test_case "fd holds in instance" `Quick test_fd_holds_in_instance;
    Alcotest.test_case "mvd holds in instance" `Quick test_mvd_holds_in_instance;
    Alcotest.test_case "gyo acyclic path" `Quick test_gyo_acyclic;
    Alcotest.test_case "gyo triangle cyclic" `Quick test_gyo_cyclic;
    Alcotest.test_case "gyo covered triangle" `Quick test_gyo_covered_triangle;
    Alcotest.test_case "join tree" `Quick test_join_tree;
    prop_minimal_cover_equivalent;
    prop_chase_fd_matches_closure;
    prop_bcnf_decomposition_sound;
    prop_3nf_synthesis_sound;
    prop_keys_are_candidate_keys;
    prop_fd_implies_mvd;
  ]
