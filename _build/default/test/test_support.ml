(* Tests for the support library: RNG determinism, statistics, ODE, tables. *)

module Rng = Support.Rng
module Stats = Support.Stats
module Ode = Support.Ode

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-3))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let xs = List.init 32 (fun _ -> Rng.bits64 parent) in
  let ys = List.init 32 (fun _ -> Rng.bits64 child) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_uniformish () =
  let rng = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun count ->
      let frac = float_of_int count /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (frac > 0.07 && frac < 0.13))
    buckets

let test_rng_zipf_skew () =
  let rng = Rng.create 5 in
  let hits = Array.make 20 0 in
  for _ = 1 to 5000 do
    let v = Rng.zipf rng ~n:20 ~s:1.2 in
    hits.(v) <- hits.(v) + 1
  done;
  Alcotest.(check bool) "head is hot" true (hits.(0) > hits.(10));
  Alcotest.(check bool) "head dominates tail" true (hits.(0) > 3 * hits.(19))

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng) in
  Alcotest.(check bool) "mean near 0" true (Float.abs (Stats.mean xs) < 0.05);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (Stats.stddev xs -. 1.) < 0.05)

let test_mean_variance () =
  check_float "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  check_float "variance" 1.25 (Stats.variance [| 1.; 2.; 3.; 4. |]);
  check_float "empty mean" 0. (Stats.mean [||])

let test_median_percentile () =
  check_float "odd median" 3. (Stats.median [| 5.; 1.; 3. |]);
  check_float "even median" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  check_float "p0" 1. (Stats.percentile [| 1.; 2.; 3. |] 0.);
  check_float "p100" 3. (Stats.percentile [| 1.; 2.; 3. |] 100.);
  check_float "p50" 2. (Stats.percentile [| 1.; 2.; 3. |] 50.)

let test_moving_average () =
  let out = Stats.moving_average [| 10.; 14.; 9.; 18. |] 2 in
  Alcotest.(check int) "length preserved" 4 (Array.length out);
  check_float "first" 10. out.(0);
  check_float "second" 12. out.(1);
  check_float "third" 11.5 out.(2);
  check_float "fourth" 13.5 out.(3)

let test_autocorrelation_alternating () =
  (* a perfect two-period oscillation has strongly negative lag-1
     autocorrelation: the program-committee effect *)
  let xs = [| 10.; 14.; 10.; 14.; 10.; 14.; 10.; 14. |] in
  Alcotest.(check bool) "negative at lag 1" true (Stats.autocorrelation xs 1 < -0.5);
  Alcotest.(check bool) "positive at lag 2" true (Stats.autocorrelation xs 2 > 0.5)

let test_autocorrelation_edge_cases () =
  check_float "constant series" 0. (Stats.autocorrelation [| 1.; 1.; 1. |] 1);
  check_float "lag too large" 0. (Stats.autocorrelation [| 1.; 2. |] 5);
  check_float "lag zero" 0. (Stats.autocorrelation [| 1.; 2. |] 0)

let test_pearson () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "self-correlation" 1. (Stats.pearson xs xs);
  let neg = [| 4.; 3.; 2.; 1. |] in
  check_float "anti-correlation" (-1.) (Stats.pearson xs neg)

let test_linear_fit () =
  let xs = [| 0.; 1.; 2.; 3. |] and ys = [| 1.; 3.; 5.; 7. |] in
  let slope, intercept = Stats.linear_fit xs ys in
  check_float "slope" 2. slope;
  check_float "intercept" 1. intercept

let test_harmonic_strength () =
  let oscillating = [| 10.; 14.; 10.; 14.; 10.; 14.; 10.; 14. |] in
  let flat = [| 10.; 10.5; 11.; 11.5; 12.; 12.5; 13.; 13.5 |] in
  Alcotest.(check bool) "oscillation detected" true
    (Stats.harmonic_strength oscillating 2 > Stats.harmonic_strength flat 2);
  Alcotest.(check bool) "strong two-year harmonic" true
    (Stats.harmonic_strength oscillating 2 > 0.2)

let test_ode_exponential () =
  (* dy/dt = y, y(0) = 1, y(1) = e *)
  let f _ y = [| y.(0) |] in
  let traj = Ode.integrate f ~y0:[| 1. |] ~t0:0. ~t1:1. ~steps:100 in
  let _, final = traj.(Array.length traj - 1) in
  check_float_loose "rk4 matches e" (Float.exp 1.) final.(0)

let test_ode_rk4_beats_euler () =
  let f _ y = [| y.(0) |] in
  let final method_ =
    let traj = Ode.integrate ~method_ f ~y0:[| 1. |] ~t0:0. ~t1:1. ~steps:50 in
    (snd traj.(Array.length traj - 1)).(0)
  in
  let err_rk4 = Float.abs (final `Rk4 -. Float.exp 1.) in
  let err_euler = Float.abs (final `Euler -. Float.exp 1.) in
  Alcotest.(check bool) "rk4 more accurate" true (err_rk4 < err_euler /. 100.)

let test_ode_sample_at () =
  let f _ _ = [| 1. |] in
  (* y = t *)
  let traj = Ode.integrate f ~y0:[| 0. |] ~t0:0. ~t1:10. ~steps:10 in
  let samples = Ode.sample_at traj ~times:[| 2.5; 7.25 |] in
  check_float_loose "interpolated 2.5" 2.5 samples.(0).(0);
  check_float_loose "interpolated 7.25" 7.25 samples.(1).(0)

let test_table_render () =
  let out = Support.Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let lines = String.split_on_char '\n' out in
  (* header + separator + 2 rows + empty fragment after trailing newline *)
  Alcotest.(check int) "5 fragments" 5 (List.length lines);
  Alcotest.(check bool) "header present" true
    (String.length (List.nth lines 0) >= String.length "a    bb")

let test_sparkline () =
  let s = Support.Table.sparkline [| 0.; 1.; 2. |] in
  Alcotest.(check bool) "non-empty" true (String.length s > 0);
  Alcotest.(check string) "constant series" ""
    (Support.Table.sparkline [||])

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int uniformish" `Quick test_rng_int_uniformish;
    Alcotest.test_case "rng zipf skew" `Quick test_rng_zipf_skew;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "mean/variance" `Quick test_mean_variance;
    Alcotest.test_case "median/percentile" `Quick test_median_percentile;
    Alcotest.test_case "moving average (two-year)" `Quick test_moving_average;
    Alcotest.test_case "autocorrelation alternating" `Quick test_autocorrelation_alternating;
    Alcotest.test_case "autocorrelation edges" `Quick test_autocorrelation_edge_cases;
    Alcotest.test_case "pearson" `Quick test_pearson;
    Alcotest.test_case "linear fit" `Quick test_linear_fit;
    Alcotest.test_case "harmonic strength" `Quick test_harmonic_strength;
    Alcotest.test_case "ode exponential" `Quick test_ode_exponential;
    Alcotest.test_case "rk4 beats euler" `Quick test_ode_rk4_beats_euler;
    Alcotest.test_case "ode sample_at" `Quick test_ode_sample_at;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
  ]
