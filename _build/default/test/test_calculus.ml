(* Tests for the calculus library: formula syntax, typing, safe-range
   analysis, active-domain evaluation, and Codd's theorem in both
   directions (including the round-trip property test). *)

module R = Relational
module A = R.Algebra
module F = Calculus.Formula
open R.Value
open Fixtures

let check_rel = Alcotest.check relation_testable
let catalog = A.catalog_of_database university

let v x = F.Var x
let c k = F.Const k

(* --- formula syntax ------------------------------------------------------ *)

let test_free_vars () =
  let f =
    F.Exists ("y", F.And (F.Atom ("edge", [ v "x"; v "y" ]), F.Atom ("edge", [ v "y"; v "z" ])))
  in
  Alcotest.(check (list string)) "free vars" [ "x"; "z" ] (F.free_vars f)

let test_rectify_no_rebinding () =
  let f =
    F.And
      ( F.Exists ("x", F.Atom ("edge", [ v "x"; v "x" ])),
        F.Exists ("x", F.Atom ("edge", [ v "x"; v "y" ])) )
  in
  let r = F.rectify f in
  let bound_twice =
    match r with
    | F.And (F.Exists (a, _), F.Exists (b, _)) -> String.equal a b
    | _ -> true
  in
  Alcotest.(check bool) "bound variables distinct" false bound_twice

let test_rectify_preserves_semantics () =
  let f =
    F.And
      ( F.Exists ("y", F.Atom ("edge", [ v "x"; v "y" ])),
        F.Exists ("y", F.Atom ("edge", [ v "y"; v "x" ])) )
  in
  let q = { F.head = [ "x" ]; body = f } in
  let q' = { F.head = [ "x" ]; body = F.rectify f } in
  check_rel "same answers"
    (Calculus.Active_domain.eval graph_db q)
    (Calculus.Active_domain.eval graph_db q')

let test_rename_free_capture_avoiding () =
  (* renaming x->y must not let the bound y capture it *)
  let f = F.Exists ("y", F.Atom ("edge", [ v "x"; v "y" ])) in
  let g = F.rename_free [ ("x", "y") ] f in
  (* the renamed formula must have y free *)
  Alcotest.(check (list string)) "y now free" [ "y" ] (F.free_vars g)

let test_remove_forall () =
  let f = F.Forall ("x", F.Atom ("edge", [ v "x"; v "x" ])) in
  match F.remove_forall f with
  | F.Not (F.Exists ("x", F.Not _)) -> ()
  | _ -> Alcotest.fail "expected double-negation encoding"

let test_check_query_rejects () =
  Alcotest.(check bool) "repeated head" true
    (match F.check_query { F.head = [ "x"; "x" ]; body = F.Atom ("edge", [ v "x"; v "x" ]) } with
    | () -> false
    | exception F.Ill_formed _ -> true);
  Alcotest.(check bool) "head not free" true
    (match F.check_query { F.head = [ "z" ]; body = F.Atom ("edge", [ v "x"; v "y" ]) } with
    | () -> false
    | exception F.Ill_formed _ -> true)

(* --- typing ---------------------------------------------------------------- *)

let test_typing_from_atom () =
  let env = Calculus.Typing.infer catalog (F.Atom ("students", [ v "s"; v "n"; v "y" ])) in
  Alcotest.(check bool) "sid is int" true
    (Calculus.Typing.type_of_var env "s" = TInt);
  Alcotest.(check bool) "name is string" true
    (Calculus.Typing.type_of_var env "n" = TString)

let test_typing_unification () =
  (* x compared with a typed variable inherits its type *)
  let f =
    F.And
      ( F.Atom ("students", [ v "s"; v "n"; v "y" ]),
        F.Cmp (A.Eq, v "x", v "s") )
  in
  let env = Calculus.Typing.infer catalog f in
  Alcotest.(check bool) "x unified to int" true
    (Calculus.Typing.type_of_var env "x" = TInt)

let test_typing_conflict () =
  let f =
    F.And
      ( F.Atom ("students", [ v "s"; v "n"; v "y" ]),
        F.Cmp (A.Eq, v "s", c (String "oops")) )
  in
  Alcotest.(check bool) "conflict detected" true
    (match Calculus.Typing.infer catalog f with
    | _ -> false
    | exception Calculus.Typing.Type_error _ -> true)

let test_typing_untypeable () =
  let f = F.Cmp (A.Eq, v "x", v "y") in
  Alcotest.(check bool) "no concrete type" true
    (match Calculus.Typing.infer catalog f with
    | _ -> false
    | exception Calculus.Typing.Type_error _ -> true)

let test_typing_arity_mismatch () =
  Alcotest.(check bool) "arity checked" true
    (match Calculus.Typing.infer catalog (F.Atom ("students", [ v "x" ])) with
    | _ -> false
    | exception Calculus.Typing.Type_error _ -> true)

(* --- safety ----------------------------------------------------------------- *)

let safe q = Calculus.Safety.is_safe_range q = Calculus.Safety.Safe

let test_safe_atom () =
  Alcotest.(check bool) "atom is safe" true
    (safe { F.head = [ "x"; "y" ]; body = F.Atom ("edge", [ v "x"; v "y" ]) })

let test_unsafe_negation () =
  Alcotest.(check bool) "bare negation unsafe" false
    (safe { F.head = [ "x" ]; body = F.Not (F.Atom ("edge", [ v "x"; v "x" ])) })

let test_safe_guarded_negation () =
  let body =
    F.And
      ( F.Exists ("y", F.Atom ("edge", [ v "x"; v "y" ])),
        F.Not (F.Atom ("edge", [ v "x"; v "x" ])) )
  in
  Alcotest.(check bool) "guarded negation safe" true (safe { F.head = [ "x" ]; body })

let test_unsafe_disjunction () =
  (* x restricted in only one disjunct *)
  let body =
    F.Or (F.Atom ("edge", [ v "x"; v "x" ]), F.Cmp (A.Ne, v "x", c (Int 0)))
  in
  Alcotest.(check bool) "half-restricted or" false (safe { F.head = [ "x" ]; body })

let test_safe_disjunction () =
  let body =
    F.Or
      ( F.Exists ("y", F.Atom ("edge", [ v "x"; v "y" ])),
        F.Exists ("y", F.Atom ("edge", [ v "y"; v "x" ])) )
  in
  Alcotest.(check bool) "both disjuncts restrict x" true (safe { F.head = [ "x" ]; body })

let test_safety_equality_propagation () =
  let body =
    F.And (F.Atom ("edge", [ v "x"; v "x" ]), F.Cmp (A.Eq, v "x", v "y"))
  in
  Alcotest.(check bool) "y restricted through x = y" true
    (safe { F.head = [ "x"; "y" ]; body })

let test_safety_constant_equality () =
  Alcotest.(check bool) "x = 5 is safe" true
    (safe { F.head = [ "x" ]; body = F.Cmp (A.Eq, v "x", c (Int 5)) })

let test_unsafe_inequality_only () =
  Alcotest.(check bool) "x < 5 alone is unsafe" false
    (safe { F.head = [ "x" ]; body = F.Cmp (A.Lt, v "x", c (Int 5)) })

let test_safe_forall_guarded () =
  (* students enrolled in every cs course — the classic safe ∀ *)
  let body =
    F.And
      ( F.Exists ("n", F.Exists ("yr", F.Atom ("students", [ v "s"; v "n"; v "yr" ]))),
        F.Forall
          ( "cid",
            F.Or
              ( F.Not
                  (F.Exists
                     ("t", F.Atom ("courses", [ v "cid"; v "t"; c (String "cs") ]))),
                F.Exists ("g", F.Atom ("enrolled", [ v "s"; v "cid"; v "g" ])) ) ) )
  in
  Alcotest.(check bool) "relational division is safe" true (safe { F.head = [ "s" ]; body })

(* --- active-domain evaluation ------------------------------------------------- *)

let test_adom_eval_atom () =
  let q = { F.head = [ "x"; "y" ]; body = F.Atom ("edge", [ v "x"; v "y" ]) } in
  check_rel "atom query returns the relation"
    (R.Relation.rename edges [ ("src", "x"); ("dst", "y") ])
    (Calculus.Active_domain.eval graph_db q)

let test_adom_eval_two_hop () =
  let body =
    F.Exists ("z", F.And (F.Atom ("edge", [ v "x"; v "z" ]), F.Atom ("edge", [ v "z"; v "y" ])))
  in
  let q = { F.head = [ "x"; "y" ]; body } in
  let result = Calculus.Active_domain.eval graph_db q in
  (* 1->3, 1->5, 2->4, 6->6, 7->7 *)
  Alcotest.(check int) "two-hop pairs" 5 (R.Relation.cardinality result)

let test_adom_eval_negation () =
  (* vertices with an out-edge but no self-2-cycle *)
  let body =
    F.And
      ( F.Exists ("y", F.Atom ("edge", [ v "x"; v "y" ])),
        F.Not
          (F.Exists
             ( "y",
               F.And
                 (F.Atom ("edge", [ v "x"; v "y" ]), F.Atom ("edge", [ v "y"; v "x" ])) )) )
  in
  let q = { F.head = [ "x" ]; body } in
  let result = Calculus.Active_domain.eval graph_db q in
  (* sources are {1,2,3,6,7}; 6 and 7 lie on the 2-cycle *)
  Alcotest.(check int) "non-cycle sources" 3 (R.Relation.cardinality result)

let test_adom_eval_constant_in_query () =
  (* {x | x = 99}: 99 is not in the database but is a query constant *)
  let q = { F.head = [ "x" ]; body = F.Cmp (A.Eq, v "x", c (Int 99)) } in
  let result = Calculus.Active_domain.eval graph_db q in
  Alcotest.(check (list (list string))) "constant included" [ [ "99" ] ]
    (List.map (List.map R.Value.to_string) (rows result))

let test_adom_eval_forall () =
  (* students enrolled in every cs course, via ∀ *)
  let body =
    F.And
      ( F.Exists ("n", F.Exists ("yr", F.Atom ("students", [ v "s"; v "n"; v "yr" ]))),
        F.Forall
          ( "cid",
            F.Or
              ( F.Not
                  (F.Exists
                     ("t", F.Atom ("courses", [ v "cid"; v "t"; c (String "cs") ]))),
                F.Exists ("g", F.Atom ("enrolled", [ v "s"; v "cid"; v "g" ])) ) ) )
  in
  let q = { F.head = [ "s" ]; body } in
  let result = Calculus.Active_domain.eval university q in
  Alcotest.(check (list (list string))) "ada" [ [ "1" ] ]
    (List.map (List.map R.Value.to_string) (rows result))

let test_adom_boolean_query () =
  let q = { F.head = []; body = F.Exists ("x", F.Atom ("edge", [ v "x"; c (Int 4) ])) } in
  Alcotest.(check int) "true" 1
    (R.Relation.cardinality (Calculus.Active_domain.eval graph_db q));
  let q2 = { F.head = []; body = F.Exists ("x", F.Atom ("edge", [ v "x"; c (Int 99) ])) } in
  Alcotest.(check int) "false" 0
    (R.Relation.cardinality (Calculus.Active_domain.eval graph_db q2))

(* --- Codd: calculus -> algebra -------------------------------------------------- *)

let translate_and_eval db q =
  R.Eval.eval db (Calculus.To_algebra.translate_query db q)

let codd_cases_graph =
  [
    ("atom", { F.head = [ "x"; "y" ]; body = F.Atom ("edge", [ v "x"; v "y" ]) });
    ( "two-hop",
      {
        F.head = [ "x"; "y" ];
        body =
          F.Exists
            ("z", F.And (F.Atom ("edge", [ v "x"; v "z" ]), F.Atom ("edge", [ v "z"; v "y" ])));
      } );
    ( "negation",
      {
        F.head = [ "x" ];
        body =
          F.And
            ( F.Exists ("y", F.Atom ("edge", [ v "x"; v "y" ])),
              F.Not (F.Atom ("edge", [ v "x"; v "x" ])) );
      } );
    ( "disjunction",
      {
        F.head = [ "x" ];
        body =
          F.Or
            ( F.Exists ("y", F.Atom ("edge", [ v "x"; v "y" ])),
              F.Exists ("y", F.Atom ("edge", [ v "y"; v "x" ])) );
      } );
    ( "constant",
      { F.head = [ "x" ]; body = F.Cmp (A.Eq, v "x", c (Int 99)) } );
    ( "comparison",
      {
        F.head = [ "x"; "y" ];
        body = F.And (F.Atom ("edge", [ v "x"; v "y" ]), F.Cmp (A.Lt, v "x", v "y"));
      } );
    ( "repeated variable",
      { F.head = [ "x" ]; body = F.Atom ("edge", [ v "x"; v "x" ]) } );
    ( "forall (2-cycles)",
      {
        F.head = [ "x" ];
        body =
          F.And
            ( F.Exists ("y", F.Atom ("edge", [ v "x"; v "y" ])),
              F.Forall
                ( "y",
                  F.Or
                    ( F.Not (F.Atom ("edge", [ v "x"; v "y" ])),
                      F.Atom ("edge", [ v "y"; v "x" ]) ) ) );
      } );
    ( "boolean",
      { F.head = []; body = F.Exists ("x", F.Atom ("edge", [ v "x"; c (Int 4) ])) } );
  ]

let test_codd_translation_graph () =
  List.iter
    (fun (name, q) ->
      check_rel name
        (Calculus.Active_domain.eval graph_db q)
        (translate_and_eval graph_db q))
    codd_cases_graph

let test_codd_translation_university () =
  let division =
    {
      F.head = [ "s" ];
      body =
        F.And
          ( F.Exists ("n", F.Exists ("yr", F.Atom ("students", [ v "s"; v "n"; v "yr" ]))),
            F.Forall
              ( "cid",
                F.Or
                  ( F.Not
                      (F.Exists
                         ("t", F.Atom ("courses", [ v "cid"; v "t"; c (String "cs") ]))),
                    F.Exists ("g", F.Atom ("enrolled", [ v "s"; v "cid"; v "g" ])) ) ) );
    }
  in
  check_rel "division via calculus"
    (Calculus.Active_domain.eval university division)
    (translate_and_eval university division)

let test_codd_output_well_typed () =
  List.iter
    (fun (name, q) ->
      let e = Calculus.To_algebra.translate_query graph_db q in
      Alcotest.(check bool) name true
        (A.well_typed (A.catalog_of_database graph_db) e))
    codd_cases_graph

(* --- Codd: algebra -> calculus --------------------------------------------------- *)

let test_from_algebra_cases () =
  let cases =
    [
      ("base", A.Rel "students");
      ("select", A.Select (A.Cmp (A.Ge, A.Attr "grade", A.Const (Int 85)), A.Rel "enrolled"));
      ("project", A.Project ([ "sname" ], A.Rel "students"));
      ("join", A.Join (A.Rel "students", A.Rel "enrolled"));
      ( "diff",
        A.Diff
          ( A.Project ([ "sid" ], A.Rel "students"),
            A.Project ([ "sid" ], A.Rel "enrolled") ) );
      ( "union",
        A.Union
          ( A.Project ([ "sid" ], A.Rel "students"),
            A.Project ([ "sid" ], A.Rel "enrolled") ) );
      ( "rename",
        A.Rename ([ ("sid", "id") ], A.Project ([ "sid" ], A.Rel "students")) );
      ( "divide",
        A.Divide
          ( A.Project ([ "sid"; "cid" ], A.Rel "enrolled"),
            A.Project
              ( [ "cid" ],
                A.Select (A.Cmp (A.Eq, A.Attr "dept", A.Const (String "cs")), A.Rel "courses") ) ) );
      ("singleton", A.Singleton [ ("k", Int 5) ]);
      ( "product",
        A.Product
          ( A.Project ([ "sid" ], A.Rel "students"),
            A.Rename ([ ("cid", "cid2") ], A.Project ([ "cid" ], A.Rel "courses")) ) );
    ]
  in
  List.iter
    (fun (name, e) ->
      let q = Calculus.From_algebra.query_of catalog e in
      check_rel name (R.Eval.eval university e)
        (Calculus.Active_domain.eval university q))
    cases

let test_from_algebra_safe_range () =
  let e =
    A.Diff
      ( A.Project ([ "sid" ], A.Rel "students"),
        A.Project ([ "sid" ], A.Rel "enrolled") )
  in
  let q = Calculus.From_algebra.query_of catalog e in
  Alcotest.(check bool) "difference translates to safe query" true
    (Calculus.Safety.is_safe_range q = Calculus.Safety.Safe)

(* --- the round-trip property ------------------------------------------------------ *)

let property count name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let prop_codd_roundtrip =
  property 60 "algebra -> calculus -> algebra round trip" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let db =
        R.Generator.random_database rng ~relations:2 ~arity:2 ~size:5 ~domain:4
      in
      let q = R.Generator.random_query rng db ~depth:2 ~domain:4 in
      let catalog = A.catalog_of_database db in
      let direct = R.Eval.eval db q in
      let calc = Calculus.From_algebra.query_of catalog q in
      let back = Calculus.To_algebra.translate_query db calc in
      R.Relation.equal direct (R.Eval.eval db back))

let prop_from_algebra_matches_adom_eval =
  property 60 "algebra -> calculus matches active-domain eval" seed_gen
    (fun seed ->
      let rng = Support.Rng.create seed in
      let db =
        R.Generator.random_database rng ~relations:2 ~arity:2 ~size:5 ~domain:4
      in
      let q = R.Generator.random_query rng db ~depth:2 ~domain:4 in
      let catalog = A.catalog_of_database db in
      let direct = R.Eval.eval db q in
      let calc = Calculus.From_algebra.query_of catalog q in
      R.Relation.equal direct (Calculus.Active_domain.eval db calc))

let suite =
  [
    Alcotest.test_case "free vars" `Quick test_free_vars;
    Alcotest.test_case "rectify distinct binders" `Quick test_rectify_no_rebinding;
    Alcotest.test_case "rectify preserves semantics" `Quick test_rectify_preserves_semantics;
    Alcotest.test_case "rename_free capture avoiding" `Quick
      test_rename_free_capture_avoiding;
    Alcotest.test_case "remove forall" `Quick test_remove_forall;
    Alcotest.test_case "check_query rejects" `Quick test_check_query_rejects;
    Alcotest.test_case "typing from atom" `Quick test_typing_from_atom;
    Alcotest.test_case "typing unification" `Quick test_typing_unification;
    Alcotest.test_case "typing conflict" `Quick test_typing_conflict;
    Alcotest.test_case "typing untypeable" `Quick test_typing_untypeable;
    Alcotest.test_case "typing arity mismatch" `Quick test_typing_arity_mismatch;
    Alcotest.test_case "safe atom" `Quick test_safe_atom;
    Alcotest.test_case "unsafe bare negation" `Quick test_unsafe_negation;
    Alcotest.test_case "safe guarded negation" `Quick test_safe_guarded_negation;
    Alcotest.test_case "unsafe half-restricted or" `Quick test_unsafe_disjunction;
    Alcotest.test_case "safe disjunction" `Quick test_safe_disjunction;
    Alcotest.test_case "equality propagation" `Quick test_safety_equality_propagation;
    Alcotest.test_case "x = const is safe" `Quick test_safety_constant_equality;
    Alcotest.test_case "x < const alone unsafe" `Quick test_unsafe_inequality_only;
    Alcotest.test_case "guarded forall safe" `Quick test_safe_forall_guarded;
    Alcotest.test_case "adom eval atom" `Quick test_adom_eval_atom;
    Alcotest.test_case "adom eval two-hop" `Quick test_adom_eval_two_hop;
    Alcotest.test_case "adom eval negation" `Quick test_adom_eval_negation;
    Alcotest.test_case "adom eval query constant" `Quick test_adom_eval_constant_in_query;
    Alcotest.test_case "adom eval forall (division)" `Quick test_adom_eval_forall;
    Alcotest.test_case "adom boolean query" `Quick test_adom_boolean_query;
    Alcotest.test_case "codd translation (graph)" `Quick test_codd_translation_graph;
    Alcotest.test_case "codd translation (university)" `Quick
      test_codd_translation_university;
    Alcotest.test_case "codd output well-typed" `Quick test_codd_output_well_typed;
    Alcotest.test_case "from_algebra cases" `Quick test_from_algebra_cases;
    Alcotest.test_case "from_algebra safe-range" `Quick test_from_algebra_safe_range;
    prop_codd_roundtrip;
    prop_from_algebra_matches_adom_eval;
  ]
