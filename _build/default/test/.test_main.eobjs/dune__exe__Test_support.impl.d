test/test_support.ml: Alcotest Array Float Fun Int64 List String Support
