test/test_integration.ml: Access Alcotest Array Calculus Datalog Dependencies Fixtures Incomplete List Nested QCheck2 QCheck_alcotest Relational Stdlib Support
