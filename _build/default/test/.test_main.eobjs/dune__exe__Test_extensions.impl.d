test/test_extensions.ml: Alcotest Array Datalog Dependencies Fixtures Float List Metatheory QCheck2 QCheck_alcotest Relational Sat Str_contains Support Transactions
