test/test_datalog.ml: Alcotest Datalog Fixtures List Printf QCheck2 QCheck_alcotest Relational String Support
