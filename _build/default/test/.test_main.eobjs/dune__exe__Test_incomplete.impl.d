test/test_incomplete.ml: Alcotest Array Fixtures Incomplete List QCheck2 QCheck_alcotest Relational Support
