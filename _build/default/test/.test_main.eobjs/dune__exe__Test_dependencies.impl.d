test/test_dependencies.ml: Alcotest Array Char Dependencies Fixtures Fun List QCheck2 QCheck_alcotest Relational String Support
