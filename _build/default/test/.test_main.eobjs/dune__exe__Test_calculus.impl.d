test/test_calculus.ml: Alcotest Calculus Fixtures List QCheck2 QCheck_alcotest Relational String Support
