test/test_extensions2.ml: Alcotest Array Calculus Dependencies Fixtures Format List Metatheory Printf QCheck2 QCheck_alcotest Relational Stdlib String Support Transactions
