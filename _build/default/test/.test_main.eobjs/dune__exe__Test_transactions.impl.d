test/test_transactions.ml: Alcotest Array List QCheck2 QCheck_alcotest Support Transactions
