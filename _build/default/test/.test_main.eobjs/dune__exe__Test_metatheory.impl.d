test/test_metatheory.ml: Alcotest Array Float Fun List Metatheory Printf QCheck2 QCheck_alcotest Str_contains Support
