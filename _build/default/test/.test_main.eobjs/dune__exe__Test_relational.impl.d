test/test_relational.ml: Alcotest Array Fixtures Int List QCheck2 QCheck_alcotest Relational Support
