test/test_sat.ml: Alcotest Datalog List QCheck2 QCheck_alcotest Relational Sat Stdlib Support
