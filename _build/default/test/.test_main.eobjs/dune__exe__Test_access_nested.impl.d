test/test_access_nested.ml: Access Alcotest Array Fixtures Fun Hashtbl List Nested Printf QCheck2 QCheck_alcotest Relational Support
