test/fixtures.ml: Alcotest Array Format List Relational
