(* Tests for the SAT substrate: CNF, DPLL vs brute force, the Cook-style
   reductions, and the miniature Fagin evaluator. *)

module S = Sat
module D = Datalog
open Relational.Value

(* --- cnf ------------------------------------------------------------------ *)

let test_cnf_eval () =
  let cnf = [ [ 1; -2 ]; [ 2 ] ] in
  Alcotest.(check bool) "satisfying" true
    (S.Cnf.eval [ (1, true); (2, true) ] cnf);
  Alcotest.(check bool) "falsifying" false
    (S.Cnf.eval [ (1, false); (2, true) ] cnf)

let test_dimacs_roundtrip () =
  let cnf = [ [ 1; -2; 3 ]; [ -1 ]; [ 2; -3 ] ] in
  Alcotest.(check bool) "roundtrip" true
    (S.Cnf.of_dimacs (S.Cnf.to_dimacs cnf) = cnf)

let test_dimacs_errors () =
  Alcotest.(check bool) "no terminating zero" true
    (match S.Cnf.of_dimacs "1 2 3" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- dpll ------------------------------------------------------------------- *)

let test_dpll_simple_sat () =
  match S.Dpll.solve [ [ 1; 2 ]; [ -1; 2 ]; [ -2; 3 ] ] with
  | S.Dpll.Sat a ->
      Alcotest.(check bool) "model checks" true
        (S.Cnf.eval a [ [ 1; 2 ]; [ -1; 2 ]; [ -2; 3 ] ])
  | S.Dpll.Unsat -> Alcotest.fail "satisfiable formula"

let test_dpll_unsat () =
  Alcotest.(check bool) "contradiction" false
    (S.Dpll.is_satisfiable [ [ 1 ]; [ -1 ] ]);
  Alcotest.(check bool) "empty clause" false (S.Dpll.is_satisfiable [ [] ])

let test_dpll_empty_formula () =
  Alcotest.(check bool) "empty cnf is sat" true (S.Dpll.is_satisfiable [])

let test_dpll_unit_propagation () =
  let _, stats = S.Dpll.solve_with_stats [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ] in
  Alcotest.(check int) "pure chain needs no decisions" 0 stats.S.Dpll.decisions

let test_pigeonhole_unsat () =
  (* 3 pigeons, 2 holes: variable p*2+h+1 *)
  let var p h = (p * 2) + h + 1 in
  let each_pigeon = List.init 3 (fun p -> [ var p 0; var p 1 ]) in
  let no_sharing =
    List.concat_map
      (fun h ->
        [
          [ -var 0 h; -var 1 h ];
          [ -var 0 h; -var 2 h ];
          [ -var 1 h; -var 2 h ];
        ])
      [ 0; 1 ]
  in
  Alcotest.(check bool) "php(3,2) unsat" false
    (S.Dpll.is_satisfiable (each_pigeon @ no_sharing))

(* --- 3-coloring -------------------------------------------------------------- *)

let triangle = [ (0, 1); (1, 2); (2, 0) ]
let square = [ (0, 1); (1, 2); (2, 3); (3, 0) ]
let k4 = [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]

let test_three_coloring () =
  let solvable edges nodes =
    let cnf, _ = S.Encodings.three_coloring ~edges ~nodes in
    S.Dpll.is_satisfiable cnf
  in
  Alcotest.(check bool) "triangle colorable" true (solvable triangle [ 0; 1; 2 ]);
  Alcotest.(check bool) "square colorable" true (solvable square [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "K4 not 3-colorable" false (solvable k4 [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "self loop impossible" false (solvable [ (0, 0) ] [ 0 ])

let test_decode_coloring () =
  let cnf, vm = S.Encodings.three_coloring ~edges:triangle ~nodes:[ 0; 1; 2 ] in
  match S.Dpll.solve cnf with
  | S.Dpll.Unsat -> Alcotest.fail "triangle is colorable"
  | S.Dpll.Sat a ->
      let colors = S.Encodings.decode_coloring vm a in
      Alcotest.(check int) "three nodes colored" 3 (List.length colors);
      List.iter
        (fun (u, v) ->
          Alcotest.(check bool) "proper coloring" true
            (List.assoc u colors <> List.assoc v colors))
        triangle

(* --- boolean CQ via SAT ----------------------------------------------------------- *)

let facts_of_pairs pred pairs =
  D.Facts.add_list D.Facts.empty pred
    (List.map (fun (a, b) -> [ Int a; Int b ]) pairs)

let cq body_str =
  D.Containment.of_rule (D.Parser.parse_rule ("q() :- " ^ body_str ^ "."))

let test_cq_via_sat_basic () =
  let facts = facts_of_pairs "e" [ (1, 2); (2, 3) ] in
  let yes = cq "e(X, Y), e(Y, Z)" in
  let no = cq "e(X, X)" in
  Alcotest.(check bool) "path of 2 exists" true (S.Encodings.cq_holds_via_sat yes facts);
  Alcotest.(check bool) "no self loop" false (S.Encodings.cq_holds_via_sat no facts)

let test_cq_with_constants () =
  let facts = facts_of_pairs "e" [ (1, 2); (2, 3) ] in
  let q1 = cq "e(1, Y), e(Y, 3)" in
  let q2 = cq "e(3, Y)" in
  Alcotest.(check bool) "constants matched" true (S.Encodings.cq_holds_via_sat q1 facts);
  Alcotest.(check bool) "no edge from 3" false (S.Encodings.cq_holds_via_sat q2 facts)

let test_cq_sat_agrees_with_direct () =
  let facts = facts_of_pairs "e" [ (1, 2); (2, 3); (3, 1); (2, 2) ] in
  let queries =
    [
      "e(X, Y)";
      "e(X, X)";
      "e(X, Y), e(Y, X)";
      "e(X, Y), e(Y, Z), e(Z, X)";
      "e(1, X), e(X, 1)";
      "e(X, Y), e(Y, Z), e(Z, W), e(W, X)";
    ]
  in
  List.iter
    (fun body ->
      let q = cq body in
      Alcotest.(check bool) body
        (S.Encodings.cq_holds_directly q facts)
        (S.Encodings.cq_holds_via_sat q facts))
    queries

(* --- fagin ---------------------------------------------------------------------- *)

let test_fagin_three_colorability () =
  let decide edges nodes =
    S.Fagin.decide
      (S.Fagin.structure_of_graph ~edges ~nodes)
      S.Fagin.three_colorability
  in
  Alcotest.(check bool) "triangle" true (decide triangle [ 0; 1; 2 ]);
  Alcotest.(check bool) "K4" false (decide k4 [ 0; 1; 2; 3 ])

let test_fagin_model_is_coloring () =
  match
    S.Fagin.model
      (S.Fagin.structure_of_graph ~edges:square ~nodes:[ 0; 1; 2; 3 ])
      S.Fagin.three_colorability
  with
  | None -> Alcotest.fail "square is 3-colorable"
  | Some relations ->
      let members rel =
        match List.assoc_opt rel relations with
        | Some rows -> List.map (function [ v ] -> v | _ -> -1) rows
        | None -> []
      in
      let all = members "r" @ members "g" @ members "b" in
      Alcotest.(check int) "every node colored" 4
        (List.length (List.sort_uniq Stdlib.compare all));
      List.iter
        (fun (u, v) ->
          List.iter
            (fun c ->
              let m = members c in
              Alcotest.(check bool) "no monochrome edge" false
                (List.mem u m && List.mem v m))
            [ "r"; "g"; "b" ])
        square

let test_fagin_agrees_with_direct_encoding () =
  let graphs =
    [
      (triangle, [ 0; 1; 2 ]);
      (square, [ 0; 1; 2; 3 ]);
      (k4, [ 0; 1; 2; 3 ]);
      ([ (0, 1) ], [ 0; 1 ]);
      ([], [ 0 ]);
    ]
  in
  List.iter
    (fun (edges, nodes) ->
      let via_fagin =
        S.Fagin.decide (S.Fagin.structure_of_graph ~edges ~nodes)
          S.Fagin.three_colorability
      in
      let cnf, _ = S.Encodings.three_coloring ~edges ~nodes in
      Alcotest.(check bool) "fagin = direct" (S.Dpll.is_satisfiable cnf) via_fagin)
    graphs

let test_fagin_simple_sentences () =
  (* ∃S ∀x S(x): always satisfiable (take S = domain) *)
  let all =
    {
      S.Fagin.guesses = [ ("s", 1) ];
      matrix = S.Fagin.Forall ("x", S.Fagin.Guess ("s", [ S.Fagin.V "x" ]));
    }
  in
  let structure = { S.Fagin.domain = [ 1; 2 ]; base = [] } in
  Alcotest.(check bool) "exists full set" true (S.Fagin.decide structure all);
  (* ∃S ∀x (S(x) ∧ ¬S(x)): unsatisfiable *)
  let contradiction =
    {
      S.Fagin.guesses = [ ("s", 1) ];
      matrix =
        S.Fagin.Forall
          ( "x",
            S.Fagin.And
              ( S.Fagin.Guess ("s", [ S.Fagin.V "x" ]),
                S.Fagin.Not (S.Fagin.Guess ("s", [ S.Fagin.V "x" ])) ) );
    }
  in
  Alcotest.(check bool) "contradiction" false (S.Fagin.decide structure contradiction)

let test_fagin_free_variable_rejected () =
  let bad =
    { S.Fagin.guesses = [ ("s", 1) ]; matrix = S.Fagin.Guess ("s", [ S.Fagin.V "x" ]) }
  in
  Alcotest.(check bool) "free var" true
    (match S.Fagin.decide { S.Fagin.domain = [ 1 ]; base = [] } bad with
    | _ -> false
    | exception S.Fagin.Ill_formed _ -> true)

(* --- property tests ------------------------------------------------------------- *)

let property count name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let random_cnf rng ~vars ~clauses ~width =
  List.init clauses (fun _ ->
      List.init (1 + Support.Rng.int rng width) (fun _ ->
          let v = 1 + Support.Rng.int rng vars in
          if Support.Rng.bool rng then v else -v))

let prop_dpll_equals_bruteforce =
  property 100 "dpll agrees with brute force" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let cnf = random_cnf rng ~vars:6 ~clauses:10 ~width:3 in
      let a = S.Dpll.is_satisfiable cnf in
      let b = match S.Dpll.brute_force cnf with S.Dpll.Sat _ -> true | S.Dpll.Unsat -> false in
      a = b)

let prop_dpll_models_check =
  property 100 "dpll models satisfy the formula" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let cnf = random_cnf rng ~vars:7 ~clauses:12 ~width:3 in
      match S.Dpll.solve cnf with
      | S.Dpll.Unsat -> true
      | S.Dpll.Sat a -> S.Cnf.eval a cnf)

let prop_cq_sat_equals_direct =
  property 60 "cq via SAT = direct homomorphism search" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let pairs =
        List.init (3 + Support.Rng.int rng 6) (fun _ ->
            (Support.Rng.int rng 4, Support.Rng.int rng 4))
      in
      let facts = facts_of_pairs "e" pairs in
      let vars = [| "X"; "Y"; "Z" |] in
      let body =
        List.init (1 + Support.Rng.int rng 3) (fun _ ->
            D.Ast.atom "e"
              [
                D.Ast.Var (Support.Rng.pick rng vars);
                D.Ast.Var (Support.Rng.pick rng vars);
              ])
      in
      let q = { D.Containment.head = []; body } in
      S.Encodings.cq_holds_via_sat q facts = S.Encodings.cq_holds_directly q facts)

let suite =
  [
    Alcotest.test_case "cnf eval" `Quick test_cnf_eval;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
    Alcotest.test_case "dpll simple sat" `Quick test_dpll_simple_sat;
    Alcotest.test_case "dpll unsat" `Quick test_dpll_unsat;
    Alcotest.test_case "dpll empty formula" `Quick test_dpll_empty_formula;
    Alcotest.test_case "dpll unit propagation" `Quick test_dpll_unit_propagation;
    Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
    Alcotest.test_case "three coloring" `Quick test_three_coloring;
    Alcotest.test_case "decode coloring" `Quick test_decode_coloring;
    Alcotest.test_case "cq via sat basic" `Quick test_cq_via_sat_basic;
    Alcotest.test_case "cq with constants" `Quick test_cq_with_constants;
    Alcotest.test_case "cq sat = direct (fixed)" `Quick test_cq_sat_agrees_with_direct;
    Alcotest.test_case "fagin 3-colorability" `Quick test_fagin_three_colorability;
    Alcotest.test_case "fagin model is coloring" `Quick test_fagin_model_is_coloring;
    Alcotest.test_case "fagin = direct encoding" `Quick
      test_fagin_agrees_with_direct_encoding;
    Alcotest.test_case "fagin simple sentences" `Quick test_fagin_simple_sentences;
    Alcotest.test_case "fagin free var rejected" `Quick test_fagin_free_variable_rejected;
    prop_dpll_equals_bruteforce;
    prop_dpll_models_check;
    prop_cq_sat_equals_direct;
  ]
