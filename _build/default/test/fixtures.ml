(* Shared example instances used across the test suites: a small university
   database (the classic running example) and graph instances for the
   recursive-query tests. *)

module R = Relational
open R.Value

let schema pairs = R.Schema.make pairs

let students_schema =
  schema [ ("sid", TInt); ("sname", TString); ("year", TInt) ]

let courses_schema =
  schema [ ("cid", TInt); ("title", TString); ("dept", TString) ]

let enrolled_schema = schema [ ("sid", TInt); ("cid", TInt); ("grade", TInt) ]

let students =
  R.Relation.of_list students_schema
    [
      [ Int 1; String "ada"; Int 3 ];
      [ Int 2; String "bob"; Int 1 ];
      [ Int 3; String "cyn"; Int 2 ];
      [ Int 4; String "dan"; Int 3 ];
      [ Int 5; String "eve"; Int 1 ];
    ]

let courses =
  R.Relation.of_list courses_schema
    [
      [ Int 10; String "databases"; String "cs" ];
      [ Int 11; String "logic"; String "cs" ];
      [ Int 12; String "algebra"; String "math" ];
      [ Int 13; String "ethics"; String "phil" ];
    ]

let enrolled =
  R.Relation.of_list enrolled_schema
    [
      [ Int 1; Int 10; Int 95 ];
      [ Int 1; Int 11; Int 88 ];
      [ Int 1; Int 12; Int 91 ];
      [ Int 1; Int 13; Int 77 ];
      [ Int 2; Int 10; Int 60 ];
      [ Int 3; Int 11; Int 72 ];
      [ Int 3; Int 12; Int 80 ];
      [ Int 4; Int 10; Int 85 ];
      [ Int 4; Int 12; Int 70 ];
    ]

let university =
  R.Database.of_list
    [ ("students", students); ("courses", courses); ("enrolled", enrolled) ]

(* A small directed graph: 1 -> 2 -> 3 -> 4, 2 -> 5, plus a cycle 6 <-> 7 *)
let edge_schema = schema [ ("src", TInt); ("dst", TInt) ]

let edges =
  R.Relation.of_list edge_schema
    [
      [ Int 1; Int 2 ];
      [ Int 2; Int 3 ];
      [ Int 3; Int 4 ];
      [ Int 2; Int 5 ];
      [ Int 6; Int 7 ];
      [ Int 7; Int 6 ];
    ]

let graph_db = R.Database.of_list [ ("edge", edges) ]

let relation_testable =
  Alcotest.testable
    (fun fmt r -> Format.pp_print_string fmt (R.Relation.to_string r))
    R.Relation.equal

let rows rel =
  R.Relation.to_list rel |> List.map Array.to_list
