(* Tests for the transaction-processing substrate: schedules,
   serializability theory, recoverability classes, the lock table, and
   the four concurrency-control protocols under simulation. *)

module T = Transactions
module S = T.Schedule

let sched = S.of_string

(* --- schedule syntax -------------------------------------------------------- *)

let test_schedule_parse_print () =
  let s = "r1(x) w1(x) r2(y) w2(x) c1 c2" in
  Alcotest.(check string) "roundtrip" s (S.to_string (sched s))

let test_schedule_parse_errors () =
  let bad input =
    match S.of_string input with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "no item" true (bad "r1()");
  Alcotest.(check bool) "garbage" true (bad "z1(x)");
  Alcotest.(check bool) "no txn" true (bad "r(x)")

let test_schedule_accessors () =
  let s = sched "r1(x) w2(y) c1 a2" in
  Alcotest.(check (list int)) "txns" [ 1; 2 ] (S.txns s);
  Alcotest.(check (list int)) "committed" [ 1 ] (S.committed s);
  Alcotest.(check (list int)) "aborted" [ 2 ] (S.aborted s);
  Alcotest.(check (list string)) "items" [ "x"; "y" ] (S.items s)

let test_well_formed () =
  Alcotest.(check bool) "fine" true (S.well_formed (sched "r1(x) c1"));
  Alcotest.(check bool) "op after commit" false
    (S.well_formed (sched "c1 r1(x)"));
  Alcotest.(check bool) "double commit" false (S.well_formed (sched "c1 c1"))

let test_is_serial () =
  Alcotest.(check bool) "serial" true (S.is_serial (sched "r1(x) w1(y) c1 r2(x) c2"));
  Alcotest.(check bool) "interleaved" false
    (S.is_serial (sched "r1(x) r2(x) w1(y) c1 c2"))

(* --- serializability ---------------------------------------------------------- *)

let test_conflict_serializable_classic () =
  (* the classic serializable interleaving *)
  let ok = sched "r1(x) w1(x) r2(x) w2(x) r1(y) w1(y) c1 c2" in
  Alcotest.(check bool) "serializable" true
    (T.Serializability.is_conflict_serializable ok);
  (* and the classic non-serializable one: T1 and T2 each read-then-write x
     crosswise *)
  let bad = sched "r1(x) r2(x) w1(x) w2(x) c1 c2" in
  Alcotest.(check bool) "not serializable" false
    (T.Serializability.is_conflict_serializable bad)

let test_precedence_graph_edges () =
  let s = sched "w1(x) r2(x) c1 c2" in
  Alcotest.(check (list (pair int int))) "edge 1->2" [ (1, 2) ]
    (T.Serializability.precedence_graph s)

let test_serial_order_found () =
  let s = sched "r2(x) w2(x) r1(x) w1(x) c1 c2" in
  match T.Serializability.conflict_equivalent_serial_order s with
  | Some order -> Alcotest.(check (list int)) "2 before 1" [ 2; 1 ] order
  | None -> Alcotest.fail "should be serializable"

let test_aborted_txns_ignored () =
  (* the cycle involves an aborted transaction: committed projection is fine *)
  let s = sched "r1(x) r2(x) w1(x) w2(x) a2 c1" in
  Alcotest.(check bool) "aborted excluded" true
    (T.Serializability.is_conflict_serializable s)

let test_view_serializable_blind_writes () =
  (* the canonical view-but-not-conflict-serializable schedule (blind
     writes): w1(x) w2(x) w2(y) c2 w1(y) c1 w3(x) w3(y) c3 *)
  let s = sched "w1(x) w2(x) w2(y) c2 w1(y) c1 w3(x) w3(y) c3" in
  Alcotest.(check bool) "not conflict-serializable" false
    (T.Serializability.is_conflict_serializable s);
  Alcotest.(check bool) "view-serializable" true
    (T.Serializability.is_view_serializable s)

let test_conflict_implies_view () =
  let schedules =
    [
      "r1(x) w1(x) r2(x) w2(x) c1 c2";
      "r2(x) w2(x) r1(y) w1(y) c1 c2";
      "w1(x) c1 r2(x) w2(y) c2";
    ]
  in
  List.iter
    (fun s ->
      let s = sched s in
      if T.Serializability.is_conflict_serializable s then
        Alcotest.(check bool)
          ("view too: " ^ S.to_string s)
          true
          (T.Serializability.is_view_serializable s))
    schedules

let test_reads_from () =
  let s = sched "w1(x) r2(x) r3(y) c1 c2 c3" in
  let rf = T.Serializability.reads_from s in
  Alcotest.(check bool) "t2 reads x from t1" true
    (List.mem (2, "x", Some 1) rf);
  Alcotest.(check bool) "t3 reads y from initial" true
    (List.mem (3, "y", None) rf)

(* --- recoverability ------------------------------------------------------------- *)

let test_recoverability_hierarchy () =
  (* strict ⟹ ACA ⟹ RC on examples *)
  let strict = sched "w1(x) c1 r2(x) w2(x) c2" in
  Alcotest.(check bool) "strict" true (T.Serializability.is_strict strict);
  Alcotest.(check bool) "strict is ACA" true
    (T.Serializability.avoids_cascading_aborts strict);
  Alcotest.(check bool) "strict is RC" true (T.Serializability.is_recoverable strict);
  (* ACA but not strict: overwrite before commit *)
  let aca_not_strict = sched "w1(x) w2(x) c1 c2" in
  Alcotest.(check bool) "not strict" false
    (T.Serializability.is_strict aca_not_strict);
  Alcotest.(check bool) "still ACA" true
    (T.Serializability.avoids_cascading_aborts aca_not_strict);
  (* RC but not ACA: dirty read, but commit order ok *)
  let rc_not_aca = sched "w1(x) r2(x) c1 c2" in
  Alcotest.(check bool) "not ACA" false
    (T.Serializability.avoids_cascading_aborts rc_not_aca);
  Alcotest.(check bool) "still RC" true (T.Serializability.is_recoverable rc_not_aca);
  (* not even RC: reader commits before writer *)
  let not_rc = sched "w1(x) r2(x) c2 c1" in
  Alcotest.(check bool) "not RC" false (T.Serializability.is_recoverable not_rc)

(* --- lock table -------------------------------------------------------------------- *)

let test_lock_compatibility () =
  let t = T.Locks.create () in
  Alcotest.(check bool) "s grant" true (T.Locks.acquire t ~txn:1 ~item:"x" T.Locks.Shared);
  Alcotest.(check bool) "s shares" true (T.Locks.acquire t ~txn:2 ~item:"x" T.Locks.Shared);
  Alcotest.(check bool) "x blocked by s" false
    (T.Locks.acquire t ~txn:3 ~item:"x" T.Locks.Exclusive);
  T.Locks.release_all t ~txn:1;
  T.Locks.release_all t ~txn:2;
  Alcotest.(check bool) "x after release" true
    (T.Locks.acquire t ~txn:3 ~item:"x" T.Locks.Exclusive);
  Alcotest.(check bool) "s blocked by x" false
    (T.Locks.acquire t ~txn:4 ~item:"x" T.Locks.Shared)

let test_lock_upgrade () =
  let t = T.Locks.create () in
  Alcotest.(check bool) "s" true (T.Locks.acquire t ~txn:1 ~item:"x" T.Locks.Shared);
  Alcotest.(check bool) "upgrade sole holder" true
    (T.Locks.acquire t ~txn:1 ~item:"x" T.Locks.Exclusive);
  let t2 = T.Locks.create () in
  ignore (T.Locks.acquire t2 ~txn:1 ~item:"x" T.Locks.Shared);
  ignore (T.Locks.acquire t2 ~txn:2 ~item:"x" T.Locks.Shared);
  Alcotest.(check bool) "upgrade blocked with co-holder" false
    (T.Locks.acquire t2 ~txn:1 ~item:"x" T.Locks.Exclusive)

let test_lock_reentrant () =
  let t = T.Locks.create () in
  ignore (T.Locks.acquire t ~txn:1 ~item:"x" T.Locks.Exclusive);
  Alcotest.(check bool) "x reentrant" true
    (T.Locks.acquire t ~txn:1 ~item:"x" T.Locks.Exclusive);
  Alcotest.(check bool) "s under own x" true
    (T.Locks.acquire t ~txn:1 ~item:"x" T.Locks.Shared)

(* --- tree structure ------------------------------------------------------------------ *)

let test_tree_lca () =
  Alcotest.(check int) "lca(3,4)=1" 1 (T.Tree_lock.lca 3 4);
  Alcotest.(check int) "lca(3,3)=3" 3 (T.Tree_lock.lca 3 3);
  Alcotest.(check int) "lca(1,2)=0" 0 (T.Tree_lock.lca 1 2);
  Alcotest.(check int) "lca(7,8)=3" 3 (T.Tree_lock.lca 7 8);
  Alcotest.(check (option int)) "parent of root" None (T.Tree_lock.parent 0)

(* --- protocol simulations -------------------------------------------------------------- *)

let specs_of_strings strings =
  Array.of_list
    (List.map
       (fun s ->
         List.map
           (fun op ->
             match (op.S.action : S.action) with
             | S.Read _ | S.Write _ -> op.S.action
             | _ -> Alcotest.fail "spec may only contain reads/writes")
           (sched s))
       strings)

let run_protocol make specs = T.Simulation.run (make ()) specs

let all_commit stats specs =
  Alcotest.(check int)
    (stats.T.Simulation.protocol ^ " commits all")
    (Array.length specs) stats.T.Simulation.committed

let protocols : (string * (unit -> T.Protocol.t)) list =
  [
    ("2pl", T.Two_phase.create);
    ("timestamp", fun () -> T.Timestamp.create ());
    ("optimistic", T.Optimistic.create);
    ("tree", T.Tree_lock.create);
  ]

let test_protocols_commit_everything () =
  let specs =
    specs_of_strings [ "r1(x0) w1(x1)"; "r2(x1) w2(x2)"; "r3(x2) w3(x0)" ]
  in
  List.iter
    (fun (_, make) -> all_commit (run_protocol make specs) specs)
    protocols

let test_protocol_histories_serializable () =
  (* on a contended workload, each protocol's committed history must be
     conflict-serializable *)
  let rng = Support.Rng.create 7 in
  let params = { T.Workload.default with txns = 6; items = 4; write_ratio = 0.5 } in
  let specs = T.Workload.generate rng params in
  List.iter
    (fun (name, make) ->
      let stats = run_protocol make specs in
      Alcotest.(check bool) (name ^ " history serializable") true
        (T.Serializability.is_conflict_serializable stats.T.Simulation.history))
    protocols

let test_2pl_strict_history () =
  let rng = Support.Rng.create 11 in
  let specs =
    T.Workload.generate rng { T.Workload.default with txns = 5; items = 6 }
  in
  let stats = run_protocol T.Two_phase.create specs in
  Alcotest.(check bool) "2pl history strict" true
    (T.Serializability.is_strict stats.T.Simulation.history)

let test_2pl_deadlock_resolved () =
  (* classic crossing order: t1 takes x then y, t2 takes y then x *)
  let specs = specs_of_strings [ "w1(x) w1(y)"; "w2(y) w2(x)" ] in
  let stats = run_protocol T.Two_phase.create specs in
  Alcotest.(check int) "both commit" 2 stats.T.Simulation.committed;
  Alcotest.(check bool) "at least one deadlock" true
    (stats.T.Simulation.deadlocks >= 1)

let test_tree_lock_no_deadlock () =
  let rng = Support.Rng.create 3 in
  let params =
    { T.Workload.default with txns = 8; items = 15; write_ratio = 1.0 }
  in
  let specs = T.Workload.generate rng params in
  let stats = run_protocol T.Tree_lock.create specs in
  Alcotest.(check int) "no deadlocks ever" 0 stats.T.Simulation.deadlocks;
  all_commit stats specs

let test_timestamp_restarts_on_conflict () =
  (* t2 (younger) writes x after t1 (older) read... build a forced reject:
     young reads, old writes late *)
  let specs = specs_of_strings [ "r1(x) w1(y)"; "w2(x) w2(y)" ] in
  let stats = run_protocol (fun () -> T.Timestamp.create ()) specs in
  Alcotest.(check int) "both eventually commit" 2 stats.T.Simulation.committed

let test_optimistic_validation_conflict () =
  (* two transactions read-modify-write the same item: one must restart *)
  let specs = specs_of_strings [ "r1(x) w1(x)"; "r2(x) w2(x)" ] in
  let stats = run_protocol T.Optimistic.create specs in
  Alcotest.(check int) "both commit" 2 stats.T.Simulation.committed;
  Alcotest.(check bool) "with restarts" true (stats.T.Simulation.restarts >= 1)

let test_thomas_write_rule () =
  let specs = specs_of_strings [ "w1(x)"; "w2(x) w2(y)" ] in
  let stats = run_protocol (fun () -> T.Timestamp.create ~thomas:true ()) specs in
  Alcotest.(check int) "both commit" 2 stats.T.Simulation.committed

(* --- property tests --------------------------------------------------------------------- *)

let property count name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let random_params seed =
  let rng = Support.Rng.create seed in
  let params =
    {
      T.Workload.txns = 2 + Support.Rng.int rng 5;
      ops_per_txn = 1 + Support.Rng.int rng 6;
      items = 2 + Support.Rng.int rng 8;
      skew = Support.Rng.float rng 1.5;
      write_ratio = Support.Rng.float rng 1.0;
    }
  in
  (rng, params)

let prop_protocol_serializable name make =
  property 25
    (name ^ ": committed history conflict-serializable")
    seed_gen
    (fun seed ->
      let rng, params = random_params seed in
      let specs = T.Workload.generate rng params in
      let stats = T.Simulation.run (make ()) specs in
      stats.T.Simulation.committed = params.T.Workload.txns
      && T.Serializability.is_conflict_serializable stats.T.Simulation.history)

let prop_2pl = prop_protocol_serializable "2pl" T.Two_phase.create
let prop_ts = prop_protocol_serializable "timestamp" (fun () -> T.Timestamp.create ())
let prop_occ = prop_protocol_serializable "optimistic" T.Optimistic.create
let prop_tree = prop_protocol_serializable "tree" T.Tree_lock.create

let prop_2pl_strict =
  property 25 "2pl histories are strict (hence ACA and RC)" seed_gen (fun seed ->
      let rng, params = random_params seed in
      let specs = T.Workload.generate rng params in
      let stats = T.Simulation.run (T.Two_phase.create ()) specs in
      T.Serializability.is_strict stats.T.Simulation.history
      && T.Serializability.avoids_cascading_aborts stats.T.Simulation.history
      && T.Serializability.is_recoverable stats.T.Simulation.history)

let prop_serial_schedules_serializable =
  property 25 "serial schedules are conflict- and view-serializable" seed_gen
    (fun seed ->
      let rng, params = random_params seed in
      let specs = T.Workload.generate rng { params with txns = min 4 params.T.Workload.txns } in
      let serial =
        S.serial
          (Array.to_list
             (Array.mapi
                (fun i spec ->
                  List.map (fun action -> { S.txn = i; action }) spec
                  @ [ S.c i ])
                specs))
      in
      T.Serializability.is_conflict_serializable serial
      && T.Serializability.is_view_serializable serial)

let prop_tree_no_deadlocks =
  property 25 "tree protocol never deadlocks" seed_gen (fun seed ->
      let rng, params = random_params seed in
      let specs = T.Workload.generate rng params in
      let stats = T.Simulation.run (T.Tree_lock.create ()) specs in
      stats.T.Simulation.deadlocks = 0)

let suite =
  [
    Alcotest.test_case "schedule parse/print" `Quick test_schedule_parse_print;
    Alcotest.test_case "schedule parse errors" `Quick test_schedule_parse_errors;
    Alcotest.test_case "schedule accessors" `Quick test_schedule_accessors;
    Alcotest.test_case "well formed" `Quick test_well_formed;
    Alcotest.test_case "is serial" `Quick test_is_serial;
    Alcotest.test_case "conflict serializable classic" `Quick
      test_conflict_serializable_classic;
    Alcotest.test_case "precedence graph" `Quick test_precedence_graph_edges;
    Alcotest.test_case "serial order found" `Quick test_serial_order_found;
    Alcotest.test_case "aborted txns ignored" `Quick test_aborted_txns_ignored;
    Alcotest.test_case "view-serializable blind writes" `Quick
      test_view_serializable_blind_writes;
    Alcotest.test_case "conflict implies view" `Quick test_conflict_implies_view;
    Alcotest.test_case "reads-from" `Quick test_reads_from;
    Alcotest.test_case "recoverability hierarchy" `Quick test_recoverability_hierarchy;
    Alcotest.test_case "lock compatibility" `Quick test_lock_compatibility;
    Alcotest.test_case "lock upgrade" `Quick test_lock_upgrade;
    Alcotest.test_case "lock reentrant" `Quick test_lock_reentrant;
    Alcotest.test_case "tree lca" `Quick test_tree_lca;
    Alcotest.test_case "protocols commit everything" `Quick
      test_protocols_commit_everything;
    Alcotest.test_case "protocol histories serializable" `Quick
      test_protocol_histories_serializable;
    Alcotest.test_case "2pl strict history" `Quick test_2pl_strict_history;
    Alcotest.test_case "2pl deadlock resolved" `Quick test_2pl_deadlock_resolved;
    Alcotest.test_case "tree lock no deadlock" `Quick test_tree_lock_no_deadlock;
    Alcotest.test_case "timestamp restarts" `Quick test_timestamp_restarts_on_conflict;
    Alcotest.test_case "optimistic validation" `Quick test_optimistic_validation_conflict;
    Alcotest.test_case "thomas write rule" `Quick test_thomas_write_rule;
    prop_2pl;
    prop_ts;
    prop_occ;
    prop_tree;
    prop_2pl_strict;
    prop_serial_schedules_serializable;
    prop_tree_no_deadlocks;
  ]
