(* Cross-system integration tests: the same query answered by different
   engines, and theory-level artifacts checked against instance-level
   semantics.

   These are the repo's strongest correctness evidence: independent
   implementations (algebra evaluator, Datalog engine, calculus
   interpreter, chase, Yannakakis, Armstrong construction) must agree on
   shared ground. *)

module R = Relational
module A = R.Algebra
module D = Datalog
module Dep = Dependencies
open R.Value
open Fixtures

let check_rel = Alcotest.check relation_testable

let property count name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* --- algebra vs datalog: SPJ queries through both engines ------------------- *)

(* evaluate a conjunctive query by compiling it to a Datalog rule and
   running the semi-naive engine over the database's facts *)
let eval_cq_via_datalog db (cq : D.Containment.cq) =
  let rule = D.Containment.to_rule "answer__" cq in
  let facts = D.Interop.facts_of_database db in
  let result = D.Seminaive.eval [ rule ] facts in
  D.Facts.get result "answer__"

let random_spj rng db =
  (* build SPJ-only expressions so cq_of_algebra always succeeds *)
  let names = Array.of_list (R.Database.names db) in
  let catalog = A.catalog_of_database db in
  let rec gen depth =
    if depth = 0 then A.Rel (Support.Rng.pick rng names)
    else
      match Support.Rng.int rng 3 with
      | 0 ->
          let e = gen (depth - 1) in
          let schema = A.schema_of catalog e in
          let attrs = R.Schema.attributes schema in
          let keep = List.filter (fun _ -> Support.Rng.bool rng) attrs in
          let keep = if keep = [] then [ List.hd attrs ] else keep in
          A.Project (keep, e)
      | 1 ->
          let e = gen (depth - 1) in
          let schema = A.schema_of catalog e in
          let a, ty = Support.Rng.pick_list rng (R.Schema.pairs schema) in
          A.Select
            ( A.Cmp (A.Eq, A.Attr a, A.Const (R.Generator.random_value rng ty ~domain:4)),
              e )
      | _ -> A.Join (gen (depth - 1), gen (depth - 1))
  in
  gen 2

let prop_algebra_equals_datalog_on_spj =
  property 50 "SPJ algebra = datalog rule evaluation" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let db =
        R.Generator.random_database rng ~relations:2 ~arity:2 ~size:6 ~domain:4
      in
      let expr = random_spj rng db in
      let catalog = A.catalog_of_database db in
      match D.Interop.cq_of_algebra catalog expr with
      | None -> true (* outside the conjunctive fragment; nothing to compare *)
      | Some cq ->
          let via_algebra = R.Eval.eval db expr in
          let tuples = eval_cq_via_datalog db cq in
          (* compare as value-tuple sets: the datalog side loses schema *)
          let algebra_tuples =
            R.Relation.fold
              (fun tup acc -> D.Facts.Tuple_set.add tup acc)
              via_algebra D.Facts.Tuple_set.empty
          in
          D.Facts.Tuple_set.equal algebra_tuples tuples)

let test_fixed_spj_three_ways () =
  (* names of cs students with grade >= 85: algebra, datalog, calculus *)
  let expr =
    A.Project
      ( [ "sname" ],
        A.Select
          ( A.Cmp (A.Ge, A.Attr "grade", A.Const (Int 85)),
            A.Join (A.Rel "students", A.Rel "enrolled") ) )
  in
  let via_algebra = R.Eval.eval university expr in
  (* datalog with a comparison built-in *)
  let prog =
    D.Parser.parse_program
      "ans(N) :- students(S, N, Y), enrolled(S, C, G), G >= 85."
  in
  let facts = D.Interop.facts_of_database university in
  let via_datalog = D.Facts.get (D.Seminaive.eval prog facts) "ans" in
  (* calculus, compiled through Codd's theorem *)
  let q =
    Calculus.Parser.parse_query
      "{n | exists s, y, c, g. students(s, n, y) and enrolled(s, c, g) and g >= 85}"
  in
  let via_calculus =
    R.Eval.eval university (Calculus.To_algebra.translate_query university q)
  in
  Alcotest.(check int) "datalog agrees"
    (R.Relation.cardinality via_algebra)
    (D.Facts.Tuple_set.cardinal via_datalog);
  check_rel "calculus agrees" via_algebra
    (R.Relation.rename via_calculus [ ("n", "sname") ])

(* --- chase vs instances: decompositions are lossless on real data ------------ *)

let prop_bcnf_lossless_on_armstrong_instance =
  property 30 "BCNF decomposition re-joins exactly on Armstrong instances"
    seed_gen
    (fun seed ->
      let rng = Support.Rng.create seed in
      let letters = [| "A"; "B"; "C"; "D"; "E" |] in
      let universe = Dep.Attrs.of_list (Array.to_list letters) in
      let random_attrs k =
        let out = ref Dep.Attrs.empty in
        for _ = 1 to k do
          out := Dep.Attrs.add (Support.Rng.pick rng letters) !out
        done;
        !out
      in
      let fds =
        List.init 3 (fun _ -> Dep.Fd.make (random_attrs 2) (random_attrs 1))
        |> List.filter (fun fd -> not (Dep.Fd.is_trivial fd))
      in
      (* the Armstrong relation satisfies exactly the implied FDs, making
         it the harshest legal instance for the decomposition *)
      let instance = Dep.Armstrong.relation ~universe fds in
      let scheme = { Dep.Normal_forms.name = "r"; attrs = universe; fds } in
      let components = Dep.Normal_forms.bcnf_decompose scheme in
      let projections =
        List.map
          (fun s ->
            R.Relation.project instance
              (Dep.Attrs.elements s.Dep.Normal_forms.attrs))
          components
      in
      let rejoined =
        List.fold_left R.Relation.join (List.hd projections) (List.tl projections)
      in
      R.Relation.equal instance rejoined)

let prop_3nf_join_via_yannakakis =
  property 30 "3NF components re-join via Yannakakis too" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let letters = [| "A"; "B"; "C"; "D" |] in
      let universe = Dep.Attrs.of_list (Array.to_list letters) in
      let random_attrs k =
        let out = ref Dep.Attrs.empty in
        for _ = 1 to k do
          out := Dep.Attrs.add (Support.Rng.pick rng letters) !out
        done;
        !out
      in
      let fds =
        List.init 2 (fun _ -> Dep.Fd.make (random_attrs 1) (random_attrs 1))
        |> List.filter (fun fd -> not (Dep.Fd.is_trivial fd))
      in
      let instance = Dep.Armstrong.relation ~universe fds in
      let scheme = { Dep.Normal_forms.name = "r"; attrs = universe; fds } in
      let components = Dep.Normal_forms.synthesize_3nf scheme in
      let projections =
        List.map
          (fun s ->
            R.Relation.project instance
              (Dep.Attrs.elements s.Dep.Normal_forms.attrs))
          components
      in
      let fold_join =
        List.fold_left R.Relation.join (List.hd projections) (List.tl projections)
      in
      (* the components of a synthesis always admit a fold join; Yannakakis
         applies whenever their hypergraph is acyclic *)
      match Dep.Yannakakis.join projections with
      | yk -> R.Relation.equal fold_join yk && R.Relation.equal instance fold_join
      | exception Dep.Yannakakis.Cyclic -> R.Relation.equal instance fold_join)

(* --- optimizer vs incomplete information -------------------------------------- *)

let prop_certain_answers_invariant_under_pushdown =
  property 40 "certain answers invariant under selection push-down" seed_gen
    (fun seed ->
      let rng = Support.Rng.create seed in
      let dom = [ String "a"; String "b"; String "c" ] in
      let cc v = Incomplete.Table.Const v and nn i = Incomplete.Table.Null i in
      let table sch =
        Incomplete.Table.create sch
          (List.init 4 (fun _ ->
               Array.of_list
                 (List.map
                    (fun _ ->
                      if Support.Rng.int rng 4 = 0 then nn (Support.Rng.int rng 2)
                      else cc (Support.Rng.pick_list rng dom))
                    (R.Schema.attributes sch))))
      in
      let s1 = R.Schema.make [ ("a", TString); ("b", TString) ] in
      let s2 = R.Schema.make [ ("b", TString); ("c", TString) ] in
      let db = [ ("r", table s1); ("s", table s2) ] in
      let q =
        A.Select
          ( A.Cmp (A.Eq, A.Attr "a", A.Const (String "a")),
            A.Join (A.Rel "r", A.Rel "s") )
      in
      let catalog name = Incomplete.Table.schema (List.assoc name db) in
      let pushed = R.Optimizer.push_selections catalog q in
      R.Relation.equal
        (Incomplete.Naive_eval.certain_answers db q)
        (Incomplete.Naive_eval.certain_answers db pushed))

(* --- indexes vs evaluator -------------------------------------------------------- *)

let prop_index_selection_equals_scan =
  property 40 "B+tree range selection = predicate scan" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let schema = R.Schema.make [ ("k", TInt); ("v", TInt) ] in
      let rel = R.Generator.random_relation rng schema ~size:40 ~domain:30 in
      let index = Access.Btree.index_relation rel "k" in
      let lo = Support.Rng.int rng 30 in
      let hi = lo + Support.Rng.int rng 10 in
      let via_index =
        Access.Btree.select_range index rel ~lo:(Int lo) ~hi:(Int hi)
      in
      let via_scan =
        R.Relation.select
          (fun tup ->
            match tup.(0) with Int k -> k >= lo && k <= hi | _ -> false)
          rel
      in
      R.Relation.equal via_index via_scan)

(* --- nested relations vs flat algebra --------------------------------------------- *)

let prop_nest_preserves_projection =
  property 30 "projections commute with nest/unnest" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let schema = R.Schema.make [ ("a", TInt); ("b", TInt) ] in
      let rel = R.Generator.random_relation rng schema ~size:10 ~domain:4 in
      let nested = Nested.nest (Nested.of_flat rel) ~into:"g" [ "b" ] in
      (* the atomic column of the nested relation = π_a of the original *)
      let from_nested =
        List.map
          (fun tup ->
            match tup.(0) with Nested.V v -> [ v ] | Nested.R _ -> assert false)
          (Nested.tuples nested)
      in
      let direct =
        List.map Array.to_list (R.Relation.to_list (R.Relation.project rel [ "a" ]))
      in
      List.sort Stdlib.compare from_nested = List.sort Stdlib.compare direct)

let suite =
  [
    Alcotest.test_case "SPJ three ways (fixed)" `Quick test_fixed_spj_three_ways;
    prop_algebra_equals_datalog_on_spj;
    prop_bcnf_lossless_on_armstrong_instance;
    prop_3nf_join_via_yannakakis;
    prop_certain_answers_invariant_under_pushdown;
    prop_index_selection_equals_scan;
    prop_nest_preserves_projection;
  ]
