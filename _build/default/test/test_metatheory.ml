(* Tests for the metatheory core: the Kuhn stage machine (Fig. 1), the
   research-graph model and its crisis diagnostics (Fig. 2), the PODS
   dataset and its time-series signatures (Fig. 3), the Volterra fit, and
   Kitcher's diversity model. *)

module M = Metatheory
module Rng = Support.Rng

(* --- kuhn ------------------------------------------------------------------ *)

let test_kuhn_transitions_shape () =
  Alcotest.(check bool) "immature -> normal" true
    (M.Kuhn.can_transition M.Kuhn.Immature M.Kuhn.Normal);
  Alcotest.(check bool) "revolution -> normal" true
    (M.Kuhn.can_transition M.Kuhn.Revolution M.Kuhn.Normal);
  Alcotest.(check bool) "no normal -> revolution shortcut" false
    (M.Kuhn.can_transition M.Kuhn.Normal M.Kuhn.Revolution);
  Alcotest.(check bool) "no revolution -> crisis" false
    (M.Kuhn.can_transition M.Kuhn.Revolution M.Kuhn.Crisis)

let test_kuhn_simulation_reaches_normal () =
  let rng = Rng.create 1 in
  let traj = M.Kuhn.simulate rng M.Kuhn.default_params ~steps:500 in
  Alcotest.(check int) "500 states" 500 (List.length traj);
  Alcotest.(check bool) "normal science happens" true
    (List.exists (fun s -> s.M.Kuhn.stage = M.Kuhn.Normal) traj)

let test_kuhn_revolutions_occur () =
  let rng = Rng.create 2 in
  let traj = M.Kuhn.simulate rng M.Kuhn.default_params ~steps:3000 in
  let summary = M.Kuhn.summarize traj in
  Alcotest.(check bool) "at least one revolution" true
    (summary.M.Kuhn.revolution_count >= 1);
  Alcotest.(check bool) "crises have positive length" true
    (summary.M.Kuhn.mean_crisis_length > 0.)

let test_kuhn_shares_sum_to_one () =
  let rng = Rng.create 3 in
  let traj = M.Kuhn.simulate rng M.Kuhn.default_params ~steps:1000 in
  let summary = M.Kuhn.summarize traj in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. summary.M.Kuhn.share in
  Alcotest.(check (float 1e-9)) "shares" 1.0 total

let test_kuhn_no_anomalies_no_crisis () =
  let rng = Rng.create 4 in
  let params = { M.Kuhn.default_params with anomaly_rate = 0. } in
  let traj = M.Kuhn.simulate rng params ~steps:1000 in
  Alcotest.(check bool) "eternal normal science" true
    (List.for_all (fun s -> s.M.Kuhn.stage <> M.Kuhn.Crisis) traj)

let test_kuhn_diagram_mentions_stages () =
  let d = M.Kuhn.diagram () in
  List.iter
    (fun word ->
      Alcotest.(check bool) word true
        (Str_contains.contains d word))
    [ "normal science"; "crisis"; "revolution" ]

(* --- research graph ------------------------------------------------------------ *)

let healthy_params = { M.Research_graph.units = 60; mean_degree = 4.0; crisis = 0.0 }
let crisis_params = { healthy_params with M.Research_graph.crisis = 40.0 }

let test_graph_generation_degree () =
  let rng = Rng.create 5 in
  let degs =
    List.init 30 (fun _ ->
        M.Research_graph.mean_degree (M.Research_graph.generate rng healthy_params))
  in
  let avg = List.fold_left ( +. ) 0. degs /. 30. in
  Alcotest.(check bool)
    (Printf.sprintf "mean degree near target (got %.2f)" avg)
    true
    (avg > 3.2 && avg < 4.8)

let test_graph_crisis_preserves_degree () =
  let rng = Rng.create 6 in
  let degs =
    List.init 30 (fun _ ->
        M.Research_graph.mean_degree (M.Research_graph.generate rng crisis_params))
  in
  let avg = List.fold_left ( +. ) 0. degs /. 30. in
  (* "the differences can escape detection for a long time ... the average
     degree is the same as before" *)
  Alcotest.(check bool)
    (Printf.sprintf "crisis keeps mean degree (got %.2f)" avg)
    true
    (avg > 3.2 && avg < 4.8)

let test_graph_kinds () =
  Alcotest.(check bool) "theory" true (M.Research_graph.kind_of 0.9 = M.Research_graph.Theory);
  Alcotest.(check bool) "practice" true
    (M.Research_graph.kind_of 0.1 = M.Research_graph.Practice);
  Alcotest.(check bool) "middle" true (M.Research_graph.kind_of 0.5 = M.Research_graph.Middle)

let test_metrics_on_known_graph () =
  (* a path 0-1-2 plus an isolated vertex *)
  let g =
    {
      M.Research_graph.theoreticity = [| 0.0; 0.5; 1.0; 1.0 |];
      adjacency = [| [ 1 ]; [ 0; 2 ]; [ 1 ]; [] |];
    }
  in
  Alcotest.(check int) "two components" 2 (List.length (M.Graph_metrics.components g));
  Alcotest.(check (float 1e-9)) "giant fraction" 0.75 (M.Graph_metrics.giant_fraction g);
  Alcotest.(check int) "diameter" 2 (M.Graph_metrics.diameter_of_giant g);
  (* theory nodes: 2 (connected, distance 2 to practice node 0) and 3
     (isolated): unreachable *)
  Alcotest.(check bool) "unreachable theory" true
    (M.Graph_metrics.theory_practice_distance g = None);
  Alcotest.(check (float 1e-9)) "half of theory stranded" 0.5
    (M.Graph_metrics.unreachable_theory_fraction g)

let test_crisis_score_separates () =
  (* the headline claim of Figure 2: same local degree, different global
     connectivity; the crisis score must separate the two regimes *)
  let rng = Rng.create 7 in
  let avg_score params =
    let scores =
      List.init 25 (fun _ ->
          let g = M.Research_graph.generate rng params in
          (M.Graph_metrics.report g).M.Graph_metrics.crisis_score)
    in
    List.fold_left ( +. ) 0. scores /. 25.
  in
  let healthy = avg_score healthy_params in
  let crisis = avg_score crisis_params in
  Alcotest.(check bool)
    (Printf.sprintf "crisis scores higher (%.2f vs %.2f)" healthy crisis)
    true
    (crisis > healthy +. 0.5)

let test_theory_practice_distance_grows () =
  let rng = Rng.create 8 in
  let avg_distance params =
    let ds =
      List.init 25 (fun _ ->
          let g = M.Research_graph.generate rng params in
          match M.Graph_metrics.theory_practice_distance g with
          | Some d -> d
          | None -> 12. (* stranded counts as very far *))
    in
    List.fold_left ( +. ) 0. ds /. 25.
  in
  Alcotest.(check bool) "crisis lengthens theory->practice paths" true
    (avg_distance crisis_params > avg_distance healthy_params +. 0.5)

(* --- pods data ------------------------------------------------------------------- *)

let test_years_shape () =
  Alcotest.(check int) "fourteen years" 14 (Array.length M.Pods_data.years);
  Alcotest.(check int) "1982 start" 1982 M.Pods_data.years.(0);
  Alcotest.(check int) "1995 end" 1995 M.Pods_data.years.(13)

let test_printed_series_verbatim () =
  (* the one series the paper prints: 1986..1992 *)
  Alcotest.(check (array (float 1e-9)))
    "10,14,9,18,13,16,14"
    [| 10.; 14.; 9.; 18.; 13.; 16.; 14. |]
    M.Pods_data.printed_logic_series;
  let logic = M.Pods_data.raw_series M.Pods_data.Logic_databases in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-9)) "embedded verbatim" v logic.(i + 4))
    M.Pods_data.printed_logic_series

let test_series_lengths () =
  List.iter
    (fun (area, series) ->
      Alcotest.(check int)
        (M.Pods_data.area_to_string area)
        14 (Array.length series))
    M.Pods_data.all_series

let test_narrative_shapes () =
  let s = M.Pods_data.raw_series in
  Alcotest.(check bool) "relational theory falls" true
    (M.Timeseries.trend (s M.Pods_data.Relational_theory) = `Falling);
  Alcotest.(check bool) "transaction processing falls" true
    (M.Timeseries.trend (s M.Pods_data.Transaction_processing) = `Falling);
  Alcotest.(check bool) "complex objects rise" true
    (M.Timeseries.trend (s M.Pods_data.Complex_objects) = `Rising);
  Alcotest.(check bool) "data structures flat" true
    (M.Timeseries.trend (s M.Pods_data.Data_structures) = `Flat);
  (* logic databases: explosive entry (1986 block of ten) then waning *)
  let logic = s M.Pods_data.Logic_databases in
  Alcotest.(check (float 1e-9)) "block of ten in 1986" 10. logic.(4);
  Alcotest.(check bool) "wanes at the end" true (logic.(13) < logic.(7))

(* --- timeseries --------------------------------------------------------------------- *)

let test_two_year_average_smooths () =
  let logic = M.Pods_data.raw_series M.Pods_data.Logic_databases in
  let smoothed = M.Timeseries.two_year_average logic in
  (* smoothing must reduce the variance of first differences ("too jerky
     to display") *)
  let jerk xs = Support.Stats.stddev (Support.Stats.diff xs) in
  Alcotest.(check bool) "less jerky" true (jerk smoothed < jerk logic)

let test_committee_harmonic_detected () =
  (* the two-year harmonic is strong in the raw printed block and weak in
     its two-year average *)
  let raw = M.Pods_data.printed_logic_series in
  let smoothed = M.Timeseries.two_year_average raw in
  Alcotest.(check bool) "raw harmonic present" true
    (M.Timeseries.committee_harmonic raw > 0.1);
  Alcotest.(check bool) "smoothing kills it" true
    (M.Timeseries.committee_harmonic smoothed
    < M.Timeseries.committee_harmonic raw /. 2.);
  Alcotest.(check bool) "negative lag-1 autocorrelation" true
    (M.Timeseries.lag1_autocorrelation (Support.Stats.diff raw) < 0.)

let test_peak_year_and_succession () =
  let years = M.Pods_data.years in
  Alcotest.(check int) "logic peaks 1989" 1989
    (M.Timeseries.peak_year ~years (M.Pods_data.raw_series M.Pods_data.Logic_databases));
  let order =
    M.Timeseries.succession_order ~years
      (List.map
         (fun (a, s) -> (M.Pods_data.area_to_string a, s))
         M.Pods_data.all_series)
  in
  let position name =
    let rec go i = function
      | [] -> -1
      | (n, _) :: rest -> if n = name then i else go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "relational before logic" true
    (position "relational theory" < position "logic databases");
  Alcotest.(check bool) "logic before complex objects" true
    (position "logic databases" < position "complex objects")

let test_crossovers () =
  let years = M.Pods_data.years in
  let rel = M.Pods_data.raw_series M.Pods_data.Relational_theory in
  let logic = M.Pods_data.raw_series M.Pods_data.Logic_databases in
  let flips = M.Timeseries.crossovers ~years logic rel in
  (* logic databases overtake relational theory in the middle 80s *)
  Alcotest.(check bool) "logic overtakes relational" true
    (List.exists
       (fun (y, dir) -> dir = `First_overtakes && y >= 1985 && y <= 1988)
       flips)

(* --- volterra ------------------------------------------------------------------------ *)

let test_predator_prey_oscillates () =
  let p =
    {
      M.Volterra.prey_growth = 1.0;
      predation = 0.5;
      conversion = 0.3;
      predator_death = 0.6;
    }
  in
  let traj = M.Volterra.integrate_predator_prey p ~x0:2. ~y0:1. ~t1:40. ~steps:4000 in
  let prey = Array.map (fun (_, y) -> y.(0)) traj in
  (* prey population must rise and fall repeatedly *)
  let rises = ref 0 and falls = ref 0 in
  Array.iteri
    (fun i x ->
      if i > 0 then
        if x > prey.(i - 1) then incr rises else if x < prey.(i - 1) then incr falls)
    prey;
  Alcotest.(check bool) "oscillation" true (!rises > 100 && !falls > 100);
  Alcotest.(check bool) "populations stay positive" true
    (Array.for_all (fun (_, y) -> y.(0) > 0. && y.(1) > 0.) traj)

let test_competition_logistic_limit () =
  (* with no cross pressure each species approaches its capacity *)
  let c =
    {
      M.Volterra.growth = [| 0.8; 0.6 |];
      capacity = [| 10.; 5. |];
      pressure = [| [| 1.; 0. |]; [| 0.; 1. |] |];
    }
  in
  let traj =
    Support.Ode.integrate (M.Volterra.competition_system c) ~y0:[| 0.5; 0.5 |]
      ~t0:0. ~t1:60. ~steps:2000
  in
  let _, final = traj.(Array.length traj - 1) in
  Alcotest.(check bool) "first near capacity" true (Float.abs (final.(0) -. 10.) < 0.2);
  Alcotest.(check bool) "second near capacity" true (Float.abs (final.(1) -. 5.) < 0.2)

let test_fit_beats_flat_baseline () =
  let prey = M.Pods_data.raw_series M.Pods_data.Relational_theory in
  let predator = M.Pods_data.raw_series M.Pods_data.Logic_databases in
  let fit = M.Volterra.fit_predator_prey ~prey ~predator in
  (* the flat baseline predicts each series' mean everywhere *)
  let flat xs =
    let m = Support.Stats.mean xs in
    Support.Stats.sum_squared_error xs (Array.map (fun _ -> m) xs)
  in
  let baseline = flat prey +. flat predator in
  Alcotest.(check bool)
    (Printf.sprintf "fit sse %.1f < flat sse %.1f" fit.M.Volterra.sse baseline)
    true
    (fit.M.Volterra.sse < baseline)

(* --- kitcher ------------------------------------------------------------------------- *)

let mainstream = { M.Kitcher.name = "mainstream"; potential = 0.9; difficulty = 8. }
let maverick = { M.Kitcher.name = "maverick"; potential = 0.5; difficulty = 3. }

let test_success_probability_shape () =
  Alcotest.(check (float 1e-9)) "zero workers" 0.
    (M.Kitcher.success_probability mainstream 0.);
  Alcotest.(check bool) "monotone" true
    (M.Kitcher.success_probability mainstream 10.
    < M.Kitcher.success_probability mainstream 20.);
  Alcotest.(check bool) "bounded by potential" true
    (M.Kitcher.success_probability mainstream 1e6 < 0.9)

let test_equilibrium_is_mixed () =
  let eq = M.Kitcher.equilibrium mainstream maverick ~total:100. in
  (* diversity is inevitable: both programs keep researchers even though
     the mainstream is strictly more promising *)
  Alcotest.(check bool)
    (Printf.sprintf "mixed equilibrium (n1 = %.1f)" eq.M.Kitcher.allocation)
    true
    (eq.M.Kitcher.allocation > 5. && eq.M.Kitcher.allocation < 95.)

let test_equilibrium_near_optimum () =
  let eq = M.Kitcher.equilibrium mainstream maverick ~total:100. in
  let opt = M.Kitcher.optimal_allocation mainstream maverick ~total:100. in
  let v_eq = M.Kitcher.community_success mainstream maverick eq in
  let v_opt = M.Kitcher.community_success mainstream maverick opt in
  (* diversity is beneficial: the invisible hand loses little *)
  Alcotest.(check bool)
    (Printf.sprintf "within 10%% of optimum (%.3f vs %.3f)" v_eq v_opt)
    true
    (v_eq > 0.9 *. v_opt);
  (* and the optimum itself is mixed *)
  Alcotest.(check bool) "optimum mixed" true
    (opt.M.Kitcher.allocation > 1. && opt.M.Kitcher.allocation < 99.)

let test_monoculture_is_suboptimal () =
  let all_in = { M.Kitcher.allocation = 100.; total = 100. } in
  let opt = M.Kitcher.optimal_allocation mainstream maverick ~total:100. in
  Alcotest.(check bool) "spreading beats monoculture" true
    (M.Kitcher.community_success mainstream maverick opt
    > M.Kitcher.community_success mainstream maverick all_in)

(* --- property tests --------------------------------------------------------------------- *)

let property count name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let prop_kuhn_transitions_respected =
  property 50 "every simulated stage change is an arrow of Fig. 1" seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let traj = M.Kuhn.simulate rng M.Kuhn.default_params ~steps:300 in
      let rec check prev = function
        | [] -> true
        | s :: rest ->
            M.Kuhn.can_transition prev.M.Kuhn.stage s.M.Kuhn.stage
            && check s rest
      in
      check M.Kuhn.initial traj)

let prop_graph_metrics_sane =
  property 30 "graph metrics stay in range" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let crisis = Support.Rng.float rng 12. in
      let params = { M.Research_graph.units = 40; mean_degree = 3.5; crisis } in
      let g = M.Research_graph.generate rng params in
      let r = M.Graph_metrics.report g in
      r.M.Graph_metrics.giant >= 0.
      && r.M.Graph_metrics.giant <= 1.
      && r.M.Graph_metrics.diameter >= 0
      && r.M.Graph_metrics.crisis_score >= 0.
      && r.M.Graph_metrics.unreachable_theory >= 0.
      && r.M.Graph_metrics.unreachable_theory <= 1.)

let prop_components_partition =
  property 30 "components partition the units" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let params = { M.Research_graph.units = 30; mean_degree = 2.0; crisis = 5.0 } in
      let g = M.Research_graph.generate rng params in
      let comps = M.Graph_metrics.components g in
      let all = List.concat comps |> List.sort compare in
      all = List.init 30 Fun.id)

let prop_kitcher_equilibrium_stable =
  property 30 "credit dynamics settle (no oscillation at the end)" seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let p1 =
        {
          M.Kitcher.name = "p1";
          potential = 0.2 +. Support.Rng.float rng 0.8;
          difficulty = 1. +. Support.Rng.float rng 10.;
        }
      in
      let p2 =
        {
          M.Kitcher.name = "p2";
          potential = 0.2 +. Support.Rng.float rng 0.8;
          difficulty = 1. +. Support.Rng.float rng 10.;
        }
      in
      let eq = M.Kitcher.equilibrium p1 p2 ~total:50. in
      let eq' = M.Kitcher.credit_dynamics_step p1 p2 ~dt:0.05 eq in
      Float.abs (eq'.M.Kitcher.allocation -. eq.M.Kitcher.allocation) < 0.5)

let suite =
  [
    Alcotest.test_case "kuhn transitions" `Quick test_kuhn_transitions_shape;
    Alcotest.test_case "kuhn reaches normal science" `Quick
      test_kuhn_simulation_reaches_normal;
    Alcotest.test_case "kuhn revolutions occur" `Quick test_kuhn_revolutions_occur;
    Alcotest.test_case "kuhn shares sum to one" `Quick test_kuhn_shares_sum_to_one;
    Alcotest.test_case "kuhn no anomalies no crisis" `Quick
      test_kuhn_no_anomalies_no_crisis;
    Alcotest.test_case "kuhn diagram" `Quick test_kuhn_diagram_mentions_stages;
    Alcotest.test_case "graph degree target" `Quick test_graph_generation_degree;
    Alcotest.test_case "crisis preserves degree" `Quick test_graph_crisis_preserves_degree;
    Alcotest.test_case "graph kinds" `Quick test_graph_kinds;
    Alcotest.test_case "metrics on known graph" `Quick test_metrics_on_known_graph;
    Alcotest.test_case "crisis score separates" `Quick test_crisis_score_separates;
    Alcotest.test_case "theory-practice distance grows" `Quick
      test_theory_practice_distance_grows;
    Alcotest.test_case "years shape" `Quick test_years_shape;
    Alcotest.test_case "printed series verbatim" `Quick test_printed_series_verbatim;
    Alcotest.test_case "series lengths" `Quick test_series_lengths;
    Alcotest.test_case "narrative shapes" `Quick test_narrative_shapes;
    Alcotest.test_case "two-year average smooths" `Quick test_two_year_average_smooths;
    Alcotest.test_case "committee harmonic" `Quick test_committee_harmonic_detected;
    Alcotest.test_case "peak year and succession" `Quick test_peak_year_and_succession;
    Alcotest.test_case "crossovers" `Quick test_crossovers;
    Alcotest.test_case "predator-prey oscillates" `Quick test_predator_prey_oscillates;
    Alcotest.test_case "competition logistic limit" `Quick test_competition_logistic_limit;
    Alcotest.test_case "volterra fit beats flat" `Quick test_fit_beats_flat_baseline;
    Alcotest.test_case "kitcher success shape" `Quick test_success_probability_shape;
    Alcotest.test_case "kitcher mixed equilibrium" `Quick test_equilibrium_is_mixed;
    Alcotest.test_case "kitcher near optimum" `Quick test_equilibrium_near_optimum;
    Alcotest.test_case "kitcher monoculture suboptimal" `Quick
      test_monoculture_is_suboptimal;
    prop_kuhn_transitions_respected;
    prop_graph_metrics_sane;
    prop_components_partition;
    prop_kitcher_equilibrium_stable;
  ]
