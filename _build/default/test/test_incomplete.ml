(* Tests for incomplete information: tables with labelled nulls, naive
   evaluation, and the Imieliński–Lipski certain-answer theorem (positive
   queries: naive = brute force; negation: naive would be wrong). *)

module I = Incomplete
module R = Relational
module A = R.Algebra
open R.Value

let schema = R.Schema.make
let cc v = I.Table.Const v
let nn i = I.Table.Null i

let emp_schema = schema [ ("name", TString); ("dept", TString) ]

(* classic: two employees, one with unknown department *)
let emp =
  I.Table.create emp_schema
    [
      [| cc (String "ada"); cc (String "cs") |];
      [| cc (String "bob"); nn 1 |];
    ]

let dept_schema = schema [ ("dept", TString); ("floor", TInt) ]

let dept =
  I.Table.create dept_schema
    [
      [| cc (String "cs"); cc (Int 3) |];
      [| cc (String "math"); cc (Int 2) |];
    ]

let db = [ ("emp", emp); ("dept", dept) ]

let domain = [ String "cs"; String "math"; String "phil" ]

let relation_testable = Fixtures.relation_testable

(* --- tables -------------------------------------------------------------- *)

let test_table_checks () =
  Alcotest.(check bool) "wrong arity" true
    (match I.Table.create emp_schema [ [| cc (String "x") |] ] with
    | _ -> false
    | exception I.Table.Table_error _ -> true);
  Alcotest.(check bool) "wrong type" true
    (match I.Table.create emp_schema [ [| cc (Int 3); cc (String "y") |] ] with
    | _ -> false
    | exception I.Table.Table_error _ -> true)

let test_nulls_and_codd () =
  Alcotest.(check (list int)) "labels" [ 1 ] (I.Table.nulls emp);
  Alcotest.(check bool) "codd table" true (I.Table.is_codd_table emp);
  let repeated =
    I.Table.create emp_schema
      [ [| nn 1; nn 1 |]; [| cc (String "x"); cc (String "y") |] ]
  in
  Alcotest.(check bool) "repeated label" false (I.Table.is_codd_table repeated)

let test_valuate () =
  let rel = I.Table.valuate emp (fun _ -> String "math") in
  Alcotest.(check int) "two tuples" 2 (R.Relation.cardinality rel);
  Alcotest.(check bool) "bad type rejected" true
    (match I.Table.valuate emp (fun _ -> Int 7) with
    | _ -> false
    | exception I.Table.Table_error _ -> true)

let test_valuations_count () =
  Alcotest.(check int) "3 valuations of one null" 3
    (List.length (I.Table.valuations emp ~domain))

let test_roundtrip_relation () =
  let t = I.Table.of_relation Fixtures.students in
  Alcotest.(check bool) "no nulls" true (I.Table.nulls t = []);
  match I.Table.to_relation t with
  | Some rel -> Alcotest.check relation_testable "roundtrip" Fixtures.students rel
  | None -> Alcotest.fail "null-free table should convert"

(* --- naive evaluation ------------------------------------------------------ *)

let test_positive_fragment () =
  Alcotest.(check bool) "join positive" true
    (I.Naive_eval.is_positive (A.Join (A.Rel "emp", A.Rel "dept")));
  Alcotest.(check bool) "difference not positive" false
    (I.Naive_eval.is_positive (A.Diff (A.Rel "emp", A.Rel "emp")));
  Alcotest.(check bool) "inequality not positive" false
    (I.Naive_eval.is_positive
       (A.Select (A.Cmp (A.Ne, A.Attr "name", A.Const (String "x")), A.Rel "emp")))

let test_naive_join () =
  let t = I.Naive_eval.eval db (A.Join (A.Rel "emp", A.Rel "dept")) in
  (* ada joins with cs; bob's null does not syntactically match any dept *)
  Alcotest.(check int) "one row" 1 (List.length (I.Table.rows t))

let test_certain_answers_positive () =
  let q = A.Project ([ "name" ], A.Join (A.Rel "emp", A.Rel "dept")) in
  let naive = I.Naive_eval.certain_answers db q in
  let brute = I.Naive_eval.certain_answers_bruteforce db q ~domain in
  Alcotest.check relation_testable "IL theorem" brute naive;
  Alcotest.(check int) "only ada is certain" 1 (R.Relation.cardinality naive)

let test_certain_answers_projection_with_null () =
  (* asking for names is certain even for bob *)
  let q = A.Project ([ "name" ], A.Rel "emp") in
  let naive = I.Naive_eval.certain_answers db q in
  let brute = I.Naive_eval.certain_answers_bruteforce db q ~domain in
  Alcotest.check relation_testable "certain names" brute naive;
  Alcotest.(check int) "both names" 2 (R.Relation.cardinality naive)

let test_naive_fails_for_negation () =
  (* employees in no known department: naive evaluation over-answers,
     the brute force shows bob is NOT a certain answer (his null could be
     cs) *)
  let q =
    A.Diff
      ( A.Project ([ "dept" ], A.Rel "emp"),
        A.Project ([ "dept" ], A.Rel "dept") )
  in
  Alcotest.(check bool) "naive refuses negation" true
    (match I.Naive_eval.eval db q with
    | _ -> false
    | exception I.Naive_eval.Not_positive _ -> true);
  (* ground truth exists anyway *)
  let brute = I.Naive_eval.certain_answers_bruteforce db q ~domain in
  Alcotest.(check int) "no certain answer" 0 (R.Relation.cardinality brute)

let test_possible_answers () =
  let q = A.Project ([ "name" ], A.Join (A.Rel "emp", A.Rel "dept")) in
  let possible = I.Naive_eval.possible_answers_bruteforce db q ~domain in
  (* bob possibly works in cs or math, so he appears *)
  Alcotest.(check int) "both possible" 2 (R.Relation.cardinality possible)

let test_certain_subset_possible () =
  let q = A.Project ([ "name" ], A.Join (A.Rel "emp", A.Rel "dept")) in
  let certain = I.Naive_eval.certain_answers_bruteforce db q ~domain in
  let possible = I.Naive_eval.possible_answers_bruteforce db q ~domain in
  Alcotest.(check bool) "certain ⊆ possible" true
    (R.Relation.subset certain possible)

let test_union_with_nulls () =
  let q =
    A.Union
      ( A.Project ([ "dept" ], A.Rel "emp"),
        A.Project ([ "dept" ], A.Rel "dept") )
  in
  let naive = I.Naive_eval.certain_answers db q in
  let brute = I.Naive_eval.certain_answers_bruteforce db q ~domain in
  Alcotest.check relation_testable "union certain" brute naive

(* --- joining nulls ---------------------------------------------------------- *)

let test_naive_tables_join_on_shared_null () =
  (* the same labelled null joins with itself — naive tables are stronger
     than Codd tables exactly here *)
  let r = I.Table.create (schema [ ("a", TString); ("b", TString) ])
      [ [| cc (String "k"); nn 7 |] ] in
  let s = I.Table.create (schema [ ("b", TString); ("c", TString) ])
      [ [| nn 7; cc (String "v") |] ] in
  let db = [ ("r", r); ("s", s) ] in
  let q = A.Project ([ "a"; "c" ], A.Join (A.Rel "r", A.Rel "s")) in
  let naive = I.Naive_eval.certain_answers db q in
  let brute = I.Naive_eval.certain_answers_bruteforce db q ~domain in
  Alcotest.check relation_testable "shared null certain join" brute naive;
  Alcotest.(check int) "joins" 1 (R.Relation.cardinality naive)

(* --- property test ------------------------------------------------------------ *)

let property count name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let prop_il_theorem =
  property 40 "naive certain answers = brute force (positive queries)"
    seed_gen
    (fun seed ->
      let rng = Support.Rng.create seed in
      (* small random tables over a 3-value string domain with 2 nulls *)
      let dom = [ String "a"; String "b"; String "c" ] in
      let random_table sch =
        let rows =
          List.init 3 (fun _ ->
              Array.of_list
                (List.map
                   (fun _ ->
                     if Support.Rng.int rng 4 = 0 then nn (Support.Rng.int rng 2)
                     else cc (Support.Rng.pick_list rng dom))
                   (R.Schema.attributes sch)))
        in
        I.Table.create sch rows
      in
      let s1 = schema [ ("a", TString); ("b", TString) ] in
      let s2 = schema [ ("b", TString); ("c", TString) ] in
      let db = [ ("r", random_table s1); ("s", random_table s2) ] in
      (* the brute-force domain needs a fresh constant per null, or the
         closed domain saturates and over-approximates certainty *)
      let dom = dom @ [ String "u0"; String "u1" ] in
      let queries =
        [
          A.Project ([ "a" ], A.Rel "r");
          A.Join (A.Rel "r", A.Rel "s");
          A.Project ([ "a"; "c" ], A.Join (A.Rel "r", A.Rel "s"));
          A.Union (A.Project ([ "b" ], A.Rel "r"), A.Project ([ "b" ], A.Rel "s"));
          A.Select (A.Cmp (A.Eq, A.Attr "a", A.Const (String "a")), A.Rel "r");
        ]
      in
      List.for_all
        (fun q ->
          R.Relation.equal
            (I.Naive_eval.certain_answers db q)
            (I.Naive_eval.certain_answers_bruteforce db q ~domain:dom))
        queries)

let suite =
  [
    Alcotest.test_case "table checks" `Quick test_table_checks;
    Alcotest.test_case "nulls and codd" `Quick test_nulls_and_codd;
    Alcotest.test_case "valuate" `Quick test_valuate;
    Alcotest.test_case "valuations count" `Quick test_valuations_count;
    Alcotest.test_case "relation roundtrip" `Quick test_roundtrip_relation;
    Alcotest.test_case "positive fragment" `Quick test_positive_fragment;
    Alcotest.test_case "naive join" `Quick test_naive_join;
    Alcotest.test_case "certain answers (IL)" `Quick test_certain_answers_positive;
    Alcotest.test_case "certain projection with null" `Quick
      test_certain_answers_projection_with_null;
    Alcotest.test_case "negation breaks naive" `Quick test_naive_fails_for_negation;
    Alcotest.test_case "possible answers" `Quick test_possible_answers;
    Alcotest.test_case "certain subset possible" `Quick test_certain_subset_possible;
    Alcotest.test_case "union with nulls" `Quick test_union_with_nulls;
    Alcotest.test_case "shared null joins" `Quick test_naive_tables_join_on_shared_null;
    prop_il_theorem;
  ]
