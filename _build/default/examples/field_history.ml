(* The metatheory itself, end to end: a synthetic scientific field lives
   through Kuhn's stages while its research graph fragments and heals,
   program committees overcorrect, and two research programs split the
   community à la Kitcher.

   Run with: dune exec examples/field_history.exe *)

module M = Metatheory

let () =
  print_endline "== Kuhn's stages (Figure 1) ==";
  print_string (M.Kuhn.diagram ());

  let rng = Support.Rng.create 1995 in
  let snaps = M.Evolution.simulate rng M.Evolution.default_params ~steps:300 in
  print_endline "\n== three centuries of a synthetic field ==";
  Printf.printf "crisis score trajectory: %s\n"
    (Support.Table.sparkline
       (Array.of_list (List.map (fun s -> s.M.Evolution.crisis_score) snaps)));
  let revolutions =
    List.length
      (List.filter (fun s -> s.M.Evolution.stage = M.Kuhn.Revolution) snaps)
  in
  Printf.printf "revolutions lived through: %d\n" revolutions;
  Printf.printf "stage/score correlation: %.2f\n"
    (M.Evolution.correlation_stage_score snaps);

  print_endline "\n== the PODS retrospective (Figure 3) ==";
  let years = M.Pods_data.years in
  List.iter
    (fun (area, series) ->
      Printf.printf "%-22s %s  (peak %d)\n"
        (M.Pods_data.area_to_string area)
        (Support.Table.sparkline (M.Timeseries.two_year_average series))
        (M.Timeseries.peak_year ~years series))
    M.Pods_data.all_series;
  Printf.printf "two-year harmonic of the raw logic-db series: %.3f\n"
    (M.Timeseries.committee_harmonic M.Pods_data.printed_logic_series);

  print_endline "\n== why the harmonic? committees with one-year memory ==";
  let interest = M.Committee.hump ~years:14 ~peak:16. in
  List.iter
    (fun gamma ->
      let series =
        M.Committee.simulate
          { M.Committee.overcorrection = gamma; noise = 0. }
          ~interest
      in
      Printf.printf "gamma %.1f: %s  harmonic %.3f\n" gamma
        (Support.Table.sparkline series)
        (Support.Stats.harmonic_strength series 2))
    [ 0.0; 1.0; 1.8 ];

  print_endline "\n== Kitcher: why mavericks persist (footnote 11) ==";
  let mainstream = { M.Kitcher.name = "mainstream"; potential = 0.9; difficulty = 8. } in
  let maverick = { M.Kitcher.name = "maverick"; potential = 0.5; difficulty = 3. } in
  let eq = M.Kitcher.equilibrium mainstream maverick ~total:100. in
  let opt = M.Kitcher.optimal_allocation mainstream maverick ~total:100. in
  Printf.printf
    "credit-chasing equilibrium: %.0f researchers on the mainstream, %.0f on \
     the maverick\n"
    eq.M.Kitcher.allocation
    (100. -. eq.M.Kitcher.allocation);
  Printf.printf "community optimum: %.0f / %.0f — the invisible hand is %.0f%% efficient\n"
    opt.M.Kitcher.allocation
    (100. -. opt.M.Kitcher.allocation)
    (100.
    *. M.Kitcher.community_success mainstream maverick eq
    /. M.Kitcher.community_success mainstream maverick opt)
