(* The logic-databases tradition at work: a flight-routes program with
   stratified negation, evaluated three ways, plus conjunctive-query
   containment and minimization.

   Run with: dune exec examples/recursive_queries.exe *)

module D = Datalog
module Ts = D.Facts.Tuple_set

let program_text =
  {|
    % direct flights
    flight(sfo, jfk). flight(jfk, lhr). flight(lhr, ath).
    flight(sfo, ord). flight(ord, jfk). flight(ath, cai).
    flight(syd, sfo).

    % reachable with any number of hops
    reach(X, Y) :- flight(X, Y).
    reach(X, Y) :- flight(X, Z), reach(Z, Y).

    % airports
    airport(X) :- flight(X, Y).
    airport(Y) :- flight(X, Y).

    % city pairs with no route at all (stratified negation)
    noroute(X, Y) :- airport(X), airport(Y), not reach(X, Y).
  |}

let () =
  let program = D.Parser.parse_program program_text in
  Printf.printf "program:\n%s\n\n" (D.Ast.program_to_string program);
  D.Checks.check_safety program;
  let strata = D.Checks.stratify program in
  Printf.printf "stratification: %d strata; stratum of each predicate: %s\n\n"
    (List.length strata)
    (String.concat ", "
       (List.map
          (fun (p, s) -> Printf.sprintf "%s:%d" p s)
          (D.Checks.strata_of_predicates program)));

  let result, stats = D.Seminaive.eval_with_stats program D.Facts.empty in
  Printf.printf "semi-naive evaluation: %d iterations, %d derivations\n"
    stats.D.Naive.iterations stats.D.Naive.derivations;
  Printf.printf "reach facts: %d, noroute facts: %d\n\n"
    (D.Facts.cardinality result "reach")
    (D.Facts.cardinality result "noroute");

  let q = D.Parser.parse_query "reach(sfo, X)" in
  Printf.printf "where can you get from SFO?  ?- %s\n" (D.Ast.atom_to_string q);
  Ts.iter
    (fun tup ->
      Printf.printf "  %s\n" (Relational.Value.to_string tup.(1)))
    (D.Naive.filter_by_query (D.Facts.get result "reach") q);
  print_newline ();

  (* magic sets on the positive fragment: strip the negation stratum *)
  let positive =
    List.filter
      (fun r -> D.Ast.head_pred r <> "noroute" && D.Ast.head_pred r <> "airport")
      program
  in
  let _, semi_stats = D.Seminaive.eval_with_stats positive D.Facts.empty in
  let answers, magic_stats = D.Magic.query_with_stats positive D.Facts.empty q in
  Printf.printf
    "magic sets on ?- reach(sfo, X): %d answers with %d derivations\n"
    (Ts.cardinal answers) magic_stats.D.Naive.derivations;
  Printf.printf "(full semi-naive evaluation needed %d derivations)\n\n"
    semi_stats.D.Naive.derivations;

  (* containment & minimization *)
  let q1 = D.Containment.of_rule (D.Parser.parse_rule "q(X, Y) :- flight(X, Z), flight(Z, Y).") in
  let q2 = D.Containment.of_rule (D.Parser.parse_rule "q(X, Y) :- flight(X, Z2), flight(Z3, Y).") in
  Printf.printf "CQ containment (Chandra-Merlin):\n";
  Printf.printf "  two-hop ⊆ loose-pair: %b\n" (D.Containment.contained q1 q2);
  Printf.printf "  loose-pair ⊆ two-hop: %b\n" (D.Containment.contained q2 q1);
  let redundant =
    D.Containment.of_rule
      (D.Parser.parse_rule "q(X) :- flight(X, Y), flight(X, Z), flight(X, W).")
  in
  let core = D.Containment.minimize redundant in
  Printf.printf "  minimization: %d atoms -> %d atoms (equivalent: %b)\n"
    (List.length redundant.D.Containment.body)
    (List.length core.D.Containment.body)
    (D.Containment.equivalent redundant core)
