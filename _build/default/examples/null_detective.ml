(* Incomplete information: what can be answered with certainty when the
   database has nulls?  The Imieliński–Lipski machinery on a small
   whodunit.

   Run with: dune exec examples/null_detective.exe *)

module I = Incomplete
module R = Relational
module A = R.Algebra
open R.Value

let cc v = I.Table.Const v
let nn i = I.Table.Null i

let () =
  (* sightings: who was seen where; one witness couldn't tell the place,
     another couldn't tell the person — labelled nulls *)
  let sight_schema = R.Schema.make [ ("who", TString); ("place", TString) ] in
  let sightings =
    I.Table.create sight_schema
      [
        [| cc (String "mallory"); cc (String "library") |];
        [| cc (String "ada"); nn 1 |];  (* ada seen somewhere unknown *)
        [| nn 2; cc (String "garden") |];  (* someone seen in the garden *)
      ]
  in
  (* the crime scene *)
  let scene_schema = R.Schema.make [ ("place", TString) ] in
  let scene = I.Table.create scene_schema [ [| cc (String "library") |] ] in
  let db = [ ("sightings", sightings); ("scene", scene) ] in
  Printf.printf "sightings (with labelled nulls):\n%s\n" (I.Table.to_string sightings);
  Printf.printf "crime scene:\n%s\n" (I.Table.to_string scene);

  let suspects =
    A.Project ([ "who" ], A.Join (A.Rel "sightings", A.Rel "scene"))
  in
  Printf.printf "who was certainly at the scene?\n";
  let certain = I.Naive_eval.certain_answers db suspects in
  print_string (R.Relation.to_string certain);

  let domain =
    [ String "library"; String "garden"; String "kitchen";
      String "ada"; String "bob"; String "mallory"; String "u1"; String "u2" ]
  in
  Printf.printf "\nwho was possibly at the scene?\n";
  let possible = I.Naive_eval.possible_answers_bruteforce db suspects ~domain in
  print_string (R.Relation.to_string possible);

  Printf.printf "\n(naive evaluation = certain answers for positive queries: %b)\n"
    (R.Relation.equal certain
       (I.Naive_eval.certain_answers_bruteforce db suspects ~domain));

  (* why negation is dangerous with nulls *)
  let innocent =
    A.Diff
      ( A.Project ([ "who" ], A.Rel "sightings"),
        A.Project ([ "who" ], A.Join (A.Rel "sightings", A.Rel "scene")) )
  in
  Printf.printf "\nwho is 'certainly NOT placeable at the scene'? (negation!)\n";
  let truly =
    I.Naive_eval.certain_answers_bruteforce db innocent ~domain
  in
  print_string (R.Relation.to_string truly);
  Printf.printf
    "\nada is not certainly innocent: her unknown place might be the library.\n";
  Printf.printf "naive evaluation refuses the non-positive query: %b\n"
    (match I.Naive_eval.eval db innocent with
    | _ -> false
    | exception I.Naive_eval.Not_positive _ -> true)
