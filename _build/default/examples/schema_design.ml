(* A session with the normalization workbench — what the "more than
   twenty database design tools that do some form of normalization" do,
   on the classic course-registration schema.

   Run with: dune exec examples/schema_design.exe *)

module NF = Dependencies.Normal_forms
module Fd = Dependencies.Fd
module Attrs = Dependencies.Attrs
module Chase = Dependencies.Chase

let show_scheme s = Printf.printf "  %s\n" (NF.scheme_to_string s)

let () =
  (* One big registration table:
     S = student, C = course, T = teacher, H = hour, R = room, G = grade.
     C -> T      each course has one teacher
     HR -> C     a room at an hour hosts one course
     HT -> R     a teacher at an hour is in one room
     CS -> G     a student's grade in a course is unique
     HS -> R     a student at an hour is in one room *)
  let registration =
    {
      NF.name = "reg";
      attrs = Attrs.of_string "SCTHRG";
      fds = Fd.set_of_string "C -> T; HR -> C; HT -> R; CS -> G; HS -> R";
    }
  in
  Printf.printf "schema under design:\n  %s\n\n" (NF.scheme_to_string registration);

  let keys = Fd.candidate_keys ~universe:registration.NF.attrs registration.NF.fds in
  Printf.printf "candidate keys: %s\n"
    (String.concat ", " (List.map Attrs.to_string keys));
  Printf.printf "prime attributes: %s\n\n"
    (Attrs.to_string
       (Fd.prime_attributes ~universe:registration.NF.attrs registration.NF.fds));

  Printf.printf "normal-form report: 2NF=%b 3NF=%b BCNF=%b\n" (NF.is_2nf registration)
    (NF.is_3nf registration) (NF.is_bcnf registration);
  List.iter
    (fun v -> Printf.printf "  violation: %s — %s\n" (Fd.to_string v.NF.fd) v.NF.reason)
    (NF.violations_bcnf registration);
  print_newline ();

  Printf.printf "BCNF decomposition (lossless, may lose dependencies):\n";
  let bcnf = NF.bcnf_decompose registration in
  List.iter show_scheme bcnf;
  Printf.printf "  lossless: %b  dependency-preserving: %b\n\n"
    (NF.lossless registration bcnf)
    (NF.dependency_preserving registration bcnf);

  Printf.printf "3NF synthesis (lossless AND dependency-preserving):\n";
  let threenf = NF.synthesize_3nf registration in
  List.iter show_scheme threenf;
  Printf.printf "  lossless: %b  dependency-preserving: %b\n\n"
    (NF.lossless registration threenf)
    (NF.dependency_preserving registration threenf);

  (* the chase, visibly *)
  Printf.printf "the chase that certifies the 3NF decomposition:\n";
  let tableau =
    Chase.initial_tableau ~universe:registration.NF.attrs
      (List.map (fun s -> s.NF.attrs) threenf)
  in
  print_string (Chase.to_string tableau);
  Printf.printf "  ... chases to ...\n";
  let chased =
    Chase.chase tableau
      (List.map (fun fd -> Chase.Fd_dep fd) registration.NF.fds)
  in
  print_string (Chase.to_string chased);
  Printf.printf "  all-distinguished row present: %b\n\n"
    (Chase.has_distinguished_row chased);

  (* is the decomposed scheme acyclic? *)
  let hypergraph = List.map (fun s -> s.NF.attrs) threenf in
  Printf.printf "decomposed scheme %s is acyclic: %b\n"
    (Dependencies.Hypergraph.to_string hypergraph)
    (Dependencies.Hypergraph.is_acyclic hypergraph)
