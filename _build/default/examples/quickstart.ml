(* Quickstart: build a small database, query it three ways — relational
   algebra, safe relational calculus (compiled via Codd's theorem), and
   Datalog — and watch all three agree.

   Run with: dune exec examples/quickstart.exe *)

module R = Relational
module A = R.Algebra
module F = Calculus.Formula
open R.Value

let () =
  (* 1. a database: people and who reports to whom *)
  let people_schema =
    R.Schema.make [ ("id", TInt); ("name", TString); ("role", TString) ]
  in
  let reports_schema = R.Schema.make [ ("emp", TInt); ("boss", TInt) ] in
  let people =
    R.Relation.of_list people_schema
      [
        [ Int 1; String "ada"; String "engineer" ];
        [ Int 2; String "bob"; String "engineer" ];
        [ Int 3; String "cyn"; String "manager" ];
        [ Int 4; String "dan"; String "director" ];
      ]
  in
  let reports =
    R.Relation.of_list reports_schema
      [ [ Int 1; Int 3 ]; [ Int 2; Int 3 ]; [ Int 3; Int 4 ] ]
  in
  let db = R.Database.of_list [ ("people", people); ("reports", reports) ] in
  print_endline "== the database ==";
  Format.printf "%a@." R.Database.pp db;

  (* 2. relational algebra: names of people who report to a manager *)
  let algebra_query =
    A.Project
      ( [ "name" ],
        A.Join
          ( A.Rename ([ ("id", "emp") ], A.Rel "people"),
            A.Join
              ( A.Rel "reports",
                A.Rename
                  ( [ ("id", "boss"); ("name", "bname"); ("role", "brole") ],
                    A.Select
                      ( A.Cmp (A.Eq, A.Attr "role", A.Const (String "manager")),
                        A.Rel "people" ) ) ) ) )
  in
  print_endline "== algebra: who reports to a manager? ==";
  print_string (R.Relation.to_string (R.Eval.eval db algebra_query));

  (* 3. the same question in the calculus, compiled to algebra *)
  let v x = F.Var x in
  let calculus_query =
    {
      F.head = [ "n" ];
      body =
        F.exists_many
          [ "e"; "b"; "r"; "bn" ]
          (F.conj
             [
               F.Atom ("people", [ v "e"; v "n"; v "r" ]);
               F.Atom ("reports", [ v "e"; v "b" ]);
               F.Atom ("people", [ v "b"; v "bn"; F.Const (String "manager") ]);
             ]);
    }
  in
  print_endline "== calculus: same query, checked safe and compiled ==";
  Printf.printf "query: %s\n" (F.query_to_string calculus_query);
  Printf.printf "safety: %s\n"
    (Calculus.Safety.explain (Calculus.Safety.is_safe_range calculus_query));
  let compiled = Calculus.To_algebra.translate_query db calculus_query in
  let via_calculus = R.Eval.eval db compiled in
  print_string (R.Relation.to_string via_calculus);

  (* 4. Datalog: the chain of command, recursively *)
  let program =
    Datalog.Parser.parse_program
      {|
        above(X, Y) :- reports(X, Y).
        above(X, Y) :- reports(X, Z), above(Z, Y).
      |}
  in
  let facts = Datalog.Interop.facts_of_database db in
  let result = Datalog.Seminaive.eval program facts in
  print_endline "== datalog: everyone above ada (id 1) ==";
  Datalog.Facts.Tuple_set.iter
    (fun tup ->
      if R.Value.equal tup.(0) (Int 1) then
        Printf.printf "above(%s, %s)\n"
          (R.Value.to_string tup.(0))
          (R.Value.to_string tup.(1)))
    (Datalog.Facts.get result "above");

  (* 5. agreement *)
  let algebra_answers = R.Eval.eval db algebra_query in
  Printf.printf "\nalgebra and calculus agree: %b\n"
    (R.Relation.equal algebra_answers
       (R.Relation.rename via_calculus [ ("n", "name") ]))
