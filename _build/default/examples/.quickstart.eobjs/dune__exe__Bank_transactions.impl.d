examples/bank_transactions.ml: List Printf String Transactions
