examples/field_history.mli:
