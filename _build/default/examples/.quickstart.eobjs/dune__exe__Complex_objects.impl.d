examples/complex_objects.ml: Access List Nested Printf Relational
