examples/quickstart.ml: Array Calculus Datalog Format Printf Relational
