examples/recursive_queries.mli:
