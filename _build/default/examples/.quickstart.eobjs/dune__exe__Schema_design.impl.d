examples/schema_design.ml: Dependencies List Printf String
