examples/field_history.ml: Array List Metatheory Printf Support
