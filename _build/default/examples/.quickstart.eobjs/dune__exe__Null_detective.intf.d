examples/null_detective.mli:
