examples/recursive_queries.ml: Array Datalog List Printf Relational String
