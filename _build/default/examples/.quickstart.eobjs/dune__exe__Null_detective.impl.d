examples/null_detective.ml: Incomplete Printf Relational
