examples/complex_objects.mli:
