examples/quickstart.mli:
