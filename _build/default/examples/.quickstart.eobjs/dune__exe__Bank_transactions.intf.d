examples/bank_transactions.mli:
