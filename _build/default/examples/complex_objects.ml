(* Complex objects: the nested relational model on a project staffing
   database — nest, unnest, the PNF caveat, and indexes on the flat side.

   Run with: dune exec examples/complex_objects.exe *)

module R = Relational
module N = Nested
open R.Value

let () =
  let assignments =
    R.Relation.of_list
      (R.Schema.make
         [ ("project", TString); ("person", TString); ("role", TString) ])
      [
        [ String "athena"; String "ada"; String "lead" ];
        [ String "athena"; String "bob"; String "dev" ];
        [ String "athena"; String "cyn"; String "dev" ];
        [ String "hermes"; String "ada"; String "advisor" ];
        [ String "hermes"; String "dan"; String "lead" ];
      ]
  in
  print_endline "== flat assignments (1NF) ==";
  print_string (R.Relation.to_string assignments);

  (* nest people-with-roles under each project: a complex object *)
  let flat = N.of_flat assignments in
  let by_project = N.nest flat ~into:"team" [ "person"; "role" ] in
  print_endline "\n== nested by project (NF²) ==";
  print_string (N.to_string by_project);
  Printf.printf "nesting depth: %d, PNF: %b\n"
    (N.depth (N.schema by_project))
    (N.is_pnf by_project);

  (* deeper: group the projects themselves *)
  let portfolio = N.nest by_project ~into:"projects" [ "project"; "team" ] in
  Printf.printf "\nportfolio depth: %d\n" (N.depth (N.schema portfolio));

  (* the laws *)
  let back = N.unnest by_project "team" in
  Printf.printf "unnest . nest = id: %b\n" (N.equal back flat);
  Printf.printf "flatten recovers 1NF from any depth: %b\n"
    (N.equal (N.flatten portfolio) flat);

  (* the PNF trap: two rows with the same atomic key *)
  let inner_schema = [ ("person", N.Atom TString) ] in
  let inner people =
    N.create inner_schema (List.map (fun p -> [| N.V (String p) |]) people)
  in
  let non_pnf =
    N.create
      [ ("project", N.Atom TString); ("team", N.Set inner_schema) ]
      [
        [| N.V (String "athena"); N.R (inner [ "ada" ]) |];
        [| N.V (String "athena"); N.R (inner [ "bob" ]) |];
      ]
  in
  print_endline "\n== the PNF trap ==";
  print_string (N.to_string non_pnf);
  Printf.printf "PNF: %b — unnesting and re-nesting merges the two rows:\n"
    (N.is_pnf non_pnf);
  print_string
    (N.to_string (N.nest (N.unnest non_pnf "team") ~into:"team" [ "person" ]));

  (* and on the flat side, a secondary index *)
  let index = Access.Btree.index_relation assignments "person" in
  print_endline "\n== who is ada? (via a B+tree secondary index) ==";
  List.iter
    (fun tup -> Printf.printf "  %s\n" (R.Tuple.to_string tup))
    (Access.Btree.find index (String "ada"))
