(* Concurrency control on a toy bank: three clients transfer money
   between overlapping accounts under each protocol; the resulting
   histories are analyzed with serializability theory.

   Run with: dune exec examples/bank_transactions.exe *)

module T = Transactions
module S = T.Schedule

(* a transfer reads both accounts and writes both *)
let transfer from_acct to_acct =
  [ S.Read from_acct; S.Read to_acct; S.Write from_acct; S.Write to_acct ]

let () =
  (* accounts are named x0..x3 so the tree protocol can play too *)
  let specs =
    [| transfer "x0" "x1"; transfer "x1" "x2"; transfer "x2" "x0"; transfer "x3" "x1" |]
  in
  Printf.printf "four clients transfer money between four accounts;\n";
  Printf.printf "the access patterns form a cycle — a deadlock trap for locking.\n\n";
  let protocols : (string * (unit -> T.Protocol.t)) list =
    [
      ("strict 2PL", T.Two_phase.create);
      ("timestamp ordering", fun () -> T.Timestamp.create ());
      ("optimistic", T.Optimistic.create);
      ("tree locking", T.Tree_lock.create);
    ]
  in
  List.iter
    (fun (name, make) ->
      let stats = T.Simulation.run (make ()) specs in
      Printf.printf "== %s ==\n" name;
      Printf.printf "history: %s\n" (S.to_string stats.T.Simulation.history);
      Printf.printf "committed %d/4, restarts %d, deadlocks broken %d\n"
        stats.T.Simulation.committed stats.T.Simulation.restarts
        stats.T.Simulation.deadlocks;
      let h = stats.T.Simulation.history in
      Printf.printf "conflict-serializable: %b"
        (T.Serializability.is_conflict_serializable h);
      (match T.Serializability.conflict_equivalent_serial_order h with
      | Some order ->
          Printf.printf " (equivalent serial order: %s)\n"
            (String.concat " < " (List.map string_of_int order))
      | None -> print_newline ());
      Printf.printf "recoverable: %b, avoids cascading aborts: %b, strict: %b\n\n"
        (T.Serializability.is_recoverable h)
        (T.Serializability.avoids_cascading_aborts h)
        (T.Serializability.is_strict h))
    protocols;

  (* a hand-written lost-update anomaly, caught by the analyzer *)
  let lost_update = S.of_string "r1(x) r2(x) w1(x) w2(x) c1 c2" in
  Printf.printf "== the lost-update anomaly, by hand ==\n";
  Printf.printf "history: %s\n" (S.to_string lost_update);
  Printf.printf "conflict-serializable: %b (the update of t1 is lost)\n"
    (T.Serializability.is_conflict_serializable lost_update);
  (* and the blind-write curiosity: view- but not conflict-serializable *)
  let blind = S.of_string "w1(x) w2(x) w2(y) c2 w1(y) c1 w3(x) w3(y) c3" in
  Printf.printf "\n== blind writes (Bernstein's classic) ==\n";
  Printf.printf "history: %s\n" (S.to_string blind);
  Printf.printf "conflict-serializable: %b, view-serializable: %b\n"
    (T.Serializability.is_conflict_serializable blind)
    (T.Serializability.is_view_serializable blind)
