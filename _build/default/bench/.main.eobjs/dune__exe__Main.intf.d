bench/main.mli:
