bench/codd_bench.ml: Bench_util Calculus Float List Printf Relational Support
