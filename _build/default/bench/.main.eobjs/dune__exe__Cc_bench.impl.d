bench/cc_bench.ml: Array Bench_util Float List Printf Support Transactions
