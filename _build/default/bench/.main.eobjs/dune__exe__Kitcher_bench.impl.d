bench/kitcher_bench.ml: Bench_util List Metatheory Printf Support
