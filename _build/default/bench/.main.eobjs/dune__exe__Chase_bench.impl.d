bench/chase_bench.ml: Array Bench_util Char Dependencies List Printf Relational String Support
