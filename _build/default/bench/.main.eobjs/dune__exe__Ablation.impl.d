bench/ablation.ml: Bench_util Dependencies List Printf Relational Sat Support
