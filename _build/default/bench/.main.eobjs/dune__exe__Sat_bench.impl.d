bench/sat_bench.ml: Bench_util Datalog Fun List Printf Relational Sat Support
