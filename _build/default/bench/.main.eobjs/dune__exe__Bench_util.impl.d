bench/bench_util.ml: Float Int64 List Monotonic_clock Printf String
