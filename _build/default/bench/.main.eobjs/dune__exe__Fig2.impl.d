bench/fig2.ml: Array Bench_util List Metatheory Printf Support
