bench/volterra_bench.ml: Array Bench_util List Metatheory Support
