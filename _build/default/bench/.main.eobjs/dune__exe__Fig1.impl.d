bench/fig1.ml: Bench_util List Metatheory Support
