bench/main.ml: Ablation Access_bench Array Cc_bench Chase_bench Codd_bench Datalog_bench Fig1 Fig2 Fig3 Kitcher_bench List Micro Printf Sat_bench Sys Volterra_bench
