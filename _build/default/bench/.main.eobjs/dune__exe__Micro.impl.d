bench/micro.ml: Analyze Bechamel Bench_util Benchmark Calculus Datalog Dependencies Float Hashtbl List Measure Printf Relational Sat Staged String Support Test Time Toolkit Transactions
