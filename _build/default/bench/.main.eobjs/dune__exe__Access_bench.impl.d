bench/access_bench.ml: Access Array Bench_util List Nested Relational Support
