bench/fig3.ml: Array Bench_util List Metatheory Support
