bench/datalog_bench.ml: Bench_util Datalog Float List Printf Relational Support
