(* Footnote 11: Kitcher's population-genetics argument that cognitive
   diversity is beneficial and inevitable.  We sweep the relative promise
   of two research programs and compare the credit-chasing equilibrium
   against the community optimum and against monoculture. *)

module M = Metatheory

let run () =
  Bench_util.header "Kitcher's diversity model (footnote 11)";
  let mainstream potential =
    { M.Kitcher.name = "mainstream"; potential; difficulty = 8. }
  in
  let maverick = { M.Kitcher.name = "maverick"; potential = 0.5; difficulty = 3. } in
  let rows =
    List.map
      (fun potential ->
        let p1 = mainstream potential in
        let eq = M.Kitcher.equilibrium p1 maverick ~total:100. in
        let opt = M.Kitcher.optimal_allocation p1 maverick ~total:100. in
        let v_eq = M.Kitcher.community_success p1 maverick eq in
        let v_opt = M.Kitcher.community_success p1 maverick opt in
        let v_mono =
          M.Kitcher.community_success p1 maverick
            { M.Kitcher.allocation = 100.; total = 100. }
        in
        [
          Bench_util.f2 potential;
          Bench_util.f1 eq.M.Kitcher.allocation;
          Bench_util.f1 opt.M.Kitcher.allocation;
          Bench_util.f3 v_eq;
          Bench_util.f3 v_opt;
          Bench_util.f3 v_mono;
          Printf.sprintf "%.0f%%" (100. *. v_eq /. v_opt);
        ])
      [ 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]
  in
  Support.Table.print
    ~header:
      [
        "mainstream potential";
        "equilibrium n1";
        "optimal n1";
        "success @eq";
        "success @opt";
        "success @monoculture";
        "efficiency";
      ]
    rows;
  print_newline ();
  Bench_util.note
    "Diversity is inevitable (credit-chasing never empties the maverick program)";
  Bench_util.note
    "and beneficial (the mixed optimum always beats the monoculture)."
