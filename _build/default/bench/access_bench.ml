(* The fifth curve of Figure 3: "data structures and access methods
   already had the modest presence they would maintain throughout the
   fourteen years."  The access methods themselves: B+tree and extendible
   hashing against the sequential scan, across data sizes. *)

module R = Relational
module B = Access.Btree
module H = Access.Hash_index
open R.Value

let make_relation rng size =
  let schema = R.Schema.make [ ("k", TInt); ("payload", TInt) ] in
  R.Relation.of_list schema
    (List.init size (fun i ->
         [ Int i; Int (Support.Rng.int rng 1000) ]))

let run () =
  Bench_util.header "Access methods: B+tree and extendible hashing vs the scan";
  let rows =
    List.map
      (fun size ->
        let rng = Support.Rng.create size in
        let rel = make_relation rng size in
        let btree, build_btree_ms =
          Bench_util.time_ms (fun () -> B.index_relation rel "k")
        in
        let hash, build_hash_ms =
          Bench_util.time_ms (fun () ->
              let h = H.create ~bucket_capacity:8 () in
              R.Relation.iter (fun tup -> H.insert h tup.(0) tup) rel;
              h)
        in
        (* 200 point lookups *)
        let keys = List.init 200 (fun _ -> Int (Support.Rng.int rng size)) in
        let scan_ms =
          Bench_util.timed (fun () ->
              List.iter
                (fun k ->
                  ignore
                    (R.Relation.select (fun tup -> R.Value.equal tup.(0) k) rel))
                keys)
        in
        let btree_ms =
          Bench_util.timed (fun () -> List.iter (fun k -> ignore (B.find btree k)) keys)
        in
        let hash_ms =
          Bench_util.timed (fun () -> List.iter (fun k -> ignore (H.find hash k)) keys)
        in
        (* a 5% range query *)
        let lo = Int (size / 2) and hi = Int ((size / 2) + (size / 20)) in
        let range_scan_ms =
          Bench_util.timed (fun () ->
              ignore
                (R.Relation.select
                   (fun tup ->
                     R.Value.compare tup.(0) lo >= 0 && R.Value.compare tup.(0) hi <= 0)
                   rel))
        in
        let range_btree_ms =
          Bench_util.timed (fun () -> ignore (B.range btree ~lo ~hi))
        in
        [
          Bench_util.i size;
          Bench_util.ms build_btree_ms;
          Bench_util.ms build_hash_ms;
          Bench_util.ms scan_ms;
          Bench_util.ms btree_ms;
          Bench_util.ms hash_ms;
          Bench_util.ms range_scan_ms;
          Bench_util.ms range_btree_ms;
        ])
      [ 1_000; 4_000; 16_000 ]
  in
  Support.Table.print
    ~header:
      [
        "rows";
        "build btree";
        "build hash";
        "200 lookups: scan";
        "btree";
        "hash";
        "5% range: scan";
        "btree";
      ]
    rows;
  print_newline ();
  let rng = Support.Rng.create 4 in
  let rel = make_relation rng 16_000 in
  let btree = B.index_relation rel "k" in
  Bench_util.note "B+tree height at 16k keys: %d (order 8); invariants: %s"
    (B.height btree)
    (match B.check_invariants btree with Ok () -> "ok" | Error e -> e);
  let h = H.create ~bucket_capacity:8 () in
  R.Relation.iter (fun tup -> H.insert h tup.(0) tup) rel;
  Bench_util.note
    "extendible hash at 16k keys: global depth %d, %d buckets over %d slots"
    (H.global_depth h) (H.bucket_count h) (H.directory_size h);
  print_newline ();
  (* nested relations: the complex-objects curve, structurally *)
  Bench_util.note "Complex objects (nested relations): nest/unnest laws at size 4k:";
  let module N = Nested in
  let schema = R.Schema.make [ ("a", TInt); ("b", TInt); ("c", TInt) ] in
  let rel = R.Generator.random_relation rng schema ~size:4000 ~domain:40 in
  let flat = N.of_flat rel in
  let nested, nest_ms =
    Bench_util.time_ms (fun () -> N.nest flat ~into:"g" [ "c" ])
  in
  let back, unnest_ms = Bench_util.time_ms (fun () -> N.unnest nested "g") in
  Bench_util.note
    "nest: %s ms (%d rows -> %d groups), unnest: %s ms, roundtrip exact: %b, PNF: %b"
    (Bench_util.ms nest_ms) (N.cardinality flat) (N.cardinality nested)
    (Bench_util.ms unnest_ms)
    (N.equal back flat) (N.is_pnf nested)

(* quiet unused-open warnings on some compilers *)
let _ = ignore
