(* §6: "Normalization and dependency theory, for all its innumerable
   tangents, has reached practice in the form of database design tools."
   The design-tool pipeline, timed: closures, candidate keys, minimal
   covers, BCNF decomposition, 3NF synthesis, and the chase. *)

module Dep = Dependencies
module Fd = Dep.Fd
module Attrs = Dep.Attrs

let random_scheme rng ~width ~fds =
  let letters = Array.init width (fun k -> String.make 1 (Char.chr (65 + k))) in
  let random_attrs n =
    let out = ref Attrs.empty in
    for _ = 1 to n do
      out := Attrs.add (Support.Rng.pick rng letters) !out
    done;
    !out
  in
  let fd_list =
    List.init fds (fun _ ->
        Fd.make
          (random_attrs (1 + Support.Rng.int rng 2))
          (random_attrs (1 + Support.Rng.int rng 2)))
    |> List.filter (fun fd -> not (Fd.is_trivial fd))
  in
  {
    Dep.Normal_forms.name = "r";
    attrs = Attrs.of_list (Array.to_list letters);
    fds = fd_list;
  }

let run () =
  Bench_util.header "Dependency theory: the design-tool pipeline";
  let widths = [ (5, 4); (7, 6); (9, 8) ] in
  let rows =
    List.map
      (fun (width, fd_count) ->
        let trials = 30 in
        let acc = Array.make 6 0. in
        let bcnf_preserves = ref 0 and threenf_bcnf = ref 0 in
        for t = 1 to trials do
          let rng = Support.Rng.create (t * 97) in
          let scheme = random_scheme rng ~width ~fds:fd_count in
          let keys_ms =
            Bench_util.timed (fun () ->
                Fd.candidate_keys ~universe:scheme.Dep.Normal_forms.attrs
                  scheme.Dep.Normal_forms.fds)
          in
          let cover_ms =
            Bench_util.timed (fun () -> Fd.minimal_cover scheme.Dep.Normal_forms.fds)
          in
          let bcnf, bcnf_ms =
            Bench_util.time_ms (fun () -> Dep.Normal_forms.bcnf_decompose scheme)
          in
          let threenf, threenf_ms =
            Bench_util.time_ms (fun () -> Dep.Normal_forms.synthesize_3nf scheme)
          in
          let chase_ms =
            Bench_util.timed (fun () -> Dep.Normal_forms.lossless scheme bcnf)
          in
          acc.(0) <- acc.(0) +. keys_ms;
          acc.(1) <- acc.(1) +. cover_ms;
          acc.(2) <- acc.(2) +. bcnf_ms;
          acc.(3) <- acc.(3) +. threenf_ms;
          acc.(4) <- acc.(4) +. chase_ms;
          acc.(5) <- acc.(5) +. float_of_int (List.length bcnf);
          if Dep.Normal_forms.dependency_preserving scheme bcnf then
            incr bcnf_preserves;
          if List.for_all Dep.Normal_forms.is_bcnf threenf then incr threenf_bcnf
        done;
        let avg k = acc.(k) /. float_of_int trials in
        [
          Printf.sprintf "%d attrs, %d FDs" width fd_count;
          Bench_util.ms (avg 0);
          Bench_util.ms (avg 1);
          Bench_util.ms (avg 2);
          Bench_util.ms (avg 3);
          Bench_util.ms (avg 4);
          Bench_util.f1 (avg 5);
          Printf.sprintf "%d/%d" !bcnf_preserves trials;
          Printf.sprintf "%d/%d" !threenf_bcnf trials;
        ])
      widths
  in
  Support.Table.print
    ~header:
      [
        "scheme";
        "keys ms";
        "cover ms";
        "BCNF ms";
        "3NF ms";
        "chase ms";
        "BCNF components";
        "BCNF dep-preserving";
        "3NF already BCNF";
      ]
    rows;
  print_newline ();
  Bench_util.note
    "Both decompositions are always lossless (chase-verified in the test";
  Bench_util.note
    "suite); BCNF sometimes drops dependencies — the CSZ effect — while 3NF";
  Bench_util.note "synthesis always preserves them at the cost of weaker normal form.";
  print_newline ();
  (* the classic CSZ example, end to end *)
  let csz =
    {
      Dep.Normal_forms.name = "addr";
      attrs = Attrs.of_string "CSZ";
      fds = Fd.set_of_string "CS -> Z; Z -> C";
    }
  in
  Bench_util.note "city-street-zip: %s" (Dep.Normal_forms.scheme_to_string csz);
  let bcnf = Dep.Normal_forms.bcnf_decompose csz in
  List.iter
    (fun s -> Bench_util.note "  BCNF component: %s" (Dep.Normal_forms.scheme_to_string s))
    bcnf;
  Bench_util.note "  lossless: %b, dependency-preserving: %b"
    (Dep.Normal_forms.lossless csz bcnf)
    (Dep.Normal_forms.dependency_preserving csz bcnf);
  print_newline ();
  (* the universal relation interface over an acyclic scheme *)
  Bench_util.note
    "Universal relation window over students-enrolled-courses (attributes";
  Bench_util.note "only; the system picks the qualification):";
  let module R = Relational in
  let open R.Value in
  let students =
    R.Relation.of_list
      (R.Schema.make [ ("sid", TInt); ("sname", TString) ])
      [ [ Int 1; String "ada" ]; [ Int 2; String "bob" ] ]
  in
  let enrolled =
    R.Relation.of_list
      (R.Schema.make [ ("sid", TInt); ("cid", TInt) ])
      [ [ Int 1; Int 10 ]; [ Int 2; Int 11 ] ]
  in
  let courses =
    R.Relation.of_list
      (R.Schema.make [ ("cid", TInt); ("dept", TString) ])
      [ [ Int 10; String "cs" ]; [ Int 11; String "math" ] ]
  in
  let db = [ students; enrolled; courses ] in
  List.iter
    (fun attrs ->
      let window = Dep.Universal.window db (Attrs.of_list attrs) in
      Bench_util.note "  window(%s): %d rows via %d-relation qualification"
        (String.concat "," attrs)
        (R.Relation.cardinality window)
        (List.length (Dep.Universal.qualification db (Attrs.of_list attrs))))
    [ [ "sname" ]; [ "sname"; "cid" ]; [ "sname"; "dept" ] ]
