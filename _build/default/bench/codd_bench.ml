(* Codd's theorem operationalized (§3): "the calculus is implementable
   and the algebra expressive".  We take calculus queries, compile them to
   algebra, and compare against the naive active-domain interpreter; the
   compiled plans (especially after optimization) win by growing factors —
   the double implication at work. *)

module R = Relational
module A = R.Algebra
module F = Calculus.Formula

let v x = F.Var x

let two_hop =
  {
    F.head = [ "x"; "y" ];
    body =
      F.Exists
        ( "z",
          F.And (F.Atom ("edge", [ v "x"; v "z" ]), F.Atom ("edge", [ v "z"; v "y" ]))
        );
  }

let guarded_negation =
  {
    F.head = [ "x" ];
    body =
      F.And
        ( F.Exists ("y", F.Atom ("edge", [ v "x"; v "y" ])),
          F.Not (F.Atom ("edge", [ v "x"; v "x" ])) );
  }

let graph_db rng ~nodes ~edges =
  let schema = R.Schema.make [ ("src", R.Value.TInt); ("dst", R.Value.TInt) ] in
  let rows =
    List.init edges (fun _ ->
        [ R.Value.Int (Support.Rng.int rng nodes); R.Value.Int (Support.Rng.int rng nodes) ])
  in
  R.Database.of_list [ ("edge", R.Relation.of_list schema rows) ]

let run () =
  Bench_util.header "Codd's theorem: calculus -> algebra compilation vs interpretation";
  let cases = [ ("two-hop", two_hop); ("guarded negation", guarded_negation) ] in
  let sizes = [ (30, 60); (60, 120); (90, 180) ] in
  let rows =
    List.concat_map
      (fun (name, query) ->
        List.map
          (fun (nodes, edges) ->
            let rng = Support.Rng.create (nodes + edges) in
            let db = graph_db rng ~nodes ~edges in
            let interp_ms =
              Bench_util.timed (fun () -> Calculus.Active_domain.eval db query)
            in
            let plan = Calculus.To_algebra.translate_query db query in
            let catalog = A.catalog_of_database db in
            let stats = R.Optimizer.stats_of_database db in
            let optimized = R.Optimizer.optimize catalog stats plan in
            let compiled_ms = Bench_util.timed (fun () -> R.Eval.eval db plan) in
            let optimized_ms =
              Bench_util.timed (fun () -> R.Eval.eval_unchecked db optimized)
            in
            let reference = Calculus.Active_domain.eval db query in
            let agree =
              R.Relation.equal reference (R.Eval.eval db plan)
              && R.Relation.equal reference (R.Eval.eval_unchecked db optimized)
            in
            [
              name;
              Printf.sprintf "%d/%d" nodes edges;
              Bench_util.ms interp_ms;
              Bench_util.ms compiled_ms;
              Bench_util.ms optimized_ms;
              Printf.sprintf "%.0fx"
                (interp_ms /. Float.max 0.001 optimized_ms);
              string_of_bool agree;
            ])
          sizes)
      cases
  in
  Support.Table.print
    ~header:
      [
        "query";
        "nodes/edges";
        "interpreter (ms)";
        "compiled (ms)";
        "optimized (ms)";
        "speedup";
        "same answers";
      ]
    rows;
  print_newline ();
  Bench_util.note
    "Safety analysis on the same queries (domain independence guaranteed):";
  List.iter
    (fun (name, query) ->
      Bench_util.note "  %-18s %s" name
        (Calculus.Safety.explain (Calculus.Safety.is_safe_range query)))
    cases;
  Bench_util.note "  %-18s %s" "bare negation"
    (Calculus.Safety.explain
       (Calculus.Safety.is_safe_range
          { F.head = [ "x" ]; body = F.Not (F.Atom ("edge", [ v "x"; v "x" ])) }))
