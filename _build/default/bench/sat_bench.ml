(* §3: Cook and Fagin connect computation, logic, and satisfiability.
   Operationally: the random 3-SAT phase transition around clause/variable
   ratio 4.26, Boolean CQ evaluation routed through SAT vs direct search,
   and 3-colorability decided through the ∃SO sentence. *)

module S = Sat
module D = Datalog

let random_3cnf rng ~vars ~clauses =
  List.init clauses (fun _ ->
      let rec distinct acc =
        if List.length acc = 3 then acc
        else begin
          let v = 1 + Support.Rng.int rng vars in
          if List.mem v acc || List.mem (-v) acc then distinct acc
          else distinct ((if Support.Rng.bool rng then v else -v) :: acc)
        end
      in
      distinct [])

let run () =
  Bench_util.header "Cook & Fagin: satisfiability as the common currency";
  Bench_util.note "Random 3-SAT phase transition (n = 40 variables, 40 instances/ratio):";
  let rows =
    List.map
      (fun ratio ->
        let vars = 40 in
        let clauses = int_of_float (ratio *. float_of_int vars) in
        let sat = ref 0 and decisions = ref 0 and total_ms = ref 0. in
        let instances = 40 in
        for t = 1 to instances do
          let rng = Support.Rng.create ((t * 131) + clauses) in
          let cnf = random_3cnf rng ~vars ~clauses in
          let (result, stats), elapsed =
            Bench_util.time_ms (fun () -> S.Dpll.solve_with_stats cnf)
          in
          (match result with S.Dpll.Sat _ -> incr sat | S.Dpll.Unsat -> ());
          decisions := !decisions + stats.S.Dpll.decisions;
          total_ms := !total_ms +. elapsed
        done;
        [
          Bench_util.f1 ratio;
          Printf.sprintf "%.0f%%" (100. *. float_of_int !sat /. float_of_int instances);
          Bench_util.f1 (float_of_int !decisions /. float_of_int instances);
          Bench_util.ms (!total_ms /. float_of_int instances);
        ])
      [ 2.0; 3.0; 4.0; 4.26; 5.0; 6.0 ]
  in
  Support.Table.print
    ~header:[ "clause/var ratio"; "satisfiable"; "avg decisions"; "avg ms" ]
    rows;
  Bench_util.note
    "(the satisfiable fraction collapses and the search cost peaks near 4.26)";
  print_newline ();
  Bench_util.note "Boolean CQ evaluation: direct homomorphism search vs SAT route:";
  let rows =
    List.map
      (fun (atoms, facts_n) ->
        let rng = Support.Rng.create (atoms * 1000 + facts_n) in
        let facts =
          D.Facts.add_list D.Facts.empty "e"
            (List.init facts_n (fun _ ->
                 [
                   Relational.Value.Int (Support.Rng.int rng 12);
                   Relational.Value.Int (Support.Rng.int rng 12);
                 ]))
        in
        let vars = [| "X"; "Y"; "Z"; "W" |] in
        let body =
          List.init atoms (fun _ ->
              D.Ast.atom "e"
                [
                  D.Ast.Var (Support.Rng.pick rng vars);
                  D.Ast.Var (Support.Rng.pick rng vars);
                ])
        in
        let q = { D.Containment.head = []; body } in
        let direct, direct_ms =
          Bench_util.time_ms (fun () -> S.Encodings.cq_holds_directly q facts)
        in
        let via_sat, sat_ms =
          Bench_util.time_ms (fun () -> S.Encodings.cq_holds_via_sat q facts)
        in
        [
          Bench_util.i atoms;
          Bench_util.i facts_n;
          string_of_bool direct;
          Bench_util.ms direct_ms;
          Bench_util.ms sat_ms;
          string_of_bool (direct = via_sat);
        ])
      [ (2, 20); (3, 30); (4, 40); (5, 50) ]
  in
  Support.Table.print
    ~header:[ "atoms"; "facts"; "holds"; "direct ms"; "via SAT ms"; "agree" ]
    rows;
  print_newline ();
  Bench_util.note "Fagin: 3-colorability as an ∃SO sentence, decided by DPLL:";
  let graphs =
    [
      ("cycle of 9", List.init 9 (fun k -> (k, (k + 1) mod 9)), 9);
      ("wheel of 8 (odd rim)", (List.init 7 (fun k -> (k, (k + 1) mod 7))) @ (List.init 7 (fun k -> (7, k))), 8);
      ("K4", [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ], 4);
    ]
  in
  let rows =
    List.map
      (fun (name, edges, n) ->
        let nodes = List.init n Fun.id in
        let structure = S.Fagin.structure_of_graph ~edges ~nodes in
        let colorable, fagin_ms =
          Bench_util.time_ms (fun () ->
              S.Fagin.decide structure S.Fagin.three_colorability)
        in
        let direct, direct_ms =
          Bench_util.time_ms (fun () ->
              let cnf, _ = S.Encodings.three_coloring ~edges ~nodes in
              S.Dpll.is_satisfiable cnf)
        in
        [
          name;
          string_of_bool colorable;
          Bench_util.ms fagin_ms;
          Bench_util.ms direct_ms;
          string_of_bool (colorable = direct);
        ])
      graphs
  in
  Support.Table.print
    ~header:[ "graph"; "3-colorable"; "∃SO ms"; "direct encoding ms"; "agree" ]
    rows
