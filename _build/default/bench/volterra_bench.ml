(* "The graphs very much recall solutions to Volterra equations for an
   isolated ecosystem with very aggressive predators" — fit the
   predator-prey system to relational theory (prey) vs logic databases
   (predator) and show the model tracks the succession. *)

module M = Metatheory

let run () =
  Bench_util.header "Volterra ecosystem fit (relational theory vs logic databases)";
  let prey = M.Pods_data.raw_series M.Pods_data.Relational_theory in
  let predator = M.Pods_data.raw_series M.Pods_data.Logic_databases in
  let fit, fit_ms =
    Bench_util.time_ms (fun () -> M.Volterra.fit_predator_prey ~prey ~predator)
  in
  let p = fit.M.Volterra.params in
  Bench_util.note
    "fitted in %s ms: prey growth α=%.2f, predation β=%.3f, conversion δ=%.3f, \
     predator death γ=%.2f (sse %.1f)"
    (Bench_util.ms fit_ms) p.M.Volterra.prey_growth p.M.Volterra.predation
    p.M.Volterra.conversion p.M.Volterra.predator_death fit.M.Volterra.sse;
  print_newline ();
  let year_labels =
    Array.to_list (Array.map string_of_int M.Pods_data.years)
  in
  Support.Table.print
    ~header:("series" :: year_labels)
    [
      "relational (data)" :: List.map Bench_util.f1 (Array.to_list prey);
      "relational (model)"
      :: List.map Bench_util.f1 (Array.to_list fit.M.Volterra.prey_fit);
      "logic db (data)" :: List.map Bench_util.f1 (Array.to_list predator);
      "logic db (model)"
      :: List.map Bench_util.f1 (Array.to_list fit.M.Volterra.predator_fit);
    ];
  print_newline ();
  let flat xs =
    let m = Support.Stats.mean xs in
    Support.Stats.sum_squared_error xs (Array.map (fun _ -> m) xs)
  in
  let baseline = flat prey +. flat predator in
  Bench_util.note "flat-mean baseline sse: %.1f; model improves by %.0f%%" baseline
    (100. *. (1. -. (fit.M.Volterra.sse /. baseline)));
  print_newline ();
  (* the qualitative claim: "the decline of the prey brings about the
     decline of the predator" *)
  let corr =
    Support.Stats.pearson
      (Support.Stats.diff fit.M.Volterra.prey_fit)
      (Support.Stats.diff fit.M.Volterra.predator_fit)
  in
  Bench_util.note
    "in the fitted model the predator keeps declining after the prey collapses";
  Bench_util.note "(diff correlation %.2f; predator peak after prey peak: %b)" corr
    (M.Timeseries.peak_year ~years:M.Pods_data.years fit.M.Volterra.predator_fit
    >= M.Timeseries.peak_year ~years:M.Pods_data.years fit.M.Volterra.prey_fit);
  print_newline ();
  (* a pure predator-prey oscillation for reference *)
  let params =
    {
      M.Volterra.prey_growth = 1.0;
      predation = 0.5;
      conversion = 0.3;
      predator_death = 0.6;
    }
  in
  let traj = M.Volterra.integrate_predator_prey params ~x0:2. ~y0:1. ~t1:25. ~steps:250 in
  let sample = Array.init 50 (fun k -> (snd traj.(k * 5)).(0)) in
  Bench_util.note "reference predator-prey prey population (sparkline):";
  print_endline (Support.Table.sparkline sample)
