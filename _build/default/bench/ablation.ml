(* Ablations of the design choices DESIGN.md calls out: what each
   optimizer phase buys, what the semijoin full reducer buys on acyclic
   joins, and what DPLL's inference rules buy. *)

module R = Relational
module A = R.Algebra
module Dep = Dependencies

(* --- optimizer phases ---------------------------------------------------- *)

let optimizer_ablation () =
  Bench_util.note "Optimizer phases on a 3-way join with a selective filter:";
  let rng = Support.Rng.create 71 in
  let schema name key1 key2 =
    R.Schema.make [ (key1, R.Value.TInt); (name ^ "_payload", R.Value.TInt); (key2, R.Value.TInt) ]
  in
  let rel name key1 key2 size =
    (name, R.Generator.random_relation rng (schema name key1 key2) ~size ~domain:30)
  in
  let db =
    R.Database.of_list [ rel "r" "a" "b" 120; rel "s" "b" "c" 120; rel "t" "c" "d" 120 ]
  in
  let catalog = A.catalog_of_database db in
  let stats = R.Optimizer.stats_of_database db in
  let query =
    A.Project
      ( [ "a"; "d" ],
        A.Select
          ( A.Cmp (A.Eq, A.Attr "d", A.Const (R.Value.Int 3)),
            A.Join (A.Join (A.Rel "r", A.Rel "s"), A.Rel "t") ) )
  in
  let variants =
    [
      ("no optimization", query);
      ("selection push-down only", R.Optimizer.push_selections catalog query);
      ( "push-down + join order",
        R.Optimizer.order_joins catalog stats
          (R.Optimizer.push_selections catalog query) );
      ("full pipeline (+ projection pruning)", R.Optimizer.optimize catalog stats query);
    ]
  in
  let reference = R.Eval.eval db query in
  let rows =
    List.map
      (fun (label, plan) ->
        let elapsed = Bench_util.timed (fun () -> R.Eval.eval db plan) in
        [
          label;
          Bench_util.ms elapsed;
          Bench_util.i (A.size plan);
          string_of_bool (R.Relation.equal reference (R.Eval.eval db plan));
        ])
      variants
  in
  Support.Table.print ~header:[ "plan"; "eval ms"; "plan nodes"; "same answers" ] rows

(* --- yannakakis vs join folding -------------------------------------------- *)

let yannakakis_ablation () =
  Bench_util.note
    "Acyclic join where the left-to-right order explodes: the first two";
  Bench_util.note
    "relations join densely, the third kills almost everything.  The fold";
  Bench_util.note
    "materializes the quadratic intermediate; the full reducer never does:";
  let rows =
    List.map
      (fun size ->
        let rng = Support.Rng.create (size * 3) in
        let dense a b =
          (* join keys drawn from a tiny domain: |r1 ⋈ r2| ≈ size²/8 *)
          R.Generator.random_relation rng
            (R.Schema.make [ (a, R.Value.TInt); (b, R.Value.TInt) ])
            ~size ~domain:8
        in
        (* the last relation's key mostly misses the dense domain *)
        let selective =
          let schema = R.Schema.make [ ("k3", R.Value.TInt); ("k4", R.Value.TInt) ] in
          R.Relation.of_list schema
            (List.init (size / 4) (fun k ->
                 [ R.Value.Int (if k = 0 then 0 else 1000 + k); R.Value.Int k ]))
        in
        let rels = [ dense "k1" "k2"; dense "k2" "k3"; selective ] in
        let fold_ms =
          Bench_util.timed (fun () ->
              ignore
                (List.fold_left R.Relation.join (List.hd rels) (List.tl rels)))
        in
        let yk_ms = Bench_util.timed (fun () -> ignore (Dep.Yannakakis.join rels)) in
        let reduced = Dep.Yannakakis.full_reduce rels in
        let survivors =
          List.fold_left (fun acc r -> acc + R.Relation.cardinality r) 0 reduced
        in
        let total =
          List.fold_left (fun acc r -> acc + R.Relation.cardinality r) 0 rels
        in
        [
          Bench_util.i size;
          Printf.sprintf "%d/%d" survivors total;
          Bench_util.ms fold_ms;
          Bench_util.ms yk_ms;
          string_of_bool
            (R.Relation.equal
               (List.fold_left R.Relation.join (List.hd rels) (List.tl rels))
               (Dep.Yannakakis.join rels));
        ])
      [ 100; 200; 400 ]
  in
  Support.Table.print
    ~header:
      [ "tuples/relation"; "surviving after reduction"; "fold-join ms"; "yannakakis ms"; "agree" ]
    rows;
  Bench_util.note
    "(the reducer pays two semijoin sweeps to never materialize dangling rows;";
  Bench_util.note
    " on selective chains most tuples are dangling and the sweeps pay off)"

(* --- dpll inference rules ----------------------------------------------------- *)

let dpll_ablation () =
  Bench_util.note "DPLL inference rules on random 3-SAT at the phase transition:";
  let vars = 24 in
  let clauses = int_of_float (4.26 *. float_of_int vars) in
  let instances = 25 in
  let cnfs =
    List.init instances (fun t ->
        let rng = Support.Rng.create (t * 677) in
        List.init clauses (fun _ ->
            let rec distinct acc =
              if List.length acc = 3 then acc
              else begin
                let v = 1 + Support.Rng.int rng vars in
                if List.exists (fun l -> abs l = v) acc then distinct acc
                else distinct ((if Support.Rng.bool rng then v else -v) :: acc)
              end
            in
            distinct []))
  in
  let variants =
    [
      ("full DPLL", true, true);
      ("no pure-literal", true, false);
      ("no unit propagation", false, true);
      ("bare backtracking", false, false);
    ]
  in
  let rows =
    List.map
      (fun (label, up, pl) ->
        let decisions = ref 0 and total_ms = ref 0. in
        List.iter
          (fun cnf ->
            let (_, stats), elapsed =
              Bench_util.time_ms (fun () ->
                  Sat.Dpll.solve_with ~unit_propagation:up ~pure_literal:pl cnf)
            in
            decisions := !decisions + stats.Sat.Dpll.decisions;
            total_ms := !total_ms +. elapsed)
          cnfs;
        [
          label;
          Bench_util.f1 (float_of_int !decisions /. float_of_int instances);
          Bench_util.ms (!total_ms /. float_of_int instances);
        ])
      variants
  in
  Support.Table.print ~header:[ "variant"; "avg decisions"; "avg ms" ] rows

let run () =
  Bench_util.header "Ablations: what each design choice buys";
  optimizer_ablation ();
  print_newline ();
  yannakakis_ablation ();
  print_newline ();
  dpll_ablation ()
