(* Figure 1: the stages of the scientific process according to Thomas
   Kuhn.  The figure is a process diagram; we print the diagram, list its
   arrows, and animate it with the anomaly-accumulation simulation at
   three environmental regimes. *)

module M = Metatheory

let run () =
  Bench_util.header "Figure 1: Kuhn's stages of the scientific process";
  print_string (M.Kuhn.diagram ());
  print_newline ();
  Support.Table.print ~header:[ "from"; "to" ]
    (List.filter_map
       (fun (a, b) ->
         if a = b then None
         else Some [ M.Kuhn.stage_to_string a; M.Kuhn.stage_to_string b ])
       M.Kuhn.transitions);
  print_newline ();
  Bench_util.note
    "Simulated trajectories (20,000 steps each); a calm field stays in";
  Bench_util.note
    "normal science, a turbulent one cycles through crises and revolutions:";
  print_newline ();
  let regimes =
    [
      ("calm (anomaly rate 0.05)", { M.Kuhn.default_params with anomaly_rate = 0.05 });
      ("default (0.25)", M.Kuhn.default_params);
      ("turbulent (0.60)", { M.Kuhn.default_params with anomaly_rate = 0.6 });
    ]
  in
  let rows =
    List.map
      (fun (label, params) ->
        let rng = Support.Rng.create 1995 in
        let traj = M.Kuhn.simulate rng params ~steps:20_000 in
        let s = M.Kuhn.summarize traj in
        let share stage = List.assoc stage s.M.Kuhn.share in
        [
          label;
          Bench_util.f3 (share M.Kuhn.Normal);
          Bench_util.f3 (share M.Kuhn.Crisis);
          Bench_util.f3 (share M.Kuhn.Revolution);
          Bench_util.i s.M.Kuhn.revolution_count;
          Bench_util.f1 s.M.Kuhn.mean_crisis_length;
        ])
      regimes
  in
  Support.Table.print
    ~header:
      [ "regime"; "normal"; "crisis"; "revolution"; "revolutions"; "mean crisis len" ]
    rows
