(* Figure 3: the number of PODS papers in five areas, plotted as two-year
   averages, 1982-1995 — plus the quantitative signatures the paper's text
   claims: the two-year harmonic of the raw series, and the ecological
   succession of traditions. *)

module M = Metatheory

let run () =
  Bench_util.header "Figure 3: PODS papers in five areas (two-year averages)";
  let years = M.Pods_data.years in
  let year_labels = Array.to_list (Array.map string_of_int years) in
  let raw_rows =
    List.map
      (fun (area, series) ->
        M.Pods_data.area_to_string area
        :: List.map
             (fun x -> string_of_int (int_of_float x))
             (Array.to_list series))
      M.Pods_data.all_series
  in
  Bench_util.note "Raw paper counts (logic databases 1986-1992 verbatim from the text):";
  Support.Table.print ~header:("area (raw)" :: year_labels) raw_rows;
  print_newline ();
  let smoothed =
    List.map
      (fun (area, series) -> (area, M.Timeseries.two_year_average series))
      M.Pods_data.all_series
  in
  Bench_util.note "Two-year averages (the curves of the figure):";
  Support.Table.print
    ~header:("area (2yr avg)" :: year_labels)
    (List.map
       (fun (area, series) ->
         M.Pods_data.area_to_string area
         :: List.map Bench_util.f1 (Array.to_list series))
       smoothed);
  print_newline ();
  Bench_util.note "The five curves:";
  print_string
    (Support.Table.ascii_plot ~height:12
       ~labels:(List.map (fun (a, _) -> M.Pods_data.area_to_string a) smoothed)
       (List.map snd smoothed));
  print_newline ();
  (* the two-year harmonic *)
  Bench_util.note
    "Two-year harmonic (program committees have a one-year memory):";
  Support.Table.print
    ~header:[ "series"; "harmonic strength"; "lag-1 autocorr of diffs" ]
    (List.map
       (fun (label, series) ->
         [
           label;
           Bench_util.f3 (M.Timeseries.committee_harmonic series);
           Bench_util.f3
             (M.Timeseries.lag1_autocorrelation (Support.Stats.diff series));
         ])
       [
         ("logic db raw 1986-92", M.Pods_data.printed_logic_series);
         ( "logic db smoothed",
           M.Timeseries.two_year_average M.Pods_data.printed_logic_series );
         ( "transaction processing raw",
           M.Pods_data.raw_series M.Pods_data.Transaction_processing );
       ]);
  print_newline ();
  (* succession of traditions *)
  Bench_util.note "Ecological succession (peak year per tradition):";
  Support.Table.print ~header:[ "area"; "peak year"; "trend" ]
    (List.map
       (fun (area, series) ->
         let trend =
           match M.Timeseries.trend series with
           | `Rising -> "rising"
           | `Falling -> "falling"
           | `Flat -> "flat"
         in
         [
           M.Pods_data.area_to_string area;
           string_of_int (M.Timeseries.peak_year ~years series);
           trend;
         ])
       M.Pods_data.all_series);
  print_newline ();
  let rel = M.Pods_data.raw_series M.Pods_data.Relational_theory in
  let logic = M.Pods_data.raw_series M.Pods_data.Logic_databases in
  List.iter
    (fun (year, dir) ->
      match dir with
      | `First_overtakes ->
          Bench_util.note "crossover: logic databases overtake relational theory in %d" year
      | `Second_overtakes ->
          Bench_util.note "crossover: relational theory overtakes logic databases in %d" year)
    (M.Timeseries.crossovers ~years logic rel);
  print_newline ();
  (* the generative mechanism behind the harmonic: committees with a
     one-year memory overcorrecting the previous year's excesses *)
  Bench_util.note
    "Committee model (footnote 10): harmonic strength vs overcorrection gamma";
  Bench_util.note "(interest profile: a logic-database-style hump):";
  let interest = M.Committee.hump ~years:14 ~peak:16. in
  Support.Table.print ~header:[ "gamma"; "period-2 harmonic"; "series (sparkline)" ]
    (List.map
       (fun (gamma, strength) ->
         let series =
           M.Committee.simulate
             { M.Committee.overcorrection = gamma; noise = 0. }
             ~interest
         in
         [ Bench_util.f1 gamma; Bench_util.f3 strength; Support.Table.sparkline series ])
       (M.Committee.harmonic_response ~gammas:[ 0.0; 0.5; 1.0; 1.5; 1.9 ] ~interest));
  Bench_util.note
    "raw PODS logic-db harmonic for comparison: %.3f — overcorrecting"
    (M.Timeseries.committee_harmonic M.Pods_data.printed_logic_series);
  Bench_util.note "committees reproduce the figure's two-year wobble."
