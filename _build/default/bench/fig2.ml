(* Figure 2: normal applied science (top) vs applied science in crisis
   (bottom).  Both snapshots have the same average degree; they differ in
   global connectivity.  We generate 200 graphs per regime and report the
   connectivity diagnostics that tell them apart. *)

module M = Metatheory

type agg = {
  mutable deg : float;
  mutable giant : float;
  mutable diameter : float;
  mutable mean_path : float;
  mutable tp_sum : float;  (* over graphs where all theory reaches practice *)
  mutable tp_count : int;
  mutable stranded : float;
  mutable introverted : float;
  mutable score : float;
}

let aggregate params seeds =
  let a =
    {
      deg = 0.; giant = 0.; diameter = 0.; mean_path = 0.; tp_sum = 0.;
      tp_count = 0; stranded = 0.; introverted = 0.; score = 0.;
    }
  in
  List.iter
    (fun seed ->
      let rng = Support.Rng.create seed in
      let g = M.Research_graph.generate rng params in
      let r = M.Graph_metrics.report g in
      a.deg <- a.deg +. r.M.Graph_metrics.mean_degree;
      a.giant <- a.giant +. r.M.Graph_metrics.giant;
      a.diameter <- a.diameter +. float_of_int r.M.Graph_metrics.diameter;
      a.mean_path <- a.mean_path +. r.M.Graph_metrics.mean_path;
      (match r.M.Graph_metrics.theory_practice with
      | Some d ->
          a.tp_sum <- a.tp_sum +. d;
          a.tp_count <- a.tp_count + 1
      | None -> ());
      a.stranded <- a.stranded +. r.M.Graph_metrics.unreachable_theory;
      a.introverted <- a.introverted +. float_of_int r.M.Graph_metrics.introverted;
      a.score <- a.score +. r.M.Graph_metrics.crisis_score)
    seeds;
  let n = float_of_int (List.length seeds) in
  [
    Bench_util.f2 (a.deg /. n);
    Bench_util.f2 (a.giant /. n);
    Bench_util.f1 (a.diameter /. n);
    Bench_util.f2 (a.mean_path /. n);
    (if a.tp_count = 0 then "-"
     else Bench_util.f2 (a.tp_sum /. float_of_int a.tp_count));
    Printf.sprintf "%.0f%%" (100. *. a.stranded /. n);
    Bench_util.f2 (a.introverted /. n);
    Bench_util.f2 (a.score /. n);
  ]

let run () =
  Bench_util.header "Figure 2: normal applied science vs applied science in crisis";
  let seeds = List.init 200 (fun k -> 100 + k) in
  let base = { M.Research_graph.units = 60; mean_degree = 4.0; crisis = 0. } in
  let regimes =
    [
      ("healthy (crisis=0)", { base with M.Research_graph.crisis = 0. });
      ("strained (crisis=20)", { base with M.Research_graph.crisis = 20. });
      ("in crisis (crisis=40)", { base with M.Research_graph.crisis = 40. });
    ]
  in
  let rows =
    List.map (fun (label, params) -> label :: aggregate params seeds) regimes
  in
  Support.Table.print
    ~header:
      [
        "regime";
        "mean deg";
        "giant frac";
        "diameter";
        "mean path";
        "theory->practice";
        "stranded theory";
        "introverted";
        "crisis score";
      ]
    rows;
  print_newline ();
  Bench_util.note
    "The paper's claim holds: local structure (mean degree) is unchanged while";
  Bench_util.note
    "global connectivity degrades — a smaller giant component, longer and";
  Bench_util.note
    "sometimes broken paths from theory to practice, and introverted";
  Bench_util.note "(single-band) components: \"autistic theories and introverted products\".";
  print_newline ();
  (* crisis-score distribution overlap: how often would a single snapshot
     mislead?  ("the differences can escape detection for a long time") *)
  let scores params =
    List.map
      (fun seed ->
        let rng = Support.Rng.create seed in
        let g = M.Research_graph.generate rng params in
        (M.Graph_metrics.report g).M.Graph_metrics.crisis_score)
      seeds
  in
  let healthy = Array.of_list (scores (List.assoc "healthy (crisis=0)" regimes)) in
  let crisis = Array.of_list (scores (List.assoc "in crisis (crisis=40)" regimes)) in
  let threshold = Support.Stats.median (Array.append healthy crisis) in
  let misclassified =
    Array.fold_left (fun acc s -> if s >= threshold then acc + 1 else acc) 0 healthy
    + Array.fold_left (fun acc s -> if s < threshold then acc + 1 else acc) 0 crisis
  in
  Bench_util.note
    "single-snapshot diagnosis at the median threshold misclassifies %d/400 —"
    misclassified;
  Bench_util.note
    "global decay is visible statistically yet \"can escape detection\" case by case.";
  print_newline ();
  (* Figures 1 + 2 combined: the field's connectivity driven by the Kuhn
     stage machine *)
  Bench_util.note
    "Evolution: homophily driven by the Kuhn stages (crisis builds it,";
  Bench_util.note "revolution resets it) — crisis score over 400 steps:";
  let rng = Support.Rng.create 1995 in
  let snaps = M.Evolution.simulate rng M.Evolution.default_params ~steps:400 in
  let scores =
    Array.of_list (List.map (fun s -> s.M.Evolution.crisis_score) snaps)
  in
  print_endline (Support.Table.sparkline scores);
  let share stage =
    float_of_int
      (List.length (List.filter (fun s -> s.M.Evolution.stage = stage) snaps))
    /. 400.
  in
  Bench_util.note
    "time shares: normal %.2f, crisis %.2f, revolution %.2f; corr(stage, score) = %.2f"
    (share M.Kuhn.Normal) (share M.Kuhn.Crisis) (share M.Kuhn.Revolution)
    (M.Evolution.correlation_stage_score snaps)
