(* Bechamel micro-benchmarks of the hot paths: one Test.make per measured
   kernel, OLS-estimated ns/run printed as a table. *)

open Bechamel

module R = Relational
module D = Datalog
module Dep = Dependencies

let join_bench =
  let rng = Support.Rng.create 17 in
  let left_schema = R.Schema.make [ ("a", R.Value.TInt); ("k", R.Value.TInt) ] in
  let right_schema = R.Schema.make [ ("k", R.Value.TInt); ("b", R.Value.TInt) ] in
  let left = R.Generator.random_relation rng left_schema ~size:60 ~domain:20 in
  let right = R.Generator.random_relation rng right_schema ~size:60 ~domain:20 in
  Test.make ~name:"relation-hash-join-60x60"
    (Staged.stage (fun () -> ignore (R.Relation.join left right)))

let seminaive_bench =
  let edb = D.Workloads.chain ~n:24 in
  Test.make ~name:"seminaive-tc-chain24"
    (Staged.stage (fun () ->
         ignore (D.Seminaive.eval D.Workloads.transitive_closure edb)))

let magic_bench =
  let edb = D.Workloads.chain ~n:24 in
  let q = D.Parser.parse_query "path(0, X)" in
  Test.make ~name:"magic-tc-point-chain24"
    (Staged.stage (fun () ->
         ignore (D.Magic.query D.Workloads.transitive_closure_left edb q)))

let closure_bench =
  let fds = Dep.Fd.set_of_string "A -> BC; B -> E; CD -> EF; E -> A; F -> D" in
  Test.make ~name:"fd-closure"
    (Staged.stage (fun () ->
         ignore (Dep.Fd.closure (Dep.Attrs.of_string "AD") fds)))

let chase_bench =
  let universe = Dep.Attrs.of_string "ABCDE" in
  let fds = Dep.Fd.set_of_string "A -> B; BC -> D; D -> E" in
  let components =
    [ Dep.Attrs.of_string "AB"; Dep.Attrs.of_string "BCD"; Dep.Attrs.of_string "DE";
      Dep.Attrs.of_string "AC" ]
  in
  Test.make ~name:"chase-lossless-4-components"
    (Staged.stage (fun () ->
         ignore (Dep.Chase.lossless_join ~universe fds components)))

let dpll_bench =
  let rng = Support.Rng.create 5 in
  let cnf =
    List.init 120 (fun _ ->
        List.init 3 (fun _ ->
            let v = 1 + Support.Rng.int rng 30 in
            if Support.Rng.bool rng then v else -v))
  in
  Test.make ~name:"dpll-3cnf-30v-120c"
    (Staged.stage (fun () -> ignore (Sat.Dpll.solve cnf)))

let codd_bench =
  let rng = Support.Rng.create 23 in
  let schema = R.Schema.make [ ("src", R.Value.TInt); ("dst", R.Value.TInt) ] in
  let rows =
    List.init 50 (fun _ ->
        [ R.Value.Int (Support.Rng.int rng 25); R.Value.Int (Support.Rng.int rng 25) ])
  in
  let db = R.Database.of_list [ ("edge", R.Relation.of_list schema rows) ] in
  let query =
    {
      Calculus.Formula.head = [ "x"; "y" ];
      body =
        Calculus.Formula.Exists
          ( "z",
            Calculus.Formula.And
              ( Calculus.Formula.Atom
                  ("edge", [ Calculus.Formula.Var "x"; Calculus.Formula.Var "z" ]),
                Calculus.Formula.Atom
                  ("edge", [ Calculus.Formula.Var "z"; Calculus.Formula.Var "y" ])
              ) );
    }
  in
  Test.make ~name:"codd-translate-and-eval"
    (Staged.stage (fun () ->
         ignore (R.Eval.eval db (Calculus.To_algebra.translate_query db query))))

let two_pl_bench =
  let rng = Support.Rng.create 31 in
  let specs =
    Transactions.Workload.generate rng
      { Transactions.Workload.default with txns = 8; items = 16 }
  in
  Test.make ~name:"strict-2pl-8txns"
    (Staged.stage (fun () ->
         ignore (Transactions.Simulation.run (Transactions.Two_phase.create ()) specs)))

let tests =
  Test.make_grouped ~name:"dbmeta"
    [
      join_bench;
      seminaive_bench;
      magic_bench;
      closure_bench;
      chase_bench;
      dpll_bench;
      codd_bench;
      two_pl_bench;
    ]

let run () =
  Bench_util.header "Bechamel micro-benchmarks (OLS ns/run)";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> Float.nan
        in
        let r2 =
          match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan
        in
        (name, estimate, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
    |> List.map (fun (name, estimate, r2) ->
           [
             name;
             Printf.sprintf "%.0f" estimate;
             Printf.sprintf "%.3f" r2;
           ])
  in
  Support.Table.print ~header:[ "benchmark"; "ns/run"; "r²" ] rows
