lib/incomplete/table.ml: Array Hashtbl Int List Printf Relational Support
