lib/incomplete/naive_eval.mli: Relational Table
