lib/incomplete/table.mli: Relational
