lib/incomplete/naive_eval.ml: Array Int List Printf Relational Table
