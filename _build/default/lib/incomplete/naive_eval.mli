(** Naive evaluation over tables with nulls, and certain answers.

    The Imieliński–Lipski theorem: for positive queries (select-project-
    join-union with equality conditions), evaluating the query naively —
    treating each labelled null as a fresh distinct constant — and then
    discarding result rows that still contain nulls computes exactly the
    certain answers.  For queries with negation this fails, which
    {!certain_answers_bruteforce} demonstrates (and the tests check). *)

type db = (string * Table.t) list

exception Not_positive of string

val is_positive : Relational.Algebra.t -> bool
(** Rel, Singleton, Select (with Eq-only comparisons, And/Or), Project,
    Rename, Product, Join, Union. *)

val eval : db -> Relational.Algebra.t -> Table.t
(** Naive evaluation; raises {!Not_positive} outside the positive
    fragment and {!Relational.Algebra.Type_error} on schema errors. *)

val certain_answers : db -> Relational.Algebra.t -> Relational.Relation.t
(** Naive evaluation, keeping only null-free rows. *)

val certain_answers_bruteforce :
  db ->
  Relational.Algebra.t ->
  domain:Relational.Value.t list ->
  Relational.Relation.t
(** Ground truth by enumerating all valuations (CWA possible worlds) and
    intersecting the answers.  Any algebra operator allowed.  Exponential;
    testing/demo only.  To match the open-domain semantics of the
    Imieliński–Lipski theorem the supplied domain must contain at least
    one fresh constant per null label — with a saturated closed domain,
    tuples can be certain "by exhaustion" and the brute force will exceed
    the naive answers. *)

val possible_answers_bruteforce :
  db ->
  Relational.Algebra.t ->
  domain:Relational.Value.t list ->
  Relational.Relation.t
(** Union over the possible worlds. *)
