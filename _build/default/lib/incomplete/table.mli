(** Tables with labelled nulls (naive tables / v-tables) — the
    "incomplete information (basically null values …)" precursor tradition
    of §6 that "later developed into deductive databases".

    A cell is either a constant or a labelled null ⊥ᵢ; a table denotes the
    set of relations obtained by valuations of its nulls (open-world: any
    superset also qualifies under OWA — we implement the standard CWA
    semantics where the instance is exactly the valuated table). A Codd
    table is the special case where every null occurrence is distinct. *)

type cell = Const of Relational.Value.t | Null of int

type row = cell array

type t
(** A typed table: schema plus rows.  Nulls are untyped until valuated;
    the schema constrains the type a valuation may choose. *)

exception Table_error of string

val create : Relational.Schema.t -> row list -> t
(** Checks arity and that constant cells match the schema's types. *)

val schema : t -> Relational.Schema.t
val rows : t -> row list
val nulls : t -> int list
(** Distinct null labels, sorted. *)

val is_codd_table : t -> bool
(** No null label occurs twice. *)

val of_relation : Relational.Relation.t -> t

val to_relation : t -> Relational.Relation.t option
(** [Some] when the table is null-free. *)

val valuate : t -> (int -> Relational.Value.t) -> Relational.Relation.t
(** Applies a valuation to every null.  Raises {!Table_error} when the
    valuation assigns a value of the wrong type for a column. *)

val valuations :
  t -> domain:Relational.Value.t list -> (int -> Relational.Value.t) list
(** All valuations of the table's nulls into the finite domain (for
    brute-force possible-world semantics in tests and demos).
    Exponential, obviously. *)

val cell_equal : cell -> cell -> bool
(** Syntactic: constants by value, nulls by label. *)

val to_string : t -> string
