type cell = Const of Relational.Value.t | Null of int

type row = cell array

type t = { schema : Relational.Schema.t; table_rows : row list }

exception Table_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Table_error s)) fmt

module R = Relational

let check_row schema row =
  if Array.length row <> R.Schema.arity schema then
    err "row has arity %d, schema %s has arity %d" (Array.length row)
      (R.Schema.to_string schema) (R.Schema.arity schema);
  List.iteri
    (fun i ty ->
      match row.(i) with
      | Const v ->
          if R.Value.type_of v <> ty then
            err "cell %d: constant %s does not match column type %s" i
              (R.Value.to_literal v) (R.Value.ty_to_string ty)
      | Null _ -> ())
    (R.Schema.types schema)

let create schema rows =
  List.iter (check_row schema) rows;
  { schema; table_rows = rows }

let schema t = t.schema
let rows t = t.table_rows

let nulls t =
  List.concat_map
    (fun row ->
      Array.to_list row
      |> List.filter_map (function Null i -> Some i | Const _ -> None))
    t.table_rows
  |> List.sort_uniq Int.compare

let is_codd_table t =
  let seen = Hashtbl.create 16 in
  let duplicate = ref false in
  List.iter
    (Array.iter (function
      | Null i ->
          if Hashtbl.mem seen i then duplicate := true
          else Hashtbl.add seen i ()
      | Const _ -> ()))
    t.table_rows;
  not !duplicate

let of_relation rel =
  {
    schema = R.Relation.schema rel;
    table_rows =
      List.map (Array.map (fun v -> Const v)) (R.Relation.to_list rel);
  }

let to_relation t =
  if nulls t = [] then
    Some
      (R.Relation.of_tuples t.schema
         (List.map
            (Array.map (function Const v -> v | Null _ -> assert false))
            t.table_rows))
  else None

let valuate t valuation =
  let types = Array.of_list (R.Schema.types t.schema) in
  let tuples =
    List.map
      (fun row ->
        Array.mapi
          (fun i cell ->
            match cell with
            | Const v -> v
            | Null n ->
                let v = valuation n in
                if R.Value.type_of v <> types.(i) then
                  err "valuation maps null %d to %s, column %d expects %s" n
                    (R.Value.to_literal v) i
                    (R.Value.ty_to_string types.(i));
                v)
          row)
      t.table_rows
  in
  R.Relation.of_tuples t.schema tuples

let valuations t ~domain =
  let labels = nulls t in
  let rec assignments = function
    | [] -> [ [] ]
    | n :: rest ->
        let tails = assignments rest in
        List.concat_map
          (fun v -> List.map (fun tail -> (n, v) :: tail) tails)
          domain
    in
  List.map
    (fun assignment n ->
      match List.assoc_opt n assignment with
      | Some v -> v
      | None -> err "valuation: unknown null %d" n)
    (assignments labels)

let cell_equal a b =
  match (a, b) with
  | Const v, Const w -> R.Value.equal v w
  | Null i, Null j -> i = j
  | Const _, Null _ | Null _, Const _ -> false

let cell_to_string = function
  | Const v -> R.Value.to_string v
  | Null i -> Printf.sprintf "_%d" i

let to_string t =
  let header = R.Schema.attributes t.schema in
  let body =
    List.map
      (fun row -> Array.to_list (Array.map cell_to_string row))
      t.table_rows
  in
  Support.Table.render ~header body
