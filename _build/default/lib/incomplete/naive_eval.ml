module R = Relational
module A = R.Algebra

type db = (string * Table.t) list

exception Not_positive of string

let err fmt = Printf.ksprintf (fun s -> raise (Not_positive s)) fmt

let rec positive_predicate = function
  | A.True | A.False -> true
  | A.Cmp (A.Eq, _, _) -> true
  | A.Cmp ((A.Ne | A.Lt | A.Le | A.Gt | A.Ge), _, _) -> false
  | A.And (p, q) | A.Or (p, q) -> positive_predicate p && positive_predicate q
  | A.Not _ -> false

let rec is_positive = function
  | A.Rel _ | A.Singleton _ -> true
  | A.Select (p, e) -> positive_predicate p && is_positive e
  | A.Project (_, e) | A.Rename (_, e) -> is_positive e
  | A.Product (a, b) | A.Join (a, b) | A.Union (a, b) ->
      is_positive a && is_positive b
  | A.Inter _ | A.Diff _ | A.Divide _ -> false

let catalog_of_db db name =
  match List.assoc_opt name db with
  | Some table -> Table.schema table
  | None -> raise (A.Type_error (Printf.sprintf "unknown table %S" name))

let dedup rows = List.sort_uniq compare rows

let eval db expr =
  let catalog = catalog_of_db db in
  let rec go expr : Table.t =
    match expr with
    | A.Rel name -> (
        match List.assoc_opt name db with
        | Some table -> table
        | None -> raise (A.Type_error (Printf.sprintf "unknown table %S" name)))
    | A.Singleton bindings ->
        let schema =
          R.Schema.make
            (List.map (fun (a, v) -> (a, R.Value.type_of v)) bindings)
        in
        Table.create schema
          [ Array.of_list (List.map (fun (_, v) -> Table.Const v) bindings) ]
    | A.Select (p, e) ->
        if not (positive_predicate p) then
          err "selection predicate %s is outside the positive fragment"
            (A.predicate_to_string p);
        let t = go e in
        let schema = Table.schema t in
        let cell_of row = function
          | A.Attr a -> row.(R.Schema.index_of schema a)
          | A.Const v -> Table.Const v
        in
        let rec holds row = function
          | A.True -> true
          | A.False -> false
          | A.Cmp (A.Eq, l, r) -> Table.cell_equal (cell_of row l) (cell_of row r)
          | A.And (p, q) -> holds row p && holds row q
          | A.Or (p, q) -> holds row p || holds row q
          | A.Cmp _ | A.Not _ -> assert false
        in
        Table.create schema (List.filter (fun row -> holds row p) (Table.rows t))
    | A.Project (attrs, e) ->
        let t = go e in
        let schema = Table.schema t in
        let positions =
          Array.of_list (List.map (R.Schema.index_of schema) attrs)
        in
        Table.create
          (R.Schema.project schema attrs)
          (dedup
             (List.map
                (fun row -> Array.map (fun i -> row.(i)) positions)
                (Table.rows t)))
    | A.Rename (mapping, e) ->
        let t = go e in
        Table.create (R.Schema.rename (Table.schema t) mapping) (Table.rows t)
    | A.Product (a, b) ->
        let ta = go a and tb = go b in
        let schema = R.Schema.product (Table.schema ta) (Table.schema tb) in
        Table.create schema
          (List.concat_map
             (fun ra -> List.map (fun rb -> Array.append ra rb) (Table.rows tb))
             (Table.rows ta))
    | A.Join (a, b) ->
        let ta = go a and tb = go b in
        let sa = Table.schema ta and sb = Table.schema tb in
        let shared = R.Schema.common sa sb in
        let schema = R.Schema.join sa sb in
        let pos_a = List.map (R.Schema.index_of sa) shared in
        let pos_b = List.map (R.Schema.index_of sb) shared in
        let rest_b =
          List.filter (fun n -> not (List.mem n shared)) (R.Schema.attributes sb)
        in
        let rest_pos_b = List.map (R.Schema.index_of sb) rest_b in
        let rows =
          List.concat_map
            (fun ra ->
              List.filter_map
                (fun rb ->
                  let matches =
                    List.for_all2
                      (fun i j -> Table.cell_equal ra.(i) rb.(j))
                      pos_a pos_b
                  in
                  if matches then
                    Some
                      (Array.append ra
                         (Array.of_list (List.map (fun j -> rb.(j)) rest_pos_b)))
                  else None)
                (Table.rows tb))
            (Table.rows ta)
        in
        Table.create schema (dedup rows)
    | A.Union (a, b) ->
        let ta = go a and tb = go b in
        let sa = Table.schema ta and sb = Table.schema tb in
        if not (R.Schema.union_compatible sa sb) then
          raise
            (A.Type_error
               (Printf.sprintf "union of incompatible schemas %s and %s"
                  (R.Schema.to_string sa) (R.Schema.to_string sb)));
        let positions = R.Schema.positions_of sa sb in
        let aligned =
          List.map
            (fun row -> Array.map (fun i -> row.(i)) positions)
            (Table.rows tb)
        in
        Table.create sa (dedup (Table.rows ta @ aligned))
    | A.Inter _ | A.Diff _ | A.Divide _ ->
        err "operator outside the positive fragment: %s" (A.to_string expr)
  in
  (* type-check against the table catalog first for uniform errors *)
  let (_ : R.Schema.t) = A.schema_of catalog expr in
  go expr

let certain_answers db expr =
  let t = eval db expr in
  let null_free =
    List.filter
      (Array.for_all (function Table.Const _ -> true | Table.Null _ -> false))
      (Table.rows t)
  in
  R.Relation.of_tuples (Table.schema t)
    (List.map
       (Array.map (function Table.Const v -> v | Table.Null _ -> assert false))
       null_free)

(* --- brute force over possible worlds ------------------------------------- *)

let worlds db ~domain =
  (* collect null labels across the whole database *)
  let all_labels =
    List.concat_map (fun (_, t) -> Table.nulls t) db
    |> List.sort_uniq Int.compare
  in
  let rec assignments = function
    | [] -> [ [] ]
    | n :: rest ->
        let tails = assignments rest in
        List.concat_map
          (fun v -> List.map (fun tail -> (n, v) :: tail) tails)
          domain
  in
  List.filter_map
    (fun assignment ->
      let valuation n = List.assoc n assignment in
      match
        List.map (fun (name, t) -> (name, Table.valuate t valuation)) db
      with
      | bindings -> Some (R.Database.of_list bindings)
      | exception Table.Table_error _ -> None (* ill-typed valuation *))
    (assignments all_labels)

let certain_answers_bruteforce db expr ~domain =
  match worlds db ~domain with
  | [] ->
      raise
        (Table.Table_error
           "no valid possible world: domain cannot valuate the nulls")
  | first :: rest ->
      List.fold_left
        (fun acc world -> R.Relation.inter acc (R.Eval.eval world expr))
        (R.Eval.eval first expr) rest

let possible_answers_bruteforce db expr ~domain =
  match worlds db ~domain with
  | [] ->
      raise
        (Table.Table_error
           "no valid possible world: domain cannot valuate the nulls")
  | first :: rest ->
      List.fold_left
        (fun acc world -> R.Relation.union acc (R.Eval.eval world expr))
        (R.Eval.eval first expr) rest
