type stage = Immature | Normal | Crisis | Revolution

let stages = [ Immature; Normal; Crisis; Revolution ]

let stage_to_string = function
  | Immature -> "immature science"
  | Normal -> "normal science"
  | Crisis -> "crisis"
  | Revolution -> "revolution"

let transitions =
  [
    (Immature, Immature);
    (Immature, Normal);
    (Normal, Normal);
    (Normal, Crisis);
    (Crisis, Crisis);
    (Crisis, Normal);  (* anomalies absorbed, no revolution *)
    (Crisis, Revolution);
    (Revolution, Normal);  (* the new paradigm settles *)
  ]

let can_transition a b = List.mem (a, b) transitions

type params = {
  anomaly_rate : float;
  resolution_rate : float;
  crisis_threshold : int;
  revolution_rate : float;
  remission_rate : float;
  maturation_rate : float;
}

let default_params =
  {
    anomaly_rate = 0.25;
    resolution_rate = 0.18;
    crisis_threshold = 5;
    revolution_rate = 0.15;
    remission_rate = 0.05;
    maturation_rate = 0.3;
  }

type state = { stage : stage; anomalies : int; revolutions : int }

let initial = { stage = Immature; anomalies = 0; revolutions = 0 }

let chance rng p = Support.Rng.float rng 1.0 < p

let step rng params state =
  match state.stage with
  | Immature ->
      if chance rng params.maturation_rate then { state with stage = Normal }
      else state
  | Normal ->
      let anomalies =
        let gained = if chance rng params.anomaly_rate then 1 else 0 in
        let lost =
          if state.anomalies > 0 && chance rng params.resolution_rate then 1
          else 0
        in
        state.anomalies + gained - lost
      in
      if anomalies >= params.crisis_threshold then
        { state with stage = Crisis; anomalies }
      else { state with anomalies }
  | Crisis ->
      if chance rng params.revolution_rate then
        { state with stage = Revolution }
      else if chance rng params.remission_rate then
        (* the community sweeps the anomalies under the rug *)
        { state with stage = Normal; anomalies = 0 }
      else
        { state with anomalies = state.anomalies + (if chance rng params.anomaly_rate then 1 else 0) }
  | Revolution ->
      (* the victorious paradigm resets the anomaly count *)
      { stage = Normal; anomalies = 0; revolutions = state.revolutions + 1 }

let simulate rng params ~steps =
  let rec go acc state n =
    if n = 0 then List.rev acc
    else begin
      let state' = step rng params state in
      go (state' :: acc) state' (n - 1)
    end
  in
  go [] initial steps

type summary = {
  share : (stage * float) list;
  revolution_count : int;
  mean_crisis_length : float;
}

let summarize trajectory =
  let n = max 1 (List.length trajectory) in
  let count stage =
    List.length (List.filter (fun s -> s.stage = stage) trajectory)
  in
  let share =
    List.map
      (fun stage -> (stage, float_of_int (count stage) /. float_of_int n))
      stages
  in
  let revolution_count =
    match List.rev trajectory with [] -> 0 | last :: _ -> last.revolutions
  in
  (* average length of maximal crisis runs *)
  let runs, current =
    List.fold_left
      (fun (runs, current) s ->
        if s.stage = Crisis then (runs, current + 1)
        else if current > 0 then (current :: runs, 0)
        else (runs, 0))
      ([], 0) trajectory
  in
  let runs = if current > 0 then current :: runs else runs in
  let mean_crisis_length =
    match runs with
    | [] -> 0.
    | _ ->
        float_of_int (List.fold_left ( + ) 0 runs)
        /. float_of_int (List.length runs)
  in
  { share; revolution_count; mean_crisis_length }

let diagram () =
  String.concat "\n"
    [
      "  [immature science]";
      "          |";
      "          v";
      "  [normal science] <-------------.";
      "          |                      |";
      "    anomalies accumulate         |";
      "          v                      |";
      "      [crisis] --(absorbed)------|";
      "          |                      |";
      "    new ingenuity competes       |";
      "          v                      |";
      "    [revolution] ----------------'";
      "";
    ]
