type program = { name : string; potential : float; difficulty : float }

let success_probability p n =
  if n <= 0. then 0. else p.potential *. n /. (n +. p.difficulty)

let expected_credit p n =
  if n <= 0. then
    (* the first researcher to defect claims the marginal credit *)
    p.potential /. (1. +. p.difficulty)
  else success_probability p n /. n

type state = { allocation : float; total : float }

let credit_dynamics_step p1 p2 ~dt state =
  let n1 = state.allocation in
  let n2 = state.total -. n1 in
  let c1 = expected_credit p1 n1 and c2 = expected_credit p2 n2 in
  (* flow proportional to the credit differential, clamped to the box *)
  let flow = dt *. state.total *. (c1 -. c2) in
  let n1' = Float.max 0. (Float.min state.total (n1 +. flow)) in
  { state with allocation = n1' }

let equilibrium ?(steps = 10_000) p1 p2 ~total =
  let rec go state n =
    if n = 0 then state
    else go (credit_dynamics_step p1 p2 ~dt:0.05 state) (n - 1)
  in
  go { allocation = total /. 2.; total } steps

let community_success p1 p2 state =
  success_probability p1 state.allocation
  +. success_probability p2 (state.total -. state.allocation)

let optimal_allocation ?(grid = 1000) p1 p2 ~total =
  let best = ref { allocation = 0.; total } in
  let best_value = ref (community_success p1 p2 !best) in
  for i = 1 to grid do
    let state = { allocation = total *. float_of_int i /. float_of_int grid; total } in
    let value = community_success p1 p2 state in
    if value > !best_value then begin
      best := state;
      best_value := value
    end
  done;
  !best
