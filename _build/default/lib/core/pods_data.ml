type area =
  | Relational_theory
  | Transaction_processing
  | Logic_databases
  | Complex_objects
  | Data_structures

let areas =
  [
    Relational_theory;
    Transaction_processing;
    Logic_databases;
    Complex_objects;
    Data_structures;
  ]

let area_to_string = function
  | Relational_theory -> "relational theory"
  | Transaction_processing -> "transaction processing"
  | Logic_databases -> "logic databases"
  | Complex_objects -> "complex objects"
  | Data_structures -> "data structures"

let years = Array.init 14 (fun i -> 1982 + i)

let printed_logic_series = [| 10.; 14.; 9.; 18.; 13.; 16.; 14. |]

(* 1982 .. 1995.  Logic databases: zero before 1985 ("timid and scattered
   representation" of its precursors is counted under the precursor
   themes), a small 1985 precursor burst, then the printed 1986-1992
   block, then the "definite signs of waning". *)
let logic_databases =
  Array.append
    (Array.append [| 0.; 0.; 1.; 4. |] printed_logic_series)
    [| 10.; 8.; 7. |]

(* Relational theory: dominant at the start ("two major research
   traditions ... almost to the exclusion of anything else"), with a
   large but finite intellectual content that runs out. *)
let relational_theory =
  [| 16.; 14.; 15.; 12.; 10.; 11.; 8.; 7.; 5.; 6.; 4.; 4.; 3.; 3. |]

(* Transaction processing: the other early tradition, declining with the
   two-year wobble the paper attributes to program committees. *)
let transaction_processing =
  [| 12.; 9.; 13.; 8.; 10.; 5.; 8.; 4.; 6.; 3.; 5.; 2.; 3.; 2. |]

(* Complex objects (object-oriented, spatial, constraint): "non-flat data
   models ... evolved into the currently important category", rising late. *)
let complex_objects =
  [| 1.; 1.; 2.; 2.; 3.; 4.; 5.; 6.; 8.; 9.; 11.; 12.; 13.; 14. |]

(* Data structures and access methods: "the modest presence they would
   maintain throughout the fourteen years". *)
let data_structures =
  [| 3.; 2.; 3.; 3.; 2.; 3.; 3.; 2.; 3.; 3.; 2.; 3.; 3.; 3. |]

let raw_series = function
  | Relational_theory -> relational_theory
  | Transaction_processing -> transaction_processing
  | Logic_databases -> logic_databases
  | Complex_objects -> complex_objects
  | Data_structures -> data_structures

let all_series = List.map (fun a -> (a, raw_series a)) areas
