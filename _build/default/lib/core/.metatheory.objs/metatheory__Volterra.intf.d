lib/core/volterra.mli: Support
