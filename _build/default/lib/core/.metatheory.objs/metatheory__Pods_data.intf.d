lib/core/pods_data.mli:
