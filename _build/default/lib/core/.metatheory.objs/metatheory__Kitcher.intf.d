lib/core/kitcher.mli:
