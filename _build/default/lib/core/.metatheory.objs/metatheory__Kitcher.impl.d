lib/core/kitcher.ml: Float
