lib/core/evolution.mli: Kuhn Support
