lib/core/committee.ml: Array Float List Support
