lib/core/research_graph.ml: Array Float List Support
