lib/core/timeseries.mli:
