lib/core/graph_metrics.ml: Array Float Fun Int List Option Queue Research_graph
