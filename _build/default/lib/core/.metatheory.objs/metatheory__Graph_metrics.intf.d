lib/core/graph_metrics.mli: Research_graph
