lib/core/timeseries.ml: Array Int List Support
