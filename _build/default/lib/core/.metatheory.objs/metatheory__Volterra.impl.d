lib/core/volterra.ml: Array Float List Support
