lib/core/research_graph.mli: Support
