lib/core/evolution.ml: Array Float Graph_metrics Kuhn List Research_graph Support
