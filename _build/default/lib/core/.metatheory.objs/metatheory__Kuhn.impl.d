lib/core/kuhn.ml: List String Support
