lib/core/kuhn.mli: Support
