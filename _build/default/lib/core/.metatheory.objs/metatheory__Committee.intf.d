lib/core/committee.mli: Support
