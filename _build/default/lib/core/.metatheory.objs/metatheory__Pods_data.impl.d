lib/core/pods_data.ml: Array List
