(** The PODS retrospective dataset behind Figure 3: papers per area,
    1982–1995.

    The paper prints one raw series verbatim — Logic Databases 1986–1992:
    10, 14, 9, 18, 13, 16, 14 — and describes the others qualitatively
    (Section 6).  The remaining series are synthesized to match that
    narrative; DESIGN.md documents the substitution.  The figure itself
    plots {e two-year averages} ("single-year data would be too jerky to
    display, mostly because of a strong two-year harmonic"). *)

type area =
  | Relational_theory
  | Transaction_processing
  | Logic_databases
  | Complex_objects
  | Data_structures

val areas : area list
val area_to_string : area -> string

val years : int array
(** 1982 … 1995. *)

val raw_series : area -> float array
(** Papers per year, aligned with {!years}. *)

val printed_logic_series : float array
(** The seven values the paper prints for 1986–1992, verbatim. *)

val all_series : (area * float array) list
