(** Time-series analysis of the PODS retrospective: the two-year
    smoothing of Figure 3, the two-year harmonic ("program committees
    have a one-year memory"), peaks, and succession ("the decline of the
    prey brings about the decline of the predator"). *)

val two_year_average : float array -> float array
(** Exactly the smoothing the figure applies (trailing window of 2). *)

val committee_harmonic : float array -> float
(** Spectral strength of the period-2 oscillation relative to variance
    (see {!Support.Stats.harmonic_strength}). *)

val lag1_autocorrelation : float array -> float
(** Strongly negative for a committee-driven alternation. *)

val peak_year : years:int array -> float array -> int
(** Year of the maximum (first one on ties). *)

val crossovers :
  years:int array -> float array -> float array -> (int * [ `First_overtakes | `Second_overtakes ]) list
(** Years where the sign of (first − second) flips. *)

val succession_order : years:int array -> (string * float array) list -> (string * int) list
(** Areas sorted by peak year — the ecological succession of research
    traditions. *)

val trend : float array -> [ `Rising | `Falling | `Flat ]
(** Sign of the least-squares slope with a deadband of ±0.15/yr. *)
