module Ode = Support.Ode

type predator_prey = {
  prey_growth : float;
  predation : float;
  conversion : float;
  predator_death : float;
}

let predator_prey_system p _t y =
  let x = y.(0) and pred = y.(1) in
  [|
    x *. (p.prey_growth -. (p.predation *. pred));
    pred *. ((p.conversion *. x) -. p.predator_death);
  |]

let integrate_predator_prey p ~x0 ~y0 ~t1 ~steps =
  Ode.integrate (predator_prey_system p) ~y0:[| x0; y0 |] ~t0:0. ~t1 ~steps

type competition = {
  growth : float array;
  capacity : float array;
  pressure : float array array;
}

let competition_system c _t y =
  Array.mapi
    (fun i ni ->
      let crowding = ref 0. in
      Array.iteri (fun j nj -> crowding := !crowding +. (c.pressure.(i).(j) *. nj)) y;
      c.growth.(i) *. ni *. (1. -. (!crowding /. c.capacity.(i))))
    y

type fit = {
  params : predator_prey;
  x0 : float;
  y0 : float;
  sse : float;
  prey_fit : float array;
  predator_fit : float array;
}

let sample_model p ~x0 ~y0 ~n =
  let t1 = float_of_int (n - 1) in
  let trajectory = integrate_predator_prey p ~x0 ~y0 ~t1 ~steps:(n * 8) in
  let times = Array.init n float_of_int in
  let samples = Ode.sample_at trajectory ~times in
  (Array.map (fun s -> s.(0)) samples, Array.map (fun s -> s.(1)) samples)

let fit_predator_prey ~prey ~predator =
  let n = Array.length prey in
  assert (n = Array.length predator && n >= 2);
  let best = ref None in
  let consider params ~x0 ~y0 =
    let prey_fit, predator_fit = sample_model params ~x0 ~y0 ~n in
    if Array.for_all Float.is_finite prey_fit
       && Array.for_all Float.is_finite predator_fit
    then begin
      let sse =
        Support.Stats.sum_squared_error prey prey_fit
        +. Support.Stats.sum_squared_error predator predator_fit
      in
      match !best with
      | Some b when b.sse <= sse -> ()
      | _ -> best := Some { params; x0; y0; sse; prey_fit; predator_fit }
    end
  in
  let grid = [ 0.05; 0.1; 0.2; 0.4 ] in
  let scaled = [ 0.005; 0.01; 0.02; 0.04 ] in
  List.iter
    (fun prey_growth ->
      List.iter
        (fun predation ->
          List.iter
            (fun conversion ->
              List.iter
                (fun predator_death ->
                  let params =
                    { prey_growth; predation; conversion; predator_death }
                  in
                  consider params ~x0:prey.(0)
                    ~y0:(Float.max 0.5 predator.(0)))
                grid)
            scaled)
        scaled)
    grid;
  match !best with
  | Some fit -> fit
  | None ->
      (* cannot happen: the grids are non-empty and finite trajectories
         exist for small rates *)
      assert false
