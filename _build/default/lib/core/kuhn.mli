(** Kuhn's stages of the scientific process (Figure 1), as an explicit
    state machine plus an anomaly-accumulation simulation.

    The figure's cycle: immature science → normal science → crisis →
    revolution → normal science, with crises occasionally resolved back
    into normal science without a revolution. *)

type stage = Immature | Normal | Crisis | Revolution

val stages : stage list
val stage_to_string : stage -> string

val transitions : (stage * stage) list
(** The arrows of Figure 1. *)

val can_transition : stage -> stage -> bool

type params = {
  anomaly_rate : float;  (** probability an anomaly accrues per step *)
  resolution_rate : float;  (** probability normal science absorbs one *)
  crisis_threshold : int;  (** anomalies that trigger a crisis *)
  revolution_rate : float;  (** per-step chance a crisis turns revolution *)
  remission_rate : float;  (** per-step chance a crisis resolves quietly *)
  maturation_rate : float;  (** immature science → first paradigm *)
}

val default_params : params

type state = { stage : stage; anomalies : int; revolutions : int }

val initial : state

val step : Support.Rng.t -> params -> state -> state
(** One simulation step; every stage change follows {!transitions}
    (property-tested). *)

val simulate : Support.Rng.t -> params -> steps:int -> state list
(** Trajectory of [steps] states after {!initial}. *)

type summary = {
  share : (stage * float) list;  (** fraction of time in each stage *)
  revolution_count : int;
  mean_crisis_length : float;
}

val summarize : state list -> summary

val diagram : unit -> string
(** ASCII rendering of Figure 1. *)
