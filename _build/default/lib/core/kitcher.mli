(** Kitcher's population model of cognitive diversity (footnote 11):
    "Philip Kitcher [Ki] uses a simple population genetics model to argue
    that such diversity is beneficial and inevitable."

    A community of researchers splits effort between two research
    programs.  The community's chance of success on each program is a
    concave function of the workers assigned to it, and individual
    researchers chase expected {e credit} — the program's success
    probability divided by the number of people they would share it with.
    Credit-chasing drives the population to a mixed allocation (diversity
    is individually rational), and for concave returns the mixed
    allocation also maximizes the {e community's} total success —
    diversity is beneficial.  Both claims are property-tested. *)

type program = {
  name : string;
  potential : float;  (** asymptotic success probability, in (0,1] *)
  difficulty : float;  (** workers needed to reach half potential *)
}

val success_probability : program -> float -> float
(** [p(n) = potential · n / (n + difficulty)]: concave, increasing,
    0 at 0. *)

val expected_credit : program -> float -> float
(** Per-worker credit [p(n)/n] when [n] workers join. *)

type state = { allocation : float; total : float }
(** [allocation] = workers on the first program; the rest work on the
    second. *)

val credit_dynamics_step : program -> program -> dt:float -> state -> state
(** Replicator-style step: workers flow toward the program whose marginal
    credit is higher. *)

val equilibrium : ?steps:int -> program -> program -> total:float -> state
(** Iterate the dynamics from an even split until it settles. *)

val community_success : program -> program -> state -> float
(** p₁(n₁) + p₂(n₂): expected number of solved problems. *)

val optimal_allocation : ?grid:int -> program -> program -> total:float -> state
(** Best allocation for the community, by grid search. *)
