(** Lotka–Volterra dynamics for research traditions.

    "Actually the graphs very much recall solutions to Volterra equations
    for an isolated ecosystem with very aggressive predators [Sig].  The
    decline of the prey brings about the decline of the predator" (§6) —
    relational theory as the prey, logic databases as the predator.  The
    module integrates the classic predator–prey system, the competition
    variant the paper prefers on reflection ("species competing for space
    but depending on different food sources"), and fits the predator–prey
    model to the PODS series by grid search. *)

type predator_prey = {
  prey_growth : float;  (** α *)
  predation : float;  (** β *)
  conversion : float;  (** δ *)
  predator_death : float;  (** γ *)
}

val predator_prey_system : predator_prey -> Support.Ode.system
(** dx/dt = x(α − βy);  dy/dt = y(δx − γ). *)

val integrate_predator_prey :
  predator_prey ->
  x0:float ->
  y0:float ->
  t1:float ->
  steps:int ->
  (float * float array) array

type competition = {
  growth : float array;  (** rᵢ *)
  capacity : float array;  (** Kᵢ *)
  pressure : float array array;  (** aᵢⱼ *)
}

val competition_system : competition -> Support.Ode.system
(** dNᵢ/dt = rᵢNᵢ(1 − Σⱼ aᵢⱼNⱼ / Kᵢ). *)

type fit = {
  params : predator_prey;
  x0 : float;
  y0 : float;
  sse : float;  (** against the two data series *)
  prey_fit : float array;  (** model sampled at the data years *)
  predator_fit : float array;
}

val fit_predator_prey :
  prey:float array -> predator:float array -> fit
(** Coarse grid search over the four rates and the initial densities;
    deterministic. *)
