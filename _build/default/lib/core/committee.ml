type params = { overcorrection : float; noise : float }

let simulate ?rng params ~interest =
  let n = Array.length interest in
  let out = Array.make n 0. in
  let noise_at _i =
    match rng with
    | Some rng when params.noise > 0. ->
        1. +. ((Support.Rng.float rng 2. -. 1.) *. params.noise)
    | _ -> 1.
  in
  for t = 0 to n - 1 do
    let target = Float.max 1e-6 interest.(t) in
    let propensity =
      if t = 0 then 1.
      else begin
        let excess = (out.(t - 1) -. target) /. target in
        Float.max 0. (Float.min 2. (1. -. (params.overcorrection *. excess)))
      end
    in
    out.(t) <- Float.max 0. (propensity *. interest.(t) *. noise_at t)
  done;
  out

let hump ~years ~peak =
  Array.init years (fun t ->
      let x = float_of_int t /. float_of_int (years - 1) in
      (* smooth rise and fall, maximum [peak] in the middle *)
      peak *. 4. *. x *. (1. -. x))

let harmonic_response ~gammas ~interest =
  List.map
    (fun gamma ->
      let series = simulate { overcorrection = gamma; noise = 0. } ~interest in
      (gamma, Support.Stats.harmonic_strength series 2))
    gammas
