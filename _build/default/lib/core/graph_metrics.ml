module G = Research_graph

let bfs_distances g source =
  let n = G.size g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      g.G.adjacency.(u)
  done;
  dist

let components g =
  let n = G.size g in
  let seen = Array.make n false in
  let comps = ref [] in
  for i = 0 to n - 1 do
    if not seen.(i) then begin
      let dist = bfs_distances g i in
      let comp = ref [] in
      Array.iteri
        (fun j d ->
          if d >= 0 && not seen.(j) then begin
            seen.(j) <- true;
            comp := j :: !comp
          end)
        dist;
      comps := List.rev !comp :: !comps
    end
  done;
  List.sort
    (fun a b -> Int.compare (List.length b) (List.length a))
    !comps

let giant g = match components g with [] -> [] | c :: _ -> c

let giant_fraction g =
  if G.size g = 0 then 0.
  else float_of_int (List.length (giant g)) /. float_of_int (G.size g)

let diameter_of_giant g =
  let comp = giant g in
  List.fold_left
    (fun acc u ->
      let dist = bfs_distances g u in
      List.fold_left (fun acc v -> max acc dist.(v)) acc comp)
    0 comp

let mean_path_length_of_giant g =
  let comp = giant g in
  let total = ref 0 and pairs = ref 0 in
  List.iter
    (fun u ->
      let dist = bfs_distances g u in
      List.iter
        (fun v ->
          if v <> u then begin
            total := !total + dist.(v);
            incr pairs
          end)
        comp)
    comp;
  if !pairs = 0 then 0. else float_of_int !total /. float_of_int !pairs

let band_indices g kind =
  let out = ref [] in
  Array.iteri
    (fun i x -> if G.kind_of x = kind then out := i :: !out)
    g.G.theoreticity;
  List.rev !out

let theory_practice_distances g =
  let theory = band_indices g G.Theory in
  let practice = band_indices g G.Practice in
  List.map
    (fun t ->
      let dist = bfs_distances g t in
      let reachable =
        List.filter_map
          (fun p -> if dist.(p) >= 0 then Some dist.(p) else None)
          practice
      in
      match reachable with
      | [] -> None
      | ds -> Some (List.fold_left min max_int ds))
    theory

let theory_practice_distance g =
  let ds = theory_practice_distances g in
  if ds = [] || List.exists Option.is_none ds then None
  else begin
    let values = List.filter_map Fun.id ds in
    Some
      (float_of_int (List.fold_left ( + ) 0 values)
      /. float_of_int (List.length values))
  end

let unreachable_theory_fraction g =
  let ds = theory_practice_distances g in
  if ds = [] then 0.
  else
    float_of_int (List.length (List.filter Option.is_none ds))
    /. float_of_int (List.length ds)

let introverted_components g =
  components g
  |> List.filter (fun comp ->
         List.length comp >= 2
         &&
         let kinds =
           List.sort_uniq compare
             (List.map (fun i -> G.kind_of g.G.theoreticity.(i)) comp)
         in
         List.length kinds = 1)
  |> List.length

type report = {
  units : int;
  mean_degree : float;
  giant : float;
  diameter : int;
  mean_path : float;
  theory_practice : float option;
  unreachable_theory : float;
  introverted : int;
  crisis_score : float;
}

let crisis_score r =
  let fragmentation = 1. -. r.giant in
  let distance =
    match r.theory_practice with
    | None -> 1.
    | Some d -> Float.min 1. (d /. 10.)
  in
  let introversion =
    Float.min 1. (float_of_int r.introverted /. 5.)
  in
  (2. *. fragmentation)
  +. distance +. introversion
  +. (2. *. r.unreachable_theory)

let report g =
  let base =
    {
      units = G.size g;
      mean_degree = G.mean_degree g;
      giant = giant_fraction g;
      diameter = diameter_of_giant g;
      mean_path = mean_path_length_of_giant g;
      theory_practice = theory_practice_distance g;
      unreachable_theory = unreachable_theory_fraction g;
      introverted = introverted_components g;
      crisis_score = 0.;
    }
  in
  { base with crisis_score = crisis_score base }
