(** A generative model for the two-year harmonic of Figure 3.

    Footnote 10: "What has a one-year memory in science?  Program
    committees!  I think we are seeing here the work of committees trying
    to correct 'excesses' (in one direction or the other) of the previous
    committee."

    Model: an area has a slowly varying underlying interest [I(t)]; each
    year's committee accepts [a(t) = p(t) · I(t)] papers, where the
    acceptance propensity over-corrects against last year's outcome:
    [p(t) = clamp(1 − γ·(a(t−1) − I(t))/I(t))].  With γ = 0 the counts
    track the interest; past γ ≈ 1 the correction overshoots and a stable
    period-2 oscillation appears — exactly the harmonic the paper reads
    off the raw PODS counts. *)

type params = {
  overcorrection : float;  (** γ ≥ 0 *)
  noise : float;  (** i.i.d. multiplicative noise amplitude (0 = none) *)
}

val simulate :
  ?rng:Support.Rng.t -> params -> interest:float array -> float array
(** Accepted-paper counts, one per year; [interest] supplies the slowly
    varying true interest level (e.g. a hump like the logic-database
    boom). *)

val hump : years:int -> peak:float -> float array
(** A smooth rise-and-fall interest profile, for demos. *)

val harmonic_response : gammas:float list -> interest:float array -> (float * float) list
(** For each γ, the measured period-2 harmonic strength of the simulated
    counts — the dose-response curve linking committee overcorrection to
    the Figure-3 wobble. *)
