module Stats = Support.Stats

let two_year_average xs = Stats.moving_average xs 2

let committee_harmonic xs = Stats.harmonic_strength xs 2

let lag1_autocorrelation xs = Stats.autocorrelation xs 1

let peak_year ~years xs =
  assert (Array.length years = Array.length xs);
  let best = ref 0 in
  Array.iteri (fun i x -> if x > xs.(!best) then best := i) xs;
  years.(!best)

let crossovers ~years first second =
  assert (Array.length first = Array.length second);
  let n = Array.length first in
  let flips = ref [] in
  for i = 1 to n - 1 do
    let before = first.(i - 1) -. second.(i - 1) in
    let after = first.(i) -. second.(i) in
    if before <= 0. && after > 0. then
      flips := (years.(i), `First_overtakes) :: !flips
    else if before >= 0. && after < 0. then
      flips := (years.(i), `Second_overtakes) :: !flips
  done;
  List.rev !flips

let succession_order ~years named_series =
  List.map (fun (name, xs) -> (name, peak_year ~years xs)) named_series
  |> List.sort (fun (_, a) (_, b) -> Int.compare a b)

let trend xs =
  let n = Array.length xs in
  if n < 2 then `Flat
  else begin
    let times = Array.init n float_of_int in
    let slope, _ = Stats.linear_fit times xs in
    if slope > 0.15 then `Rising else if slope < -0.15 then `Falling else `Flat
  end
