type unit_kind = Theory | Middle | Practice

type t = { theoreticity : float array; adjacency : int list array }

let size g = Array.length g.theoreticity

let kind_of x =
  if x > 2. /. 3. then Theory else if x < 1. /. 3. then Practice else Middle

type params = { units : int; mean_degree : float; crisis : float }

let generate rng params =
  let n = params.units in
  assert (n >= 2);
  let theoreticity =
    (* deterministic spread plus a small jitter: guarantees both ends of
       the spectrum are populated at any size *)
    Array.init n (fun i ->
        let base = float_of_int i /. float_of_int (n - 1) in
        let jitter = (Support.Rng.float rng 0.06) -. 0.03 in
        Float.max 0. (Float.min 1. (base +. jitter)))
  in
  (* raw affinity of a pair: 1 when healthy, exponentially damped by
     spectrum distance under crisis *)
  let affinity i j =
    Float.exp (-.params.crisis *. Float.abs (theoreticity.(i) -. theoreticity.(j)))
  in
  (* normalize so the expected number of edges yields the requested mean
     degree: sum over pairs of p * affinity = n * mean_degree / 2 *)
  let total_affinity = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      total_affinity := !total_affinity +. affinity i j
    done
  done;
  let target_edges = float_of_int n *. params.mean_degree /. 2. in
  let scale = if !total_affinity = 0. then 0. else target_edges /. !total_affinity in
  let adjacency = Array.make n [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = Float.min 1.0 (scale *. affinity i j) in
      if Support.Rng.float rng 1.0 < p then begin
        adjacency.(i) <- j :: adjacency.(i);
        adjacency.(j) <- i :: adjacency.(j)
      end
    done
  done;
  { theoreticity; adjacency }

let edge_count g =
  Array.fold_left (fun acc l -> acc + List.length l) 0 g.adjacency / 2

let mean_degree g =
  if size g = 0 then 0.
  else 2. *. float_of_int (edge_count g) /. float_of_int (size g)
