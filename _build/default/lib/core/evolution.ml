type snapshot = {
  step : int;
  stage : Kuhn.stage;
  homophily : float;
  crisis_score : float;
  giant : float;
}

type params = {
  units : int;
  mean_degree : float;
  kuhn : Kuhn.params;
  drift : float;
  relaxation : float;
  max_homophily : float;
}

let default_params =
  {
    units = 50;
    mean_degree = 4.0;
    kuhn = Kuhn.default_params;
    drift = 4.0;
    relaxation = 1.5;
    max_homophily = 45.0;
  }

let simulate rng params ~steps =
  let state = ref Kuhn.initial in
  let homophily = ref 0. in
  List.init steps (fun step ->
      state := Kuhn.step rng params.kuhn !state;
      (match !state.Kuhn.stage with
      | Kuhn.Crisis ->
          homophily := Float.min params.max_homophily (!homophily +. params.drift)
      | Kuhn.Revolution ->
          (* the new paradigm reconnects the field at a stroke *)
          homophily := 0.
      | Kuhn.Normal | Kuhn.Immature ->
          homophily := Float.max 0. (!homophily -. params.relaxation));
      let graph =
        Research_graph.generate rng
          {
            Research_graph.units = params.units;
            mean_degree = params.mean_degree;
            crisis = !homophily;
          }
      in
      let report = Graph_metrics.report graph in
      {
        step;
        stage = !state.Kuhn.stage;
        homophily = !homophily;
        crisis_score = report.Graph_metrics.crisis_score;
        giant = report.Graph_metrics.giant;
      })

let correlation_stage_score snapshots =
  let in_crisis =
    Array.of_list
      (List.map
         (fun s -> if s.stage = Kuhn.Crisis then 1. else 0.)
         snapshots)
  in
  let scores = Array.of_list (List.map (fun s -> s.crisis_score) snapshots) in
  Support.Stats.pearson in_crisis scores
