(** The research graph over time: Figures 1 and 2 combined.

    Section 5 describes the crisis dynamically — connectivity decays
    while local structure looks unchanged, then "new small research
    traditions blossom.  Well-targeted exploratory theory connects
    several of them, and a new healthy state emerges from the ashes."
    This module simulates a field whose homophily (the crisis knob of
    {!Research_graph}) follows the Kuhn stage machine: normal science
    keeps it low, crises drive it up, revolutions reset it.  The output
    is a crisis-score trajectory the benchmark plots. *)

type snapshot = {
  step : int;
  stage : Kuhn.stage;
  homophily : float;
  crisis_score : float;
  giant : float;
}

type params = {
  units : int;
  mean_degree : float;
  kuhn : Kuhn.params;
  drift : float;  (** homophily gained per step spent in crisis *)
  relaxation : float;  (** homophily lost per step of normal science *)
  max_homophily : float;
}

val default_params : params

val simulate : Support.Rng.t -> params -> steps:int -> snapshot list
(** One graph is sampled per step at the current homophily; scores use
    {!Graph_metrics.report}. *)

val correlation_stage_score : snapshot list -> float
(** Pearson correlation between "being in crisis" (0/1) and the crisis
    score — the claim that the connectivity diagnostic tracks the
    epistemic stage. *)
