(** Connectivity diagnostics for research graphs — the measurements that
    distinguish Figure 2's healthy snapshot from its crisis snapshot. *)

val components : Research_graph.t -> int list list
(** Connected components, largest first. *)

val giant_fraction : Research_graph.t -> float
(** Size of the largest component over the number of units. *)

val bfs_distances : Research_graph.t -> int -> int array
(** Hop distances from a source; unreachable = -1. *)

val diameter_of_giant : Research_graph.t -> int
(** Longest shortest path inside the largest component. *)

val mean_path_length_of_giant : Research_graph.t -> float

val theory_practice_distance : Research_graph.t -> float option
(** Average, over theory units, of the hop distance to the nearest
    practice unit; [None] when some theory unit cannot reach practice at
    all (or when a band is empty) — the crisis signature. *)

val unreachable_theory_fraction : Research_graph.t -> float
(** Fraction of theory units with no path to any practice unit. *)

val introverted_components : Research_graph.t -> int
(** Components (of size ≥ 2) whose units all sit in one band of the
    spectrum — "autistic theories and introverted products". *)

type report = {
  units : int;
  mean_degree : float;
  giant : float;
  diameter : int;
  mean_path : float;
  theory_practice : float option;
  unreachable_theory : float;
  introverted : int;
  crisis_score : float;
}

val report : Research_graph.t -> report

val crisis_score : report -> float
(** A scalar in [0, ∞): 0 looks healthy; grows with fragmentation, long
    theory→practice paths, and introversion. *)
