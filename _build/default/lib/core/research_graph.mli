(** The research-graph model of Figure 2: applied science as a graph of
    "research units" spread along the theoretical–practical spectrum.

    A healthy field has a giant component of small diameter spanning the
    whole spectrum ("most of theory is within a few hops from practice");
    a field in crisis has the {e same average degree} but low global
    connectivity — introverted components and long theory→practice
    paths.  The generator reproduces exactly this contrast with a single
    [crisis] homophily knob that suppresses edges between units far apart
    on the spectrum while boosting edges between similar units to keep
    the expected degree constant. *)

type unit_kind = Theory | Middle | Practice

type t = {
  theoreticity : float array;  (** position of each unit in [0,1]; 1 = most theoretical *)
  adjacency : int list array;
}

val size : t -> int
val kind_of : float -> unit_kind
(** > 2/3 is Theory, < 1/3 is Practice. *)

type params = {
  units : int;
  mean_degree : float;
  crisis : float;
      (** 0 = healthy (edges ignore the spectrum); larger = homophily:
          cross-spectrum edges become rare *)
}

val generate : Support.Rng.t -> params -> t
(** Units' theoreticities are spread uniformly over [0,1]; edges are
    sampled independently with probabilities scaled so the expected mean
    degree matches [mean_degree] at any [crisis] level. *)

val edge_count : t -> int
val mean_degree : t -> float
