lib/access/hash_index.mli: Relational
