lib/access/btree.ml: Array List Printf Relational
