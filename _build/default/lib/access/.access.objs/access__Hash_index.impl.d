lib/access/hash_index.ml: Array List Printf Relational
