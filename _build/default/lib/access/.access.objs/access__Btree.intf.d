lib/access/btree.mli: Relational
