module V = Relational.Value

type 'p bucket = {
  mutable local_depth : int;
  mutable entries : (V.t * 'p list) list;
}

type 'p t = {
  capacity : int;
  mutable global_depth : int;
  mutable directory : 'p bucket array;  (* length = 2^global_depth *)
}

let create ?(bucket_capacity = 4) () =
  let bucket = { local_depth = 0; entries = [] } in
  { capacity = max 1 bucket_capacity; global_depth = 0; directory = [| bucket |] }

let hash key = V.hash key land max_int

let slot t key = hash key land ((1 lsl t.global_depth) - 1)

let double_directory t =
  let n = Array.length t.directory in
  let dir = Array.make (2 * n) t.directory.(0) in
  for i = 0 to n - 1 do
    dir.(i) <- t.directory.(i);
    dir.(i + n) <- t.directory.(i)
  done;
  t.directory <- dir;
  t.global_depth <- t.global_depth + 1

let rec insert t key payload =
  let i = slot t key in
  let bucket = t.directory.(i) in
  let existing =
    List.find_opt (fun (k, _) -> V.compare_poly k key = 0) bucket.entries
  in
  match existing with
  | Some _ ->
      bucket.entries <-
        List.map
          (fun (k', ps') ->
            if V.compare_poly k' key = 0 then (k', ps' @ [ payload ])
            else (k', ps'))
          bucket.entries
  | None ->
      if
        List.length bucket.entries < t.capacity
        (* full-hash collisions could force unbounded doubling; past depth
           24 the bucket simply overflows *)
        || t.global_depth >= 24
      then bucket.entries <- (key, [ payload ]) :: bucket.entries
      else begin
        (* split the bucket (doubling the directory first if needed) *)
        if bucket.local_depth = t.global_depth then double_directory t;
        let new_depth = bucket.local_depth + 1 in
        let bit = 1 lsl bucket.local_depth in
        let zero = { local_depth = new_depth; entries = [] } in
        let one = { local_depth = new_depth; entries = [] } in
        List.iter
          (fun (k, ps) ->
            let target = if hash k land bit = 0 then zero else one in
            target.entries <- (k, ps) :: target.entries)
          bucket.entries;
        Array.iteri
          (fun j b ->
            if b == bucket then
              t.directory.(j) <- (if j land bit = 0 then zero else one))
          t.directory;
        insert t key payload
      end

let find t key =
  let bucket = t.directory.(slot t key) in
  match List.find_opt (fun (k, _) -> V.compare_poly k key = 0) bucket.entries with
  | Some (_, ps) -> ps
  | None -> []

let mem t key = find t key <> []

let delete t key =
  let bucket = t.directory.(slot t key) in
  let before = List.length bucket.entries in
  bucket.entries <-
    List.filter (fun (k, _) -> V.compare_poly k key <> 0) bucket.entries;
  List.length bucket.entries < before

let global_depth t = t.global_depth
let directory_size t = Array.length t.directory

let distinct_buckets t =
  Array.fold_left
    (fun acc b -> if List.memq b acc then acc else b :: acc)
    [] t.directory

let bucket_count t = List.length (distinct_buckets t)

let cardinality t =
  List.fold_left
    (fun acc b -> acc + List.length b.entries)
    0 (distinct_buckets t)

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.length t.directory <> 1 lsl t.global_depth then
    fail "directory size %d is not 2^%d" (Array.length t.directory) t.global_depth
  else begin
    let problems =
      List.filter_map
        (fun bucket ->
          if bucket.local_depth > t.global_depth then
            Some "local depth exceeds global depth"
          else begin
            let slots =
              Array.to_list t.directory
              |> List.mapi (fun i b -> (i, b))
              |> List.filter (fun (_, b) -> b == bucket)
              |> List.map fst
            in
            let expected = 1 lsl (t.global_depth - bucket.local_depth) in
            if List.length slots <> expected then
              Some
                (Printf.sprintf "bucket with local depth %d owned by %d slots, expected %d"
                   bucket.local_depth (List.length slots) expected)
            else if
              List.exists
                (fun (k, _) ->
                  not (List.mem (hash k land ((1 lsl t.global_depth) - 1)) slots))
                bucket.entries
            then Some "key stored in a bucket its hash does not address"
            else None
          end)
        (distinct_buckets t)
    in
    match problems with [] -> Ok () | p :: _ -> fail "%s" p
  end
