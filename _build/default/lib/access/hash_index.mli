(** Extendible hashing — the other classic access method: a directory of
    bucket pointers that doubles on demand, with buckets splitting by one
    more hash bit at a time.  No overflow chains, at most one split per
    insertion burst, O(1) lookups. *)

type 'p t

val create : ?bucket_capacity:int -> unit -> 'p t
(** [bucket_capacity] = entries per bucket before a split (default 4). *)

val insert : 'p t -> Relational.Value.t -> 'p -> unit
(** Duplicate keys accumulate payloads, like the B+tree. *)

val find : 'p t -> Relational.Value.t -> 'p list
val mem : 'p t -> Relational.Value.t -> bool
val delete : 'p t -> Relational.Value.t -> bool
(** Removes the key from its bucket (directories never shrink). *)

val global_depth : 'p t -> int
val directory_size : 'p t -> int
val bucket_count : 'p t -> int
val cardinality : 'p t -> int

val check_invariants : 'p t -> (unit, string) result
(** Directory size = 2^global depth; every key sits in the bucket its
    hash prefix addresses; bucket local depths ≤ global depth; buckets
    shared by exactly 2^(global−local) directory slots. *)
