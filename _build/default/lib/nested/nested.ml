module RV = Relational.Value

type ty = Atom of RV.ty | Set of schema
and schema = (string * ty) list

type value = V of RV.t | R of t
and tuple = value array
and t = { nschema : schema; rows : tuple list }

exception Nested_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Nested_error s)) fmt

let rec compare_value a b =
  match (a, b) with
  | V x, V y -> RV.compare_poly x y
  | R x, R y -> compare_rel x y
  | V _, R _ -> -1
  | R _, V _ -> 1

and compare_tuple a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i = la && i = lb then 0
    else if i = la then -1
    else if i = lb then 1
    else
      let c = compare_value a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

and compare_rel a b =
  let rec loop xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys ->
        let c = compare_tuple x y in
        if c <> 0 then c else loop xs ys
  in
  loop a.rows b.rows

let compare = compare_rel
let equal a b = compare a b = 0

let rec check_schema schema =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, ty) ->
      if Hashtbl.mem seen name then err "duplicate attribute %S" name;
      Hashtbl.add seen name ();
      match ty with Set inner -> check_schema inner | Atom _ -> ())
    schema

let rec check_tuple schema tup =
  if Array.length tup <> List.length schema then
    err "tuple arity %d does not match schema arity %d" (Array.length tup)
      (List.length schema);
  List.iteri
    (fun i (name, ty) ->
      match (ty, tup.(i)) with
      | Atom expected, V v ->
          if RV.type_of v <> expected then
            err "attribute %S expects %s, got %s" name
              (RV.ty_to_string expected)
              (RV.ty_to_string (RV.type_of v))
      | Set inner, R rel ->
          if rel.nschema <> inner then
            err "attribute %S holds a relation of the wrong schema" name;
          List.iter (check_tuple inner) rel.rows
      | Atom _, R _ -> err "attribute %S expects an atom, got a relation" name
      | Set _, V _ -> err "attribute %S expects a relation, got an atom" name)
    schema

let dedup rows = List.sort_uniq compare_tuple rows

let create schema rows =
  check_schema schema;
  List.iter (check_tuple schema) rows;
  { nschema = schema; rows = dedup rows }

let schema t = t.nschema
let tuples t = t.rows
let cardinality t = List.length t.rows

let of_flat rel =
  let schema =
    List.map
      (fun (a, ty) -> (a, Atom ty))
      (Relational.Schema.pairs (Relational.Relation.schema rel))
  in
  {
    nschema = schema;
    rows =
      dedup
        (List.map
           (fun tup -> Array.map (fun v -> V v) tup)
           (Relational.Relation.to_list rel));
  }

let to_flat t =
  let atomic =
    List.filter_map
      (fun (a, ty) -> match ty with Atom ty -> Some (a, ty) | Set _ -> None)
      t.nschema
  in
  if List.length atomic <> List.length t.nschema then None
  else begin
    let schema = Relational.Schema.make atomic in
    Some
      (Relational.Relation.of_tuples schema
         (List.map
            (Array.map (function V v -> v | R _ -> assert false))
            t.rows))
  end

let index_of schema name =
  let rec loop i = function
    | [] -> err "unknown attribute %S" name
    | (a, _) :: rest -> if String.equal a name then i else loop (i + 1) rest
  in
  loop 0 schema

let nest t ~into attrs =
  if attrs = [] then err "nest: no attributes to fold";
  let positions = List.map (index_of t.nschema) attrs in
  List.iter
    (fun (a, _) ->
      if String.equal a into && not (List.mem a attrs) then
        err "nest: target name %S already exists" into)
    t.nschema;
  let folded_schema =
    List.map (fun a -> (a, List.assoc a t.nschema)) attrs
  in
  let keep =
    List.filter (fun (a, _) -> not (List.mem a attrs)) t.nschema
  in
  let keep_positions =
    List.map (fun (a, _) -> index_of t.nschema a) keep
  in
  let out_schema = keep @ [ (into, Set folded_schema) ] in
  (* group by the kept attributes *)
  let groups : (tuple, tuple list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun tup ->
      let key = Array.of_list (List.map (fun i -> tup.(i)) keep_positions) in
      let sub = Array.of_list (List.map (fun i -> tup.(i)) positions) in
      match Hashtbl.find_opt groups key with
      | Some bucket -> bucket := sub :: !bucket
      | None ->
          Hashtbl.add groups key (ref [ sub ]);
          order := key :: !order)
    t.rows;
  let rows =
    List.rev_map
      (fun key ->
        let subs = !(Hashtbl.find groups key) in
        let inner = { nschema = folded_schema; rows = dedup subs } in
        Array.append key [| R inner |])
      !order
  in
  { nschema = out_schema; rows = dedup rows }

let unnest t name =
  let pos = index_of t.nschema name in
  let inner_schema =
    match List.assoc name t.nschema with
    | Set s -> s
    | Atom _ -> err "unnest: attribute %S is atomic" name
  in
  let out_schema =
    List.filter (fun (a, _) -> not (String.equal a name)) t.nschema
    @ inner_schema
  in
  check_schema out_schema;
  let rows =
    List.concat_map
      (fun tup ->
        let rest =
          Array.of_list
            (List.filteri (fun i _ -> i <> pos) (Array.to_list tup))
        in
        match tup.(pos) with
        | R inner -> List.map (fun sub -> Array.append rest sub) inner.rows
        | V _ -> assert false)
      t.rows
  in
  { nschema = out_schema; rows = dedup rows }

let rec flatten t =
  match
    List.find_opt (fun (_, ty) -> match ty with Set _ -> true | Atom _ -> false) t.nschema
  with
  | Some (name, _) -> flatten (unnest t name)
  | None -> t

let rec is_pnf t =
  let atomic_positions =
    List.filteri
      (fun i _ ->
        match snd (List.nth t.nschema i) with Atom _ -> true | Set _ -> false)
      (List.mapi (fun i x -> (i, x)) t.nschema)
    |> List.map fst
  in
  let keys = Hashtbl.create 16 in
  let rec unique = function
    | [] -> true
    | tup :: rest ->
        let key = List.map (fun i -> tup.(i)) atomic_positions in
        if Hashtbl.mem keys key then false
        else begin
          Hashtbl.add keys key ();
          unique rest
        end
  in
  unique t.rows
  && List.for_all
       (fun tup ->
         Array.for_all
           (function R inner -> is_pnf inner | V _ -> true)
           tup)
       t.rows

let rec depth schema =
  let deepest_nested =
    List.fold_left
      (fun acc (_, ty) ->
        match ty with Set inner -> max acc (depth inner) | Atom _ -> acc)
      0 schema
  in
  1 + deepest_nested

let rec value_to_string = function
  | V v -> RV.to_string v
  | R rel ->
      "{"
      ^ String.concat "; "
          (List.map
             (fun tup ->
               "("
               ^ String.concat ", "
                   (Array.to_list (Array.map value_to_string tup))
               ^ ")")
             rel.rows)
      ^ "}"

let to_string t =
  let header = List.map fst t.nschema in
  let rows =
    List.map
      (fun tup -> Array.to_list (Array.map value_to_string tup))
      t.rows
  in
  Support.Table.render ~header rows
