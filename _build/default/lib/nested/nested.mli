(** The nested relational model (NF²) — the "non-flat data models" that
    "evolved into the currently important 'complex objects' category"
    (§6).

    Attributes are either atomic or relation-valued; [nest] groups rows
    and folds chosen columns into a set-valued column, [unnest] undoes
    it.  The classical laws hold and are property-tested:
    unnest_B(nest_B(r)) = r for every flat r, while nest after unnest is
    the identity only on relations in partitioned normal form (PNF). *)

type ty = Atom of Relational.Value.ty | Set of schema
and schema = (string * ty) list

type value = V of Relational.Value.t | R of t
and tuple = value array

and t
(** A nested relation: schema + set of tuples (canonical order, no
    duplicates). *)

exception Nested_error of string

val create : schema -> tuple list -> t
(** Checks arity and types recursively; deduplicates. *)

val schema : t -> schema
val tuples : t -> tuple list
val cardinality : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val of_flat : Relational.Relation.t -> t
val to_flat : t -> Relational.Relation.t option
(** [Some] when every attribute is atomic. *)

val nest : t -> into:string -> string list -> t
(** [nest r ~into:"c" attrs] groups tuples by the remaining attributes
    and folds [attrs] into a set-valued column [into].  Raises
    {!Nested_error} on unknown/duplicate names or empty groupings. *)

val unnest : t -> string -> t
(** Expands a set-valued column; a tuple whose set is empty disappears
    (the textbook semantics, and the reason unnest loses information on
    non-PNF relations). *)

val flatten : t -> t
(** Recursively unnests every set-valued column (the 1NF image). *)

val is_pnf : t -> bool
(** Partitioned normal form: the atomic attributes form a key, recursively
    inside every nested relation. *)

val depth : schema -> int
(** Nesting depth: 1 for flat schemas. *)

val to_string : t -> string
