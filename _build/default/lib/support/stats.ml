let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int n
  end

let stddev xs = Float.sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let median xs =
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 0 then 0.
  else if n mod 2 = 1 then ys.(n / 2)
  else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.

let percentile xs p =
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 0 then 0.
  else if n = 1 then ys.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let autocorrelation xs lag =
  let n = Array.length xs in
  if lag <= 0 || lag >= n then 0.
  else begin
    let m = mean xs in
    let denom = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    if denom = 0. then 0.
    else begin
      let num = ref 0. in
      for i = 0 to n - 1 - lag do
        num := !num +. ((xs.(i) -. m) *. (xs.(i + lag) -. m))
      done;
      !num /. denom
    end
  end

let moving_average xs w =
  assert (w > 0);
  let n = Array.length xs in
  Array.init n (fun i ->
      let lo = max 0 (i - w + 1) in
      let count = i - lo + 1 in
      let sum = ref 0. in
      for j = lo to i do
        sum := !sum +. xs.(j)
      done;
      !sum /. float_of_int count)

let diff xs =
  let n = Array.length xs in
  if n <= 1 then [||] else Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i))

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys || n < 2 then 0.
  else begin
    let mx = mean xs and my = mean ys in
    let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0. || !syy = 0. then 0. else !sxy /. Float.sqrt (!sxx *. !syy)
  end

let linear_fit xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n >= 2);
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx in
    sxy := !sxy +. (dx *. (ys.(i) -. my));
    sxx := !sxx +. (dx *. dx)
  done;
  let slope = if !sxx = 0. then 0. else !sxy /. !sxx in
  (slope, my -. (slope *. mx))

let sum_squared_error xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys);
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let d = xs.(i) -. ys.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let harmonic_strength xs period =
  let n = Array.length xs in
  if n < period || period < 2 then 0.
  else begin
    let m = mean xs in
    (* DFT coefficient at the frequency whose period is [period] samples *)
    let re = ref 0. and im = ref 0. in
    for i = 0 to n - 1 do
      let angle = 2. *. Float.pi *. float_of_int i /. float_of_int period in
      let x = xs.(i) -. m in
      re := !re +. (x *. Float.cos angle);
      im := !im +. (x *. Float.sin angle)
    done;
    let power = ((!re *. !re) +. (!im *. !im)) /. float_of_int (n * n) in
    let var = variance xs in
    if var = 0. then 0. else power /. var
  end
