lib/support/table.mli:
