lib/support/rng.mli:
