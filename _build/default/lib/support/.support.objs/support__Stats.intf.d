lib/support/stats.mli:
