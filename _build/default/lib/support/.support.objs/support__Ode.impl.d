lib/support/ode.ml: Array
