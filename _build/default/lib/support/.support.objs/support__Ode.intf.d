lib/support/ode.mli:
