lib/support/table.ml: Array Buffer Float List Printf Stats String
