type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* mix used when deriving the gamma of a split stream; must yield odd values. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor z 1L in
  let n = Int64.logxor z (Int64.shift_right_logical z 1) in
  (* force enough bit transitions, as in the reference splitmix64 *)
  let popcount x =
    let rec loop x acc = if Int64.equal x 0L then acc else loop (Int64.shift_right_logical x 1) (acc + Int64.to_int (Int64.logand x 1L)) in
    loop x 0
  in
  if popcount n < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed = { state = mix64 (Int64.of_int seed); gamma = golden_gamma }

let next_seed t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let bits64 t = mix64 (next_seed t)

let split t =
  let s = next_seed t in
  let g = next_seed t in
  { state = mix64 s; gamma = mix_gamma g }

let copy t = { state = t.state; gamma = t.gamma }

let int t bound =
  assert (bound > 0);
  (* land with max_int keeps the value non-negative after the 64->63 bit
     truncation of Int64.to_int *)
  let r = Int64.to_int (bits64 t) land max_int in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t l = pick t (Array.of_list l)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let zipf t ~n ~s =
  assert (n > 0);
  if s = 0. then int t n
  else begin
    (* inverse-CDF sampling over the (small) support; n is bounded by the
       database size in our workloads so the O(n) scan is acceptable. *)
    let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
    let total = Array.fold_left ( +. ) 0. weights in
    let u = float t total in
    let rec loop i acc =
      if i = n - 1 then i
      else
        let acc = acc +. weights.(i) in
        if u < acc then i else loop (i + 1) acc
    in
    loop 0 0.
  end

let gaussian t =
  let u1 = Float.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

let exponential t lambda =
  let u = Float.max 1e-12 (float t 1.0) in
  -.Float.log u /. lambda
