let render ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map pad all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ')
         r)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  (match all with
  | h :: rest ->
      Buffer.add_string buf (render_row h);
      Buffer.add_char buf '\n';
      Buffer.add_string buf sep;
      Buffer.add_char buf '\n';
      List.iter
        (fun r ->
          Buffer.add_string buf (render_row r);
          Buffer.add_char buf '\n')
        rest
  | [] -> ());
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)

let blocks = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline xs =
  if Array.length xs = 0 then ""
  else begin
    let lo, hi = Stats.min_max xs in
    let span = if hi = lo then 1. else hi -. lo in
    let buf = Buffer.create (Array.length xs * 3) in
    Array.iter
      (fun x ->
        let level = int_of_float ((x -. lo) /. span *. 8.) in
        Buffer.add_string buf blocks.(max 0 (min 8 level)))
      xs;
    Buffer.contents buf
  end

let ascii_plot ?(height = 12) ?labels series =
  match series with
  | [] -> ""
  | first :: _ ->
      let n = Array.length first in
      let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |] in
      let lo, hi =
        List.fold_left
          (fun (lo, hi) s ->
            if Array.length s = 0 then (lo, hi)
            else
              let l, h = Stats.min_max s in
              (Float.min lo l, Float.max hi h))
          (Float.infinity, Float.neg_infinity)
          series
      in
      let span = if hi <= lo then 1. else hi -. lo in
      let grid = Array.make_matrix height n ' ' in
      List.iteri
        (fun si s ->
          let g = glyphs.(si mod Array.length glyphs) in
          Array.iteri
            (fun i x ->
              if i < n then begin
                let row =
                  height - 1
                  - int_of_float ((x -. lo) /. span *. float_of_int (height - 1))
                in
                let row = max 0 (min (height - 1) row) in
                grid.(row).(i) <- g
              end)
            s)
        series;
      let buf = Buffer.create (height * (n + 8)) in
      Array.iteri
        (fun r row ->
          let axis_val = hi -. (float_of_int r /. float_of_int (height - 1) *. span) in
          Buffer.add_string buf (Printf.sprintf "%7.1f |" axis_val);
          Array.iter (fun c -> Buffer.add_char buf c; Buffer.add_char buf ' ') row;
          Buffer.add_char buf '\n')
        grid;
      (match labels with
      | Some ls ->
          Buffer.add_string buf "         legend: ";
          List.iteri
            (fun i l ->
              Buffer.add_string buf
                (Printf.sprintf "%c=%s  " glyphs.(i mod Array.length glyphs) l))
            ls;
          Buffer.add_char buf '\n'
      | None -> ());
      Buffer.contents buf
