(** Fixed-step numerical integration of ordinary differential equations.

    Used by the Lotka–Volterra competition model that the paper invokes to
    describe the succession of research traditions in Figure 3. *)

type system = float -> float array -> float array
(** [f t y] returns dy/dt at time [t] and state [y]. *)

val rk4_step : system -> t:float -> dt:float -> float array -> float array
(** One classical Runge–Kutta (RK4) step. *)

val euler_step : system -> t:float -> dt:float -> float array -> float array
(** One forward-Euler step (kept as a baseline for accuracy tests). *)

val integrate :
  ?method_:[ `Rk4 | `Euler ] ->
  system ->
  y0:float array ->
  t0:float ->
  t1:float ->
  steps:int ->
  (float * float array) array
(** [integrate f ~y0 ~t0 ~t1 ~steps] returns the trajectory sampled at each
    of the [steps + 1] grid points, including the initial condition. *)

val sample_at :
  (float * float array) array -> times:float array -> float array array
(** [sample_at trajectory ~times] linearly interpolates the trajectory at
    the requested times; result is indexed \[time\]\[component\]. *)
