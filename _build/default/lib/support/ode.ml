type system = float -> float array -> float array

let axpy a x y = Array.mapi (fun i yi -> yi +. (a *. x.(i))) y

let euler_step f ~t ~dt y = axpy dt (f t y) y

let rk4_step f ~t ~dt y =
  let k1 = f t y in
  let k2 = f (t +. (dt /. 2.)) (axpy (dt /. 2.) k1 y) in
  let k3 = f (t +. (dt /. 2.)) (axpy (dt /. 2.) k2 y) in
  let k4 = f (t +. dt) (axpy dt k3 y) in
  Array.mapi
    (fun i yi ->
      yi +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))
    y

let integrate ?(method_ = `Rk4) f ~y0 ~t0 ~t1 ~steps =
  assert (steps > 0 && t1 > t0);
  let dt = (t1 -. t0) /. float_of_int steps in
  let step =
    match method_ with `Rk4 -> rk4_step f | `Euler -> euler_step f
  in
  let out = Array.make (steps + 1) (t0, y0) in
  let y = ref y0 in
  for i = 1 to steps do
    let t = t0 +. (dt *. float_of_int (i - 1)) in
    y := step ~t ~dt !y;
    out.(i) <- (t +. dt, !y)
  done;
  out

let sample_at trajectory ~times =
  let n = Array.length trajectory in
  assert (n > 0);
  let interp time =
    let t0, y0 = trajectory.(0) in
    let tn, yn = trajectory.(n - 1) in
    if time <= t0 then y0
    else if time >= tn then yn
    else begin
      (* binary search for the bracketing interval *)
      let rec search lo hi =
        if hi - lo <= 1 then (lo, hi)
        else
          let mid = (lo + hi) / 2 in
          let tm, _ = trajectory.(mid) in
          if tm <= time then search mid hi else search lo mid
      in
      let lo, hi = search 0 (n - 1) in
      let tl, yl = trajectory.(lo) and th, yh = trajectory.(hi) in
      let frac = if th = tl then 0. else (time -. tl) /. (th -. tl) in
      Array.mapi (fun i v -> v +. (frac *. (yh.(i) -. v))) yl
    end
  in
  Array.map interp times
