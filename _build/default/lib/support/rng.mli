(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic component in this repository draws randomness through
    this module, so that each experiment is reproducible from a single
    integer seed.  The generator is a mutable state; [split] derives an
    independent stream, which lets concurrent simulations share a seed
    without sharing a sequence. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val split : t -> t
(** [split rng] derives an independent generator and advances [rng]. *)

val copy : t -> t
(** [copy rng] duplicates the current state without advancing it. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val range : t -> int -> int -> int
(** [range rng lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf rng ~n ~s] samples from a Zipf distribution on [\[0, n)] with
    skew [s] ([s = 0.] is uniform).  Used by workload generators to model
    hot spots. *)

val gaussian : t -> float
(** Standard normal variate (Box–Muller). *)

val exponential : t -> float -> float
(** [exponential rng lambda] samples Exp(lambda). *)
