(** Small descriptive-statistics toolkit used by the time-series analysis of
    the PODS retrospective (Figure 3) and by the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean; 0. on the empty array. *)

val variance : float array -> float
(** Population variance; 0. on arrays shorter than 2. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** Raises [Invalid_argument] on the empty array. *)

val median : float array -> float
(** Median (average of middle two for even length); input not modified. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank with linear
    interpolation; input not modified. *)

val autocorrelation : float array -> int -> float
(** [autocorrelation xs lag] is the sample autocorrelation at [lag];
    0. when undefined (constant or too-short series). *)

val moving_average : float array -> int -> float array
(** [moving_average xs w] is the trailing window average: output index [i]
    averages inputs [max 0 (i-w+1) .. i].  With [w = 2] this is exactly the
    "two-year average" smoothing the paper applies in Figure 3. *)

val diff : float array -> float array
(** First differences; length [n-1]. *)

val pearson : float array -> float array -> float
(** Pearson correlation of two equal-length series; 0. when undefined. *)

val linear_fit : float array -> float array -> float * float
(** [linear_fit xs ys] returns [(slope, intercept)] of the least-squares
    line. *)

val sum_squared_error : float array -> float array -> float
(** Sum of squared pointwise differences of two equal-length series. *)

val harmonic_strength : float array -> int -> float
(** [harmonic_strength xs period] measures the spectral power of the given
    period relative to total variance, via the discrete Fourier coefficient
    at frequency [n/period].  The paper observes "a strong two-year
    harmonic" in the raw PODS series; this is the statistic that detects
    it. *)
