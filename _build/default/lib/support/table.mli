(** Plain-text table rendering for the benchmark harness and examples.

    The benchmark executable regenerates the paper's figures as aligned
    ASCII tables and series plots; this module is the shared renderer. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] lays the rows out in aligned columns with a
    separator line under the header. *)

val print : header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val sparkline : float array -> string
(** Unicode block-character sparkline of a series (min–max scaled). *)

val ascii_plot :
  ?height:int -> ?labels:string list -> float array list -> string
(** [ascii_plot series] draws one or more equal-length series as a crude
    character plot, one glyph per series; used to echo the curves of
    Figure 3 in the terminal. *)
