type ty = TInt | TString | TFloat | TBool

type t = Int of int | String of string | Float of float | Bool of bool

exception Type_clash of string

let type_of = function
  | Int _ -> TInt
  | String _ -> TString
  | Float _ -> TFloat
  | Bool _ -> TBool

let ty_to_string = function
  | TInt -> "int"
  | TString -> "string"
  | TFloat -> "float"
  | TBool -> "bool"

let ty_of_string = function
  | "int" -> Some TInt
  | "string" -> Some TString
  | "float" -> Some TFloat
  | "bool" -> Some TBool
  | _ -> None

let to_string = function
  | Int i -> string_of_int i
  | String s -> s
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let to_literal = function
  | String s -> Printf.sprintf "%S" s
  | v -> to_string v

let pp fmt v = Format.pp_print_string fmt (to_string v)

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | String x, String y -> String.compare x y
  | Float x, Float y -> Float.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Int _ | String _ | Float _ | Bool _), _ ->
      raise
        (Type_clash
           (Printf.sprintf "cannot compare %s value %s with %s value %s"
              (ty_to_string (type_of a))
              (to_literal a)
              (ty_to_string (type_of b))
              (to_literal b)))

let tag_rank = function Int _ -> 0 | String _ -> 1 | Float _ -> 2 | Bool _ -> 3

let compare_poly a b =
  let ra = tag_rank a and rb = tag_rank b in
  if ra <> rb then Int.compare ra rb else compare a b

let equal a b = tag_rank a = tag_rank b && compare a b = 0

let parse ty s =
  match ty with
  | TInt -> int_of_string_opt s |> Option.map (fun i -> Int i)
  | TFloat -> float_of_string_opt s |> Option.map (fun f -> Float f)
  | TBool -> bool_of_string_opt s |> Option.map (fun b -> Bool b)
  | TString -> Some (String s)

let hash = function
  | Int i -> Hashtbl.hash (0, i)
  | String s -> Hashtbl.hash (1, s)
  | Float f -> Hashtbl.hash (2, f)
  | Bool b -> Hashtbl.hash (3, b)
