module Tuple_set = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type t = { schema : Schema.t; tuples : Tuple_set.t }

exception Arity_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Arity_error s)) fmt

let create schema = { schema; tuples = Tuple_set.empty }

let check_tuple schema tup =
  if Array.length tup <> Schema.arity schema then
    err "tuple %s has arity %d, schema %s has arity %d" (Tuple.to_string tup)
      (Array.length tup)
      (Schema.to_string schema)
      (Schema.arity schema);
  List.iteri
    (fun i ty ->
      if Value.type_of tup.(i) <> ty then
        err "tuple %s: component %d has type %s, schema %s expects %s"
          (Tuple.to_string tup) i
          (Value.ty_to_string (Value.type_of tup.(i)))
          (Schema.to_string schema) (Value.ty_to_string ty))
    (Schema.types schema)

let of_tuples schema tups =
  List.iter (check_tuple schema) tups;
  { schema; tuples = Tuple_set.of_list tups }

let of_list schema rows = of_tuples schema (List.map Tuple.make rows)

let schema t = t.schema
let tuples t = t.tuples
let to_list t = Tuple_set.elements t.tuples
let cardinality t = Tuple_set.cardinal t.tuples
let is_empty t = Tuple_set.is_empty t.tuples
let mem t tup = Tuple_set.mem tup t.tuples

let add t tup =
  check_tuple t.schema tup;
  { t with tuples = Tuple_set.add tup t.tuples }

let iter f t = Tuple_set.iter f t.tuples
let fold f t init = Tuple_set.fold f t.tuples init
let filter p t = { t with tuples = Tuple_set.filter p t.tuples }

(* Realign [other]'s tuples to [target]'s column order. *)
let aligned target other =
  if Schema.equal target.schema other.schema then other.tuples
  else begin
    let positions = Schema.positions_of target.schema other.schema in
    Tuple_set.map (fun tup -> Tuple.project tup positions) other.tuples
  end

let union a b = { a with tuples = Tuple_set.union a.tuples (aligned a b) }
let inter a b = { a with tuples = Tuple_set.inter a.tuples (aligned a b) }
let diff a b = { a with tuples = Tuple_set.diff a.tuples (aligned a b) }

let equal a b =
  Schema.union_compatible a.schema b.schema
  && Tuple_set.equal a.tuples (aligned a b)

let subset a b =
  Schema.union_compatible a.schema b.schema
  && Tuple_set.subset a.tuples (aligned a b)

let project t attrs =
  let sub = Schema.project t.schema attrs in
  let positions = Array.of_list (List.map (Schema.index_of t.schema) attrs) in
  {
    schema = sub;
    tuples = Tuple_set.map (fun tup -> Tuple.project tup positions) t.tuples;
  }

let select p t = filter p t

let rename t mapping =
  { t with schema = Schema.rename t.schema mapping }

let product a b =
  let schema = Schema.product a.schema b.schema in
  let tuples =
    Tuple_set.fold
      (fun ta acc ->
        Tuple_set.fold
          (fun tb acc -> Tuple_set.add (Tuple.concat ta tb) acc)
          b.tuples acc)
      a.tuples Tuple_set.empty
  in
  { schema; tuples }

(* Hash table keyed by the projection of tuples onto the shared columns. *)
let build_hash positions rel =
  let table = Hashtbl.create (max 16 (cardinality rel)) in
  iter
    (fun tup ->
      let key = Tuple.project tup positions in
      Hashtbl.add table key tup)
    rel;
  table

let join a b =
  let shared = Schema.common a.schema b.schema in
  if shared = [] then product a b
  else begin
    let schema = Schema.join a.schema b.schema in
    let pos_a = Array.of_list (List.map (Schema.index_of a.schema) shared) in
    let pos_b = Array.of_list (List.map (Schema.index_of b.schema) shared) in
    let rest_b =
      List.filter (fun n -> not (List.mem n shared)) (Schema.attributes b.schema)
    in
    let rest_pos_b =
      Array.of_list (List.map (Schema.index_of b.schema) rest_b)
    in
    let table = build_hash pos_b b in
    let tuples =
      fold
        (fun ta acc ->
          let key = Tuple.project ta pos_a in
          List.fold_left
            (fun acc tb ->
              Tuple_set.add (Tuple.concat ta (Tuple.project tb rest_pos_b)) acc)
            acc (Hashtbl.find_all table key))
        a Tuple_set.empty
    in
    { schema; tuples }
  end

let semijoin a b =
  let shared = Schema.common a.schema b.schema in
  if shared = [] then if is_empty b then { a with tuples = Tuple_set.empty } else a
  else begin
    let pos_a = Array.of_list (List.map (Schema.index_of a.schema) shared) in
    let pos_b = Array.of_list (List.map (Schema.index_of b.schema) shared) in
    let table = build_hash pos_b b in
    filter (fun ta -> Hashtbl.mem table (Tuple.project ta pos_a)) a
  end

let antijoin a b =
  let shared = Schema.common a.schema b.schema in
  if shared = [] then if is_empty b then a else { a with tuples = Tuple_set.empty }
  else begin
    let pos_a = Array.of_list (List.map (Schema.index_of a.schema) shared) in
    let pos_b = Array.of_list (List.map (Schema.index_of b.schema) shared) in
    let table = build_hash pos_b b in
    filter (fun ta -> not (Hashtbl.mem table (Tuple.project ta pos_a))) a
  end

let divide r s =
  let s_attrs = Schema.attributes s.schema in
  List.iter
    (fun a ->
      if not (Schema.mem r.schema a) then
        err "divide: attribute %S of the divisor is not in the dividend" a)
    s_attrs;
  let keep =
    List.filter (fun a -> not (List.mem a s_attrs)) (Schema.attributes r.schema)
  in
  let candidates = project r keep in
  (* t survives iff {t} x s ⊆ r, i.e. no missing pairing *)
  let r_keep_pos = Array.of_list (List.map (Schema.index_of r.schema) keep) in
  let r_div_pos = Array.of_list (List.map (Schema.index_of r.schema) s_attrs) in
  let table = Hashtbl.create (max 16 (cardinality r)) in
  iter
    (fun tup ->
      Hashtbl.replace table
        (Tuple.project tup r_keep_pos, Tuple.project tup r_div_pos)
        ())
    r;
  let s_tuples = to_list s in
  filter
    (fun cand -> List.for_all (fun st -> Hashtbl.mem table (cand, st)) s_tuples)
    candidates

let active_domain t =
  let module Vs = Set.Make (struct
    type t = Value.t

    let compare = Value.compare_poly
  end) in
  let vs =
    fold
      (fun tup acc -> Array.fold_left (fun acc v -> Vs.add v acc) acc tup)
      t Vs.empty
  in
  Vs.elements vs

let to_string t =
  let header = Schema.attributes t.schema in
  let rows =
    List.map
      (fun tup -> Array.to_list (Array.map Value.to_string tup))
      (to_list t)
  in
  Support.Table.render ~header rows

let pp fmt t = Format.pp_print_string fmt (to_string t)
