lib/relational/algebra.mli: Database Format Schema Tuple Value
