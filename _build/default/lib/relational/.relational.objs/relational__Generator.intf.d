lib/relational/generator.mli: Algebra Database Relation Schema Support Value
