lib/relational/tuple.ml: Array Format String Value
