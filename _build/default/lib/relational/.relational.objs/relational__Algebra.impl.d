lib/relational/algebra.ml: Array Database Format List Printf Relation Schema String Value
