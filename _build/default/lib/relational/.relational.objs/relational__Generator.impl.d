lib/relational/generator.ml: Algebra Array Database List Printf Relation Schema Support Value
