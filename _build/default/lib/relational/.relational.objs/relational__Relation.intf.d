lib/relational/relation.mli: Format Schema Set Tuple Value
