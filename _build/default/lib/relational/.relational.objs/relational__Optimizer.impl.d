lib/relational/optimizer.ml: Algebra Database Float List Relation Schema
