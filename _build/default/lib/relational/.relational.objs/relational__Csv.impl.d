lib/relational/csv.ml: Array Buffer Fun In_channel List Printf Relation Schema String Value
