lib/relational/relation.ml: Array Format Hashtbl List Printf Schema Set Support Tuple Value
