lib/relational/query_parser.mli: Algebra
