lib/relational/optimizer.mli: Algebra Database
