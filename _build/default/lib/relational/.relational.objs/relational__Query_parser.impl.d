lib/relational/query_parser.ml: Algebra Buffer List Printf String Value
