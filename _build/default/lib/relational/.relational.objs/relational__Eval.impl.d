lib/relational/eval.ml: Algebra Array Database List Relation Schema Value
