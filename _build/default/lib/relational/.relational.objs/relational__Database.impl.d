lib/relational/database.ml: Format List Map Relation Schema Set String Value
