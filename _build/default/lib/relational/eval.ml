let rec eval_unchecked db expr =
  match expr with
  | Algebra.Rel name -> Database.find db name
  | Algebra.Singleton bindings ->
      let schema =
        Schema.make (List.map (fun (a, v) -> (a, Value.type_of v)) bindings)
      in
      Relation.of_tuples schema [ Array.of_list (List.map snd bindings) ]
  | Algebra.Select (p, e) ->
      let r = eval_unchecked db e in
      Relation.select (Algebra.eval_predicate (Relation.schema r) p) r
  | Algebra.Project (attrs, e) -> Relation.project (eval_unchecked db e) attrs
  | Algebra.Rename (mapping, e) -> Relation.rename (eval_unchecked db e) mapping
  | Algebra.Product (a, b) ->
      Relation.product (eval_unchecked db a) (eval_unchecked db b)
  | Algebra.Join (a, b) -> Relation.join (eval_unchecked db a) (eval_unchecked db b)
  | Algebra.Union (a, b) ->
      Relation.union (eval_unchecked db a) (eval_unchecked db b)
  | Algebra.Inter (a, b) ->
      Relation.inter (eval_unchecked db a) (eval_unchecked db b)
  | Algebra.Diff (a, b) -> Relation.diff (eval_unchecked db a) (eval_unchecked db b)
  | Algebra.Divide (a, b) ->
      Relation.divide (eval_unchecked db a) (eval_unchecked db b)

let eval db expr =
  let (_ : Schema.t) =
    Algebra.schema_of (Algebra.catalog_of_database db) expr
  in
  eval_unchecked db expr
