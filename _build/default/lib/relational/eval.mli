(** Relational algebra evaluator.

    [eval db expr] computes the relation denoted by [expr] over the
    database instance [db].  The expression is type-checked first, so
    evaluation itself never fails on well-formed catalogs. *)

val eval : Database.t -> Algebra.t -> Relation.t
(** Raises {!Algebra.Type_error} on ill-typed expressions and
    {!Database.Unknown_relation} on dangling relation names. *)

val eval_unchecked : Database.t -> Algebra.t -> Relation.t
(** Skips the up-front type check (the optimizer benchmarks use this to
    time evaluation alone). *)
