(** Typed CSV persistence for relations.

    The header line carries the schema as [name:type] pairs; fields
    containing commas, quotes, or newlines are double-quoted with quote
    doubling (RFC-4180 style). *)

exception Parse_error of string

val relation_to_string : Relation.t -> string
val relation_of_string : string -> Relation.t
(** Raises {!Parse_error} on malformed input. *)

val save : string -> Relation.t -> unit
(** [save path rel] writes the relation to a file. *)

val load : string -> Relation.t
(** Raises {!Parse_error} or [Sys_error]. *)
