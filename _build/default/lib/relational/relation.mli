(** Relation instances: a schema plus a set of tuples of matching arity.

    Relations are immutable values; all operators return new relations.
    The natural join is hash-based; set operations realign columns when the
    operand schemas agree as sets but differ in order. *)

module Tuple_set : Set.S with type elt = Tuple.t

type t

exception Arity_error of string

val create : Schema.t -> t
(** Empty relation over the given schema. *)

val of_list : Schema.t -> Value.t list list -> t
(** Builds a relation, checking each row's arity and column types; raises
    {!Arity_error} on mismatch. *)

val of_tuples : Schema.t -> Tuple.t list -> t
val schema : t -> Schema.t
val tuples : t -> Tuple_set.t
val to_list : t -> Tuple.t list
val cardinality : t -> int
val is_empty : t -> bool
val mem : t -> Tuple.t -> bool
val add : t -> Tuple.t -> t
val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Tuple.t -> bool) -> t -> t
val equal : t -> t -> bool
(** Same schema (up to column order) and same tuple set. *)

val subset : t -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** Set operations; raise {!Schema.Schema_error} unless union-compatible.
    The result uses the left operand's schema/column order. *)

val project : t -> Schema.attribute list -> t
val select : (Tuple.t -> bool) -> t -> t
val rename : t -> (Schema.attribute * Schema.attribute) list -> t
val product : t -> t -> t
val join : t -> t -> t
(** Natural join (hash join on the shared attributes; degenerates to the
    cartesian product when no attribute is shared). *)

val semijoin : t -> t -> t
(** Tuples of the first relation that join with at least one tuple of the
    second. *)

val antijoin : t -> t -> t
(** Tuples of the first relation that join with no tuple of the second. *)

val divide : t -> t -> t
(** Relational division: [divide r s] with schema(s) ⊆ schema(r) returns
    the tuples over schema(r) \ schema(s) that pair with {e every} tuple
    of [s] in [r].  The classic "suppliers who supply all parts" query. *)

val active_domain : t -> Value.t list
(** Distinct values occurring anywhere in the relation, sorted. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
