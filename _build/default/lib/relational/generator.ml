module Rng = Support.Rng

let random_ty rng =
  match Rng.int rng 4 with
  | 0 -> Value.TInt
  | 1 -> Value.TString
  | 2 -> Value.TFloat
  | _ -> Value.TBool

let random_schema rng ~prefix ~arity =
  Schema.make
    (List.init arity (fun i -> (Printf.sprintf "%s%d" prefix i, random_ty rng)))

let random_value rng ty ~domain =
  let domain = max 1 domain in
  match ty with
  | Value.TInt -> Value.Int (Rng.int rng domain)
  | Value.TString -> Value.String (Printf.sprintf "s%d" (Rng.int rng domain))
  | Value.TFloat -> Value.Float (float_of_int (Rng.int rng domain) /. 2.)
  | Value.TBool -> Value.Bool (Rng.bool rng)

let random_tuple rng schema ~domain =
  Array.of_list
    (List.map (fun ty -> random_value rng ty ~domain) (Schema.types schema))

let random_relation rng schema ~size ~domain =
  let tuples = List.init size (fun _ -> random_tuple rng schema ~domain) in
  Relation.of_tuples schema tuples

let random_database rng ~relations ~arity ~size ~domain =
  List.init relations (fun i ->
      let name = Printf.sprintf "r%d" i in
      let schema =
        random_schema rng ~prefix:(Printf.sprintf "%s_a" name) ~arity
      in
      (name, random_relation rng schema ~size ~domain))
  |> Database.of_list

let random_comparison rng =
  match Rng.int rng 6 with
  | 0 -> Algebra.Eq
  | 1 -> Algebra.Ne
  | 2 -> Algebra.Lt
  | 3 -> Algebra.Le
  | 4 -> Algebra.Gt
  | _ -> Algebra.Ge

let random_atom rng schema ~domain =
  let pairs = Schema.pairs schema in
  if pairs = [] then Algebra.True
  else begin
    let a, ty = Rng.pick_list rng pairs in
    (* attribute vs constant, or attribute vs same-typed attribute *)
    let same_ty = List.filter (fun (_, ty') -> ty' = ty) pairs in
    let rhs =
      if Rng.int rng 3 = 0 && List.length same_ty > 1 then
        Algebra.Attr (fst (Rng.pick_list rng same_ty))
      else Algebra.Const (random_value rng ty ~domain)
    in
    Algebra.Cmp (random_comparison rng, Algebra.Attr a, rhs)
  end

let rec random_predicate_sized rng schema ~domain fuel =
  if fuel <= 0 then random_atom rng schema ~domain
  else
    match Rng.int rng 5 with
    | 0 ->
        Algebra.And
          ( random_predicate_sized rng schema ~domain (fuel - 1),
            random_predicate_sized rng schema ~domain (fuel - 1) )
    | 1 ->
        Algebra.Or
          ( random_predicate_sized rng schema ~domain (fuel - 1),
            random_predicate_sized rng schema ~domain (fuel - 1) )
    | 2 -> Algebra.Not (random_predicate_sized rng schema ~domain (fuel - 1))
    | _ -> random_atom rng schema ~domain

let random_predicate rng schema ~domain =
  random_predicate_sized rng schema ~domain 2

(* Generate a well-typed expression together with its schema. *)
let random_query rng db ~depth ~domain =
  let catalog = Algebra.catalog_of_database db in
  let names = Array.of_list (Database.names db) in
  let counter = ref 0 in
  let fresh_attr () =
    incr counter;
    Printf.sprintf "g%d" !counter
  in
  let rec gen depth =
    if depth <= 0 || Array.length names = 0 then begin
      let name = Rng.pick rng names in
      (Algebra.Rel name, catalog name)
    end
    else
      match Rng.int rng 8 with
      | 0 ->
          let e, s = gen (depth - 1) in
          (Algebra.Select (random_predicate rng s ~domain, e), s)
      | 1 ->
          let e, s = gen (depth - 1) in
          let attrs = Schema.attributes s in
          let keep = List.filter (fun _ -> Rng.bool rng) attrs in
          let keep = if keep = [] then [ List.hd attrs ] else keep in
          (Algebra.Project (keep, e), Schema.project s keep)
      | 2 ->
          let e, s = gen (depth - 1) in
          let attrs = Schema.attributes s in
          let victim = Rng.pick_list rng attrs in
          let mapping = [ (victim, fresh_attr ()) ] in
          (Algebra.Rename (mapping, e), Schema.rename s mapping)
      | 3 ->
          (* product of two subqueries, renamed apart *)
          let a, sa = gen (depth - 1) in
          let b, sb = gen (depth - 1) in
          let clashes =
            List.filter (Schema.mem sa) (Schema.attributes sb)
          in
          let mapping = List.map (fun c -> (c, fresh_attr ())) clashes in
          let b, sb =
            if mapping = [] then (b, sb)
            else (Algebra.Rename (mapping, b), Schema.rename sb mapping)
          in
          (Algebra.Product (a, b), Schema.product sa sb)
      | 4 ->
          let a, sa = gen (depth - 1) in
          let b, sb = gen (depth - 1) in
          (* natural join requires shared attributes to agree on type;
             rename apart the shared attributes whose types clash *)
          let clashes =
            List.filter
              (fun (n, ty) ->
                Schema.mem sa n && Schema.type_of_attr sa n <> ty)
              (Schema.pairs sb)
          in
          let mapping = List.map (fun (n, _) -> (n, fresh_attr ())) clashes in
          let b, sb =
            if mapping = [] then (b, sb)
            else (Algebra.Rename (mapping, b), Schema.rename sb mapping)
          in
          (Algebra.Join (a, b), Schema.join sa sb)
      | 5 | 6 ->
          (* set operation: derive the second operand from the first so the
             schemas agree by construction *)
          let a, sa = gen (depth - 1) in
          let b = Algebra.Select (random_predicate rng sa ~domain, a) in
          let op =
            match Rng.int rng 3 with
            | 0 -> Algebra.Union (a, b)
            | 1 -> Algebra.Inter (a, b)
            | _ -> Algebra.Diff (a, b)
          in
          (op, sa)
      | _ ->
          let e, s = gen (depth - 1) in
          let attrs = Schema.attributes s in
          if List.length attrs < 2 then (e, s)
          else begin
            (* divide by a projection of a selection of the same expression *)
            let divisor_attr = Rng.pick_list rng attrs in
            let b =
              Algebra.Project
                ([ divisor_attr ],
                 Algebra.Select (random_predicate rng s ~domain, e))
            in
            let keep = List.filter (fun x -> x <> divisor_attr) attrs in
            (Algebra.Divide (e, b), Schema.project s keep)
          end
  in
  fst (gen depth)
