(** Tuples: fixed-width arrays of {!Value.t}, positionally aligned with a
    {!Schema.t}.  Tuples carry no schema themselves; the owning relation
    does. *)

type t = Value.t array

val make : Value.t list -> t
val arity : t -> int
val get : t -> int -> Value.t
val compare : t -> t -> int
(** Lexicographic, using {!Value.compare_poly} so heterogeneous columns
    still order totally. *)

val equal : t -> t -> bool
val project : t -> int array -> t
(** [project tup positions] builds a new tuple from the given positions. *)

val concat : t -> t -> t
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
