type t = Value.t array

let make = Array.of_list
let arity = Array.length
let get t i = t.(i)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i = la && i = lb then 0
    else if i = la then -1
    else if i = lb then 1
    else
      let c = Value.compare_poly a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let equal a b = compare a b = 0

let project t positions = Array.map (fun i -> t.(i)) positions

let concat = Array.append

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let to_string t =
  "<" ^ String.concat ", " (Array.to_list (Array.map Value.to_string t)) ^ ">"

let pp fmt t = Format.pp_print_string fmt (to_string t)
