type attribute = string

type t = (attribute * Value.ty) list

exception Schema_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Schema_error s)) fmt

let make pairs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (a, _) ->
      if Hashtbl.mem seen a then err "duplicate attribute %S in schema" a
      else Hashtbl.add seen a ())
    pairs;
  pairs

let pairs t = t
let attributes t = List.map fst t
let types t = List.map snd t
let arity = List.length
let mem t a = List.mem_assoc a t

let type_of_attr t a =
  match List.assoc_opt a t with
  | Some ty -> ty
  | None -> err "unknown attribute %S" a

let index_of t a =
  let rec loop i = function
    | [] -> err "unknown attribute %S" a
    | (b, _) :: _ when String.equal a b -> i
    | _ :: rest -> loop (i + 1) rest
  in
  loop 0 t

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && t1 = t2)
       a b

let union_compatible a b =
  List.length a = List.length b
  && List.for_all
       (fun (n, ty) ->
         match List.assoc_opt n b with Some ty' -> ty = ty' | None -> false)
       a

let positions_of target source =
  if not (union_compatible target source) then
    err "schemas %s and %s are not union-compatible"
      (String.concat "," (attributes target))
      (String.concat "," (attributes source));
  Array.of_list (List.map (fun (a, _) -> index_of source a) target)

let project t attrs =
  let sub = List.map (fun a -> (a, type_of_attr t a)) attrs in
  make sub

let rename t mapping =
  List.iter
    (fun (src, _) ->
      if not (mem t src) then err "rename: unknown attribute %S" src)
    mapping;
  let renamed =
    List.map
      (fun (a, ty) ->
        match List.assoc_opt a mapping with
        | Some b -> (b, ty)
        | None -> (a, ty))
      t
  in
  make renamed

let product a b =
  List.iter
    (fun (n, _) ->
      if mem a n then err "product: attribute %S occurs on both sides" n)
    b;
  a @ b

let common a b =
  List.filter_map
    (fun (n, ty) ->
      match List.assoc_opt n b with
      | Some ty' ->
          if ty = ty' then Some n
          else
            err "shared attribute %S has type %s on one side and %s on the other"
              n (Value.ty_to_string ty) (Value.ty_to_string ty')
      | None -> None)
    a

let join a b =
  let shared = common a b in
  a @ List.filter (fun (n, _) -> not (List.mem n shared)) b

let to_string t =
  "("
  ^ String.concat ", "
      (List.map (fun (a, ty) -> a ^ ":" ^ Value.ty_to_string ty) t)
  ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)
