exception Parse_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(* Split one logical CSV record into fields, honouring quotes. *)
let split_record line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let rec plain i =
    if i >= n then finish ()
    else
      match line.[i] with
      | ',' ->
          fields := Buffer.contents buf :: !fields;
          Buffer.clear buf;
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then err "unterminated quoted field in %S" line
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  and finish () =
    fields := Buffer.contents buf :: !fields;
    List.rev !fields
  in
  plain 0

let header_of_schema schema =
  String.concat ","
    (List.map
       (fun (a, ty) -> quote (a ^ ":" ^ Value.ty_to_string ty))
       (Schema.pairs schema))

let schema_of_header line =
  let fields = split_record line in
  let parse_field f =
    match String.rindex_opt f ':' with
    | None -> err "header field %S lacks a :type suffix" f
    | Some i -> (
        let name = String.sub f 0 i in
        let ty = String.sub f (i + 1) (String.length f - i - 1) in
        match Value.ty_of_string ty with
        | Some ty -> (name, ty)
        | None -> err "unknown type %S in header field %S" ty f)
  in
  Schema.make (List.map parse_field fields)

let relation_to_string rel =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header_of_schema (Relation.schema rel));
  Buffer.add_char buf '\n';
  Relation.iter
    (fun tup ->
      Buffer.add_string buf
        (String.concat ","
           (Array.to_list (Array.map (fun v -> quote (Value.to_string v)) tup)));
      Buffer.add_char buf '\n')
    rel;
  Buffer.contents buf

let relation_of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           (* tolerate \r\n input *)
           if String.length l > 0 && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l)
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> err "empty CSV document"
  | header :: rows ->
      let schema = schema_of_header header in
      let types = Array.of_list (Schema.types schema) in
      let parse_row row =
        let fields = split_record row in
        if List.length fields <> Array.length types then
          err "row %S has %d fields, schema has %d" row (List.length fields)
            (Array.length types);
        Array.of_list
          (List.mapi
             (fun i f ->
               match Value.parse types.(i) f with
               | Some v -> v
               | None ->
                   err "cannot parse %S as %s" f
                     (Value.ty_to_string types.(i)))
             fields)
      in
      Relation.of_tuples schema (List.map parse_row rows)

let save path rel =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (relation_to_string rel))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> relation_of_string (In_channel.input_all ic))
