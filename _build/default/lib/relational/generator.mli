(** Random schemas, instances, and well-typed algebra queries.

    Used by the property-test suites (round-trip laws, optimizer
    equivalence) and by the benchmark workload sweeps.  All randomness
    flows through {!Support.Rng}, so every workload is reproducible from
    its seed. *)

val random_schema : Support.Rng.t -> prefix:string -> arity:int -> Schema.t
(** Attributes named [prefix ^ "0"], …; types drawn uniformly. *)

val random_value : Support.Rng.t -> Value.ty -> domain:int -> Value.t
(** A value from a domain of the given size (ints in [\[0,domain)],
    strings ["s0"…], floats, booleans). *)

val random_relation :
  Support.Rng.t -> Schema.t -> size:int -> domain:int -> Relation.t
(** Up to [size] random tuples (duplicates collapse). *)

val random_database :
  Support.Rng.t ->
  relations:int ->
  arity:int ->
  size:int ->
  domain:int ->
  Database.t
(** Relations named ["r0"], ["r1"], … with fresh attribute names per
    relation ("r0_a0", …), so products never clash. *)

val random_predicate : Support.Rng.t -> Schema.t -> domain:int -> Algebra.predicate
(** A small boolean combination of comparisons that type-checks against the
    schema. *)

val random_query :
  Support.Rng.t -> Database.t -> depth:int -> domain:int -> Algebra.t
(** A well-typed algebra expression of at most the given operator depth
    over the database's catalog.  Well-typedness holds by construction. *)
