type comparison = Eq | Ne | Lt | Le | Gt | Ge

type operand = Attr of Schema.attribute | Const of Value.t

type predicate =
  | True
  | False
  | Cmp of comparison * operand * operand
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

type t =
  | Rel of string
  | Singleton of (Schema.attribute * Value.t) list
  | Select of predicate * t
  | Project of Schema.attribute list * t
  | Rename of (Schema.attribute * Schema.attribute) list * t
  | Product of t * t
  | Join of t * t
  | Union of t * t
  | Inter of t * t
  | Diff of t * t
  | Divide of t * t

exception Type_error of string

type catalog = string -> Schema.t

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let operand_type schema = function
  | Const v -> Value.type_of v
  | Attr a ->
      if Schema.mem schema a then Schema.type_of_attr schema a
      else err "predicate mentions attribute %S absent from schema %s" a (Schema.to_string schema)

let rec check_predicate schema = function
  | True | False -> ()
  | Cmp (_, l, r) ->
      let tl = operand_type schema l and tr = operand_type schema r in
      if tl <> tr then
        err "comparison between %s and %s" (Value.ty_to_string tl)
          (Value.ty_to_string tr)
  | And (p, q) | Or (p, q) ->
      check_predicate schema p;
      check_predicate schema q
  | Not p -> check_predicate schema p

let rec schema_of catalog expr =
  match expr with
  | Rel name -> catalog name
  | Singleton bindings ->
      (try Schema.make (List.map (fun (a, v) -> (a, Value.type_of v)) bindings)
       with Schema.Schema_error m -> err "singleton: %s" m)
  | Select (p, e) ->
      let s = schema_of catalog e in
      check_predicate s p;
      s
  | Project (attrs, e) ->
      let s = schema_of catalog e in
      (try Schema.project s attrs
       with Schema.Schema_error m -> err "project: %s" m)
  | Rename (mapping, e) ->
      let s = schema_of catalog e in
      (try Schema.rename s mapping
       with Schema.Schema_error m -> err "rename: %s" m)
  | Product (a, b) ->
      let sa = schema_of catalog a and sb = schema_of catalog b in
      (try Schema.product sa sb
       with Schema.Schema_error m -> err "product: %s" m)
  | Join (a, b) ->
      let sa = schema_of catalog a and sb = schema_of catalog b in
      (try Schema.join sa sb with Schema.Schema_error m -> err "join: %s" m)
  | Union (a, b) | Inter (a, b) | Diff (a, b) ->
      let sa = schema_of catalog a and sb = schema_of catalog b in
      if Schema.union_compatible sa sb then sa
      else
        err "set operation over incompatible schemas %s and %s"
          (Schema.to_string sa) (Schema.to_string sb)
  | Divide (a, b) ->
      let sa = schema_of catalog a and sb = schema_of catalog b in
      let sb_attrs = Schema.attributes sb in
      List.iter
        (fun attr ->
          if not (Schema.mem sa attr) then
            err "divide: divisor attribute %S absent from dividend %s" attr
              (Schema.to_string sa))
        sb_attrs;
      let keep =
        List.filter (fun a -> not (List.mem a sb_attrs)) (Schema.attributes sa)
      in
      Schema.project sa keep

let well_typed catalog expr =
  match schema_of catalog expr with
  | (_ : Schema.t) -> true
  | exception Type_error _ -> false
  | exception Schema.Schema_error _ -> false

let attributes_of_predicate p =
  let rec collect acc = function
    | True | False -> acc
    | Cmp (_, l, r) ->
        let add acc = function Attr a -> a :: acc | Const _ -> acc in
        add (add acc l) r
    | And (p, q) | Or (p, q) -> collect (collect acc p) q
    | Not p -> collect acc p
  in
  List.sort_uniq String.compare (collect [] p)

let eval_comparison cmp c =
  match cmp with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let eval_predicate schema p tup =
  let value = function
    | Const v -> v
    | Attr a -> tup.(Schema.index_of schema a)
  in
  let rec go = function
    | True -> true
    | False -> false
    | Cmp (cmp, l, r) -> eval_comparison cmp (Value.compare (value l) (value r))
    | And (p, q) -> go p && go q
    | Or (p, q) -> go p || go q
    | Not p -> not (go p)
  in
  go p

let rec conjuncts = function
  | And (p, q) -> conjuncts p @ conjuncts q
  | True -> []
  | p -> [ p ]

let conjoin = function
  | [] -> True
  | p :: rest -> List.fold_left (fun acc q -> And (acc, q)) p rest

let rec size = function
  | Rel _ | Singleton _ -> 1
  | Select (_, e) | Project (_, e) | Rename (_, e) -> 1 + size e
  | Product (a, b)
  | Join (a, b)
  | Union (a, b)
  | Inter (a, b)
  | Diff (a, b)
  | Divide (a, b) ->
      1 + size a + size b

let comparison_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let operand_to_string = function
  | Attr a -> a
  | Const v -> Value.to_literal v

let rec predicate_to_string = function
  | True -> "true"
  | False -> "false"
  | Cmp (c, l, r) ->
      Printf.sprintf "%s %s %s" (operand_to_string l) (comparison_to_string c)
        (operand_to_string r)
  | And (p, q) ->
      Printf.sprintf "(%s and %s)" (predicate_to_string p) (predicate_to_string q)
  | Or (p, q) ->
      Printf.sprintf "(%s or %s)" (predicate_to_string p) (predicate_to_string q)
  | Not p -> Printf.sprintf "(not %s)" (predicate_to_string p)

let rec to_string = function
  | Rel name -> name
  | Singleton bindings ->
      "<"
      ^ String.concat ", "
          (List.map
             (fun (a, v) -> Printf.sprintf "%s=%s" a (Value.to_literal v))
             bindings)
      ^ ">"
  | Select (p, e) -> Printf.sprintf "select[%s](%s)" (predicate_to_string p) (to_string e)
  | Project (attrs, e) ->
      Printf.sprintf "project[%s](%s)" (String.concat "," attrs) (to_string e)
  | Rename (mapping, e) ->
      let m =
        String.concat ","
          (List.map (fun (a, b) -> Printf.sprintf "%s->%s" a b) mapping)
      in
      Printf.sprintf "rename[%s](%s)" m (to_string e)
  | Product (a, b) -> Printf.sprintf "(%s x %s)" (to_string a) (to_string b)
  | Join (a, b) -> Printf.sprintf "(%s |x| %s)" (to_string a) (to_string b)
  | Union (a, b) -> Printf.sprintf "(%s U %s)" (to_string a) (to_string b)
  | Inter (a, b) -> Printf.sprintf "(%s ^ %s)" (to_string a) (to_string b)
  | Diff (a, b) -> Printf.sprintf "(%s - %s)" (to_string a) (to_string b)
  | Divide (a, b) -> Printf.sprintf "(%s / %s)" (to_string a) (to_string b)

let pp fmt e = Format.pp_print_string fmt (to_string e)

let catalog_of_database db name =
  match Database.find_opt db name with
  | Some rel -> Relation.schema rel
  | None -> err "unknown relation %S" name
