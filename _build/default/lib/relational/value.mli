(** Atomic values of the relational model.

    The model is typed with four base domains; every tuple component is one
    of these.  Comparison is defined within a type only — comparing values
    of different types raises, which surfaces schema bugs early instead of
    silently ordering [Int] before [String]. *)

type ty = TInt | TString | TFloat | TBool

type t = Int of int | String of string | Float of float | Bool of bool

exception Type_clash of string
(** Raised when two values of different dynamic types are compared. *)

val type_of : t -> ty

val compare : t -> t -> int
(** Total order within a type; raises {!Type_clash} across types. *)

val compare_poly : t -> t -> int
(** Total order across all values (type tag first); never raises.  Used by
    containers that may mix types, e.g. the active domain. *)

val equal : t -> t -> bool
(** Structural equality; [false] across types (never raises). *)

val ty_to_string : ty -> string
val ty_of_string : string -> ty option

val to_string : t -> string
(** Human-readable rendering; strings are printed bare (no quotes). *)

val to_literal : t -> string
(** Parseable rendering; strings are quoted. *)

val pp : Format.formatter -> t -> unit

val parse : ty -> string -> t option
(** [parse ty s] reads [s] as a value of type [ty]. *)

val hash : t -> int
