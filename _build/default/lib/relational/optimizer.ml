open Algebra

type stats = string -> int

(* --- selection push-down ----------------------------------------------- *)

let attrs_subset attrs schema = List.for_all (Schema.mem schema) attrs

(* Rewrite a predicate through the inverse of a rename mapping, so it can be
   pushed below the Rename node. *)
let unrename_predicate mapping p =
  let inverse = List.map (fun (a, b) -> (b, a)) mapping in
  let fix = function
    | Attr a -> Attr (match List.assoc_opt a inverse with Some b -> b | None -> a)
    | Const v -> Const v
  in
  let rec go = function
    | True -> True
    | False -> False
    | Cmp (c, l, r) -> Cmp (c, fix l, fix r)
    | And (p, q) -> And (go p, go q)
    | Or (p, q) -> Or (go p, go q)
    | Not p -> Not (go p)
  in
  go p

let rec push_one catalog p expr =
  let attrs = attributes_of_predicate p in
  match expr with
  | Select (q, e) -> Select (q, push_one catalog p e)
  | Product (a, b) ->
      let sa = schema_of catalog a and sb = schema_of catalog b in
      if attrs_subset attrs sa then Product (push_one catalog p a, b)
      else if attrs_subset attrs sb then Product (a, push_one catalog p b)
      else Select (p, expr)
  | Join (a, b) ->
      let sa = schema_of catalog a and sb = schema_of catalog b in
      if attrs_subset attrs sa then Join (push_one catalog p a, b)
      else if attrs_subset attrs sb then Join (a, push_one catalog p b)
      else Select (p, expr)
  | Union (a, b) -> Union (push_one catalog p a, push_one catalog p b)
  | Inter (a, b) -> Inter (push_one catalog p a, push_one catalog p b)
  | Diff (a, b) -> Diff (push_one catalog p a, push_one catalog p b)
  | Rename (mapping, e) ->
      (* legal only if every source of the mapping is an attribute of e,
         which Rename's typing already guarantees *)
      Rename (mapping, push_one catalog (unrename_predicate mapping p) e)
  | Project (attrs', e) ->
      if attrs_subset attrs (schema_of catalog (Project (attrs', e))) then
        Project (attrs', push_one catalog p e)
      else Select (p, expr)
  | Rel _ | Singleton _ | Divide _ -> Select (p, expr)

let rec push_selections catalog expr =
  match expr with
  | Rel name -> Rel name
  | Singleton b -> Singleton b
  | Select (p, e) ->
      let e = push_selections catalog e in
      List.fold_left
        (fun acc conj -> push_one catalog conj acc)
        e (conjuncts p)
  | Project (attrs, e) -> Project (attrs, push_selections catalog e)
  | Rename (m, e) -> Rename (m, push_selections catalog e)
  | Product (a, b) -> Product (push_selections catalog a, push_selections catalog b)
  | Join (a, b) -> Join (push_selections catalog a, push_selections catalog b)
  | Union (a, b) -> Union (push_selections catalog a, push_selections catalog b)
  | Inter (a, b) -> Inter (push_selections catalog a, push_selections catalog b)
  | Diff (a, b) -> Diff (push_selections catalog a, push_selections catalog b)
  | Divide (a, b) -> Divide (push_selections catalog a, push_selections catalog b)

(* --- projection pruning ------------------------------------------------- *)

let rec prune_projections catalog expr =
  match expr with
  | Project (attrs, Project (_, e)) ->
      prune_projections catalog (Project (attrs, e))
  | Project (attrs, Join (a, b)) ->
      let sa = schema_of catalog a and sb = schema_of catalog b in
      let shared = Schema.common sa sb in
      let needed schema =
        List.filter
          (fun n -> List.mem n attrs || List.mem n shared)
          (Schema.attributes schema)
      in
      let na = needed sa and nb = needed sb in
      let wrap side n schema =
        if List.length n = Schema.arity schema then prune_projections catalog side
        else Project (n, prune_projections catalog side)
      in
      Project (attrs, Join (wrap a na sa, wrap b nb sb))
  | Project (attrs, e) ->
      let s = schema_of catalog e in
      let e' = prune_projections catalog e in
      if attrs = Schema.attributes s then e' else Project (attrs, e')
  | Rel name -> Rel name
  | Singleton b -> Singleton b
  | Select (p, e) -> Select (p, prune_projections catalog e)
  | Rename (m, e) -> Rename (m, prune_projections catalog e)
  | Product (a, b) ->
      Product (prune_projections catalog a, prune_projections catalog b)
  | Join (a, b) -> Join (prune_projections catalog a, prune_projections catalog b)
  | Union (a, b) -> Union (prune_projections catalog a, prune_projections catalog b)
  | Inter (a, b) -> Inter (prune_projections catalog a, prune_projections catalog b)
  | Diff (a, b) -> Diff (prune_projections catalog a, prune_projections catalog b)
  | Divide (a, b) -> Divide (prune_projections catalog a, prune_projections catalog b)

(* --- cardinality estimation and join ordering --------------------------- *)

let selection_selectivity = 0.3
let join_key_domain = 10.0

let rec estimate catalog stats expr =
  match expr with
  | Rel name -> float_of_int (stats name)
  | Singleton _ -> 1.0
  | Select (p, e) ->
      let conj = max 1 (List.length (conjuncts p)) in
      estimate catalog stats e *. Float.pow selection_selectivity (float_of_int conj)
  | Project (_, e) | Rename (_, e) -> estimate catalog stats e
  | Product (a, b) -> estimate catalog stats a *. estimate catalog stats b
  | Join (a, b) ->
      let sa = schema_of catalog a and sb = schema_of catalog b in
      let shared = List.length (Schema.common sa sb) in
      estimate catalog stats a *. estimate catalog stats b
      /. Float.pow join_key_domain (float_of_int shared)
  | Union (a, b) -> estimate catalog stats a +. estimate catalog stats b
  | Inter (a, b) -> Float.min (estimate catalog stats a) (estimate catalog stats b)
  | Diff (a, _) -> estimate catalog stats a
  | Divide (a, b) ->
      let eb = Float.max 1.0 (estimate catalog stats b) in
      estimate catalog stats a /. eb

(* Collect the leaves of a maximal natural-join tree. *)
let rec join_factors = function
  | Join (a, b) -> join_factors a @ join_factors b
  | e -> [ e ]

let rec order_joins catalog stats expr =
  match expr with
  | Join _ ->
      let factors =
        List.map (order_joins catalog stats) (join_factors expr)
      in
      (* greedy: repeatedly join the pair with smallest estimated result *)
      let rec reduce = function
        | [] -> assert false
        | [ e ] -> e
        | factors ->
            let best = ref None in
            List.iteri
              (fun i a ->
                List.iteri
                  (fun j b ->
                    if i < j then begin
                      let cost = estimate catalog stats (Join (a, b)) in
                      match !best with
                      | Some (_, _, _, c) when c <= cost -> ()
                      | _ -> best := Some (i, j, Join (a, b), cost)
                    end)
                  factors)
              factors;
            (match !best with
            | None -> assert false
            | Some (i, j, joined, _) ->
                let rest =
                  List.filteri (fun k _ -> k <> i && k <> j) factors
                in
                reduce (joined :: rest))
      in
      reduce factors
  | Rel name -> Rel name
  | Singleton b -> Singleton b
  | Select (p, e) -> Select (p, order_joins catalog stats e)
  | Project (a, e) -> Project (a, order_joins catalog stats e)
  | Rename (m, e) -> Rename (m, order_joins catalog stats e)
  | Product (a, b) -> Product (order_joins catalog stats a, order_joins catalog stats b)
  | Union (a, b) -> Union (order_joins catalog stats a, order_joins catalog stats b)
  | Inter (a, b) -> Inter (order_joins catalog stats a, order_joins catalog stats b)
  | Diff (a, b) -> Diff (order_joins catalog stats a, order_joins catalog stats b)
  | Divide (a, b) -> Divide (order_joins catalog stats a, order_joins catalog stats b)

let optimize catalog stats expr =
  expr
  |> push_selections catalog
  |> order_joins catalog stats
  |> prune_projections catalog

let stats_of_database db name = Relation.cardinality (Database.find db name)
