(** A database instance: a finite map from relation names to relations. *)

type t

exception Unknown_relation of string

val empty : t
val add : t -> string -> Relation.t -> t
(** Replaces any previous binding of the name. *)

val find : t -> string -> Relation.t
(** Raises {!Unknown_relation}. *)

val find_opt : t -> string -> Relation.t option
val mem : t -> string -> bool
val names : t -> string list
val schema_of : t -> string -> Schema.t
(** Raises {!Unknown_relation}. *)

val fold : (string -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a
val active_domain : t -> Value.t list
(** Distinct values occurring in any relation of the instance. *)

val of_list : (string * Relation.t) list -> t
val pp : Format.formatter -> t -> unit
