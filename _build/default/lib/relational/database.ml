module Smap = Map.Make (String)

type t = Relation.t Smap.t

exception Unknown_relation of string

let empty = Smap.empty
let add db name rel = Smap.add name rel db

let find db name =
  match Smap.find_opt name db with
  | Some r -> r
  | None -> raise (Unknown_relation name)

let find_opt db name = Smap.find_opt name db
let mem db name = Smap.mem name db
let names db = List.map fst (Smap.bindings db)
let schema_of db name = Relation.schema (find db name)
let fold f db init = Smap.fold f db init

let active_domain db =
  let module Vs = Set.Make (struct
    type t = Value.t

    let compare = Value.compare_poly
  end) in
  let vs =
    fold
      (fun _ rel acc ->
        List.fold_left (fun acc v -> Vs.add v acc) acc (Relation.active_domain rel))
      db Vs.empty
  in
  Vs.elements vs

let of_list bindings =
  List.fold_left (fun db (name, rel) -> add db name rel) empty bindings

let pp fmt db =
  fold
    (fun name rel () ->
      Format.fprintf fmt "%s %s@.%a@." name
        (Schema.to_string (Relation.schema rel))
        Relation.pp rel)
    db ()
