(** Algebraic query optimizer.

    The essay recalls that "the difficulty of query optimization … came as
    a surprise, and necessitated new model development, synthesis, analysis,
    and experiments."  This module implements the classical heuristic
    pipeline that the relational-theory tradition produced: selection
    cascading and push-down, projection pruning, and greedy join ordering
    driven by cardinality estimates.  Every rewrite preserves the denoted
    relation (property-tested against the evaluator). *)

type stats = string -> int
(** Cardinality of a base relation, by name. *)

val push_selections : Algebra.catalog -> Algebra.t -> Algebra.t
(** Splits conjunctive selections and pushes each conjunct as far towards
    the leaves as typing allows. *)

val prune_projections : Algebra.catalog -> Algebra.t -> Algebra.t
(** Collapses stacked projections and introduces early projections under
    joins so intermediate results carry only needed columns. *)

val order_joins : Algebra.catalog -> stats -> Algebra.t -> Algebra.t
(** Reassociates natural-join trees greedily, joining the
    smallest-estimate pair first. *)

val estimate : Algebra.catalog -> stats -> Algebra.t -> float
(** Textbook cardinality estimate: selections filter by a fixed
    selectivity per conjunct, joins divide the product by the shared-key
    domain estimate. *)

val optimize : Algebra.catalog -> stats -> Algebra.t -> Algebra.t
(** Full pipeline: push selections, order joins, prune projections. *)

val stats_of_database : Database.t -> stats
