(** A concrete syntax for relational algebra expressions, so queries can
    come from strings (the CLI's [query] subcommand and the examples).

    Grammar (keywords are lowercase; set/join operators are left
    associative, [join]/[times]/[divide] bind tighter than
    [union]/[minus]/[intersect]):

    {v
    expr    := term (("union" | "minus" | "intersect") term)*
    term    := factor (("join" | "times" | "divide") factor)*
    factor  := NAME                         base relation
             | "project" "[" a, b, ... "]" "(" expr ")"
             | "select"  "[" predicate  "]" "(" expr ")"
             | "rename"  "[" a -> b, ... "]" "(" expr ")"
             | "<" a = literal, ... ">"     singleton constant relation
             | "(" expr ")"
    predicate := comparisons over attributes and literals with
                 and / or / not / ( ), operators = != <> < <= > >=
    literal := 42 | 3.14 | "text" | true | false
    v}

    Example:
    [project[sname](select[grade >= 85](students join enrolled))]. *)

exception Parse_error of string

val parse : string -> Algebra.t
(** Raises {!Parse_error} with position information. *)

val parse_predicate : string -> Algebra.predicate
