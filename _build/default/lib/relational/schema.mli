(** Relation schemas: ordered lists of distinct, typed attribute names.

    Attribute order is significant for tuple layout, but two schemas over
    the same attribute set are union-compatible regardless of order — set
    operations realign columns via {!positions_of}. *)

type attribute = string

type t
(** Abstract; construction enforces attribute-name uniqueness. *)

exception Schema_error of string

val make : (attribute * Value.ty) list -> t
(** Raises {!Schema_error} on duplicate attribute names. *)

val attributes : t -> attribute list
val types : t -> Value.ty list
val pairs : t -> (attribute * Value.ty) list
val arity : t -> int
val mem : t -> attribute -> bool
val type_of_attr : t -> attribute -> Value.ty
(** Raises {!Schema_error} if the attribute is absent. *)

val index_of : t -> attribute -> int
(** Position of the attribute; raises {!Schema_error} if absent. *)

val equal : t -> t -> bool
(** Same attributes, same types, same order. *)

val union_compatible : t -> t -> bool
(** Same attribute set with identical types (order may differ). *)

val positions_of : t -> t -> int array
(** [positions_of target source] maps each attribute position of [target]
    to its position in [source]; raises {!Schema_error} unless the schemas
    are union-compatible.  Used to realign tuples before set operations. *)

val project : t -> attribute list -> t
(** Sub-schema in the order given; raises {!Schema_error} on unknown or
    duplicate attributes. *)

val rename : t -> (attribute * attribute) list -> t
(** [rename s mapping] renames attributes per [mapping] (missing entries
    are kept); raises {!Schema_error} if the result has duplicates or a
    source attribute is absent. *)

val product : t -> t -> t
(** Concatenation; raises {!Schema_error} on shared attribute names. *)

val common : t -> t -> attribute list
(** Attributes present in both schemas (in the order of the first); raises
    {!Schema_error} if a shared attribute has different types. *)

val join : t -> t -> t
(** Natural-join schema: first schema followed by the non-shared attributes
    of the second. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
