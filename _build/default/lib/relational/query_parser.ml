exception Parse_error of string

type token =
  | Tname of string
  | Tint of int
  | Tfloat of float
  | Tstring of string
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tlangle
  | Trangle
  | Tcomma
  | Tarrow
  | Top of Algebra.comparison
  | Teq  (* '=' doubles as comparison and singleton binding *)
  | Teof

let err pos fmt =
  Printf.ksprintf
    (fun s -> raise (Parse_error (Printf.sprintf "at offset %d: %s" pos s)))
    fmt

let is_digit c = c >= '0' && c <= '9'
let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t pos = tokens := (t, pos) :: !tokens in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' -> emit Tlparen i; go (i + 1)
      | ')' -> emit Trparen i; go (i + 1)
      | '[' -> emit Tlbracket i; go (i + 1)
      | ']' -> emit Trbracket i; go (i + 1)
      | ',' -> emit Tcomma i; go (i + 1)
      | '=' -> emit Teq i; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' ->
          emit (Top Algebra.Ne) i;
          go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '>' ->
          emit (Top Algebra.Ne) i;
          go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' ->
          emit (Top Algebra.Le) i;
          go (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' ->
          emit (Top Algebra.Ge) i;
          go (i + 2)
      | '<' -> emit Tlangle i; go (i + 1)
      | '>' -> emit Trangle i; go (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '>' ->
          emit Tarrow i;
          go (i + 2)
      | '"' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then err i "unterminated string literal"
            else if src.[j] = '"' then j + 1
            else begin
              Buffer.add_char buf src.[j];
              str (j + 1)
            end
          in
          let j = str (i + 1) in
          emit (Tstring (Buffer.contents buf)) i;
          go j
      | c when is_digit c || (c = '-' && i + 1 < n && is_digit src.[i + 1]) ->
          let start = i in
          let j = ref (i + 1) in
          while !j < n && is_digit src.[!j] do incr j done;
          let is_float =
            !j + 1 < n && src.[!j] = '.' && is_digit src.[!j + 1]
          in
          if is_float then begin
            incr j;
            while !j < n && is_digit src.[!j] do incr j done
          end;
          let text = String.sub src start (!j - start) in
          (if is_float then
             match float_of_string_opt text with
             | Some f -> emit (Tfloat f) start
             | None -> err start "bad float %S" text
           else
             match int_of_string_opt text with
             | Some k -> emit (Tint k) start
             | None -> err start "bad integer %S" text);
          go !j
      | c when is_name_char c ->
          let start = i in
          let j = ref i in
          while !j < n && is_name_char src.[!j] do incr j done;
          emit (Tname (String.sub src start (!j - start))) start;
          go !j
      | c -> err i "unexpected character %C" c
  in
  go 0;
  List.rev ((Teof, n) :: !tokens)

type state = { mutable rest : (token * int) list }

let peek st = match st.rest with [] -> (Teof, 0) | t :: _ -> t
let peek2 st = match st.rest with _ :: t :: _ -> t | _ -> (Teof, 0)

let advance st =
  match st.rest with [] -> () | _ :: rest -> st.rest <- rest

let expect st tok what =
  let t, pos = peek st in
  if t = tok then advance st else err pos "expected %s" what

let parse_literal st =
  match peek st with
  | Tint k, _ ->
      advance st;
      Value.Int k
  | Tfloat f, _ ->
      advance st;
      Value.Float f
  | Tstring s, _ ->
      advance st;
      Value.String s
  | Tname "true", _ ->
      advance st;
      Value.Bool true
  | Tname "false", _ ->
      advance st;
      Value.Bool false
  | _, pos -> err pos "expected a literal"

let comparison_op st =
  match peek st with
  | Top op, _ ->
      advance st;
      Some op
  | Teq, _ ->
      advance st;
      Some Algebra.Eq
  | Tlangle, _ ->
      advance st;
      Some Algebra.Lt
  | Trangle, _ ->
      advance st;
      Some Algebra.Gt
  | _ -> None

let parse_operand st =
  match peek st with
  | Tname name, pos -> (
      match name with
      | "true" | "false" ->
          advance st;
          Algebra.Const (Value.Bool (name = "true"))
      | "and" | "or" | "not" -> err pos "keyword %S cannot be an operand" name
      | _ ->
          advance st;
          Algebra.Attr name)
  | (Tint _ | Tfloat _ | Tstring _), _ -> Algebra.Const (parse_literal st)
  | _, pos -> err pos "expected an attribute or literal"

let rec parse_or_pred st =
  let left = parse_and_pred st in
  match peek st with
  | Tname "or", _ ->
      advance st;
      Algebra.Or (left, parse_or_pred st)
  | _ -> left

and parse_and_pred st =
  let left = parse_not_pred st in
  match peek st with
  | Tname "and", _ ->
      advance st;
      Algebra.And (left, parse_and_pred st)
  | _ -> left

and parse_not_pred st =
  match peek st with
  | Tname "not", _ ->
      advance st;
      Algebra.Not (parse_not_pred st)
  | Tlparen, _ ->
      advance st;
      let p = parse_or_pred st in
      expect st Trparen "')'";
      p
  | Tname "true", _ when not (is_comparison_next st) ->
      advance st;
      Algebra.True
  | Tname "false", _ when not (is_comparison_next st) ->
      advance st;
      Algebra.False
  | _, pos -> (
      let left = parse_operand st in
      match comparison_op st with
      | Some op -> Algebra.Cmp (op, left, parse_operand st)
      | None -> err pos "expected a comparison operator")

and is_comparison_next st =
  match peek2 st with
  | (Top _ | Teq | Tlangle | Trangle), _ -> true
  | _ -> false

let parse_name_list st =
  let rec go acc =
    match peek st with
    | Tname name, _ ->
        advance st;
        (match peek st with
        | Tcomma, _ ->
            advance st;
            go (name :: acc)
        | _ -> List.rev (name :: acc))
    | _, pos -> err pos "expected an attribute name"
  in
  go []

let parse_rename_list st =
  let rec go acc =
    match peek st with
    | Tname src_name, _ ->
        advance st;
        expect st Tarrow "'->'";
        (match peek st with
        | Tname dst, _ ->
            advance st;
            let acc = (src_name, dst) :: acc in
            (match peek st with
            | Tcomma, _ ->
                advance st;
                go acc
            | _ -> List.rev acc)
        | _, pos -> err pos "expected a new attribute name")
    | _, pos -> err pos "expected an attribute name"
  in
  go []

let rec parse_expr st =
  let left = parse_term st in
  match peek st with
  | Tname "union", _ ->
      advance st;
      parse_expr_rest st (Algebra.Union (left, parse_term st))
  | Tname "minus", _ ->
      advance st;
      parse_expr_rest st (Algebra.Diff (left, parse_term st))
  | Tname "intersect", _ ->
      advance st;
      parse_expr_rest st (Algebra.Inter (left, parse_term st))
  | _ -> left

and parse_expr_rest st left =
  match peek st with
  | Tname "union", _ ->
      advance st;
      parse_expr_rest st (Algebra.Union (left, parse_term st))
  | Tname "minus", _ ->
      advance st;
      parse_expr_rest st (Algebra.Diff (left, parse_term st))
  | Tname "intersect", _ ->
      advance st;
      parse_expr_rest st (Algebra.Inter (left, parse_term st))
  | _ -> left

and parse_term st =
  let left = parse_factor st in
  parse_term_rest st left

and parse_term_rest st left =
  match peek st with
  | Tname "join", _ ->
      advance st;
      parse_term_rest st (Algebra.Join (left, parse_factor st))
  | Tname "times", _ ->
      advance st;
      parse_term_rest st (Algebra.Product (left, parse_factor st))
  | Tname "divide", _ ->
      advance st;
      parse_term_rest st (Algebra.Divide (left, parse_factor st))
  | _ -> left

and parse_factor st =
  match peek st with
  | Tlparen, _ ->
      advance st;
      let e = parse_expr st in
      expect st Trparen "')'";
      e
  | Tlangle, _ ->
      advance st;
      (* singleton: <a = 1, b = "x"> *)
      let rec bindings acc =
        match peek st with
        | Tname a, _ ->
            advance st;
            expect st Teq "'='";
            let v = parse_literal st in
            let acc = (a, v) :: acc in
            (match peek st with
            | Tcomma, _ ->
                advance st;
                bindings acc
            | _ -> List.rev acc)
        | _, pos -> err pos "expected an attribute binding"
      in
      let bs = match peek st with
        | Trangle, _ -> []
        | _ -> bindings []
      in
      expect st Trangle "'>'";
      Algebra.Singleton bs
  | Tname "project", _ ->
      advance st;
      expect st Tlbracket "'['";
      let attrs = parse_name_list st in
      expect st Trbracket "']'";
      expect st Tlparen "'('";
      let e = parse_expr st in
      expect st Trparen "')'";
      Algebra.Project (attrs, e)
  | Tname "select", _ ->
      advance st;
      expect st Tlbracket "'['";
      let p = parse_or_pred st in
      expect st Trbracket "']'";
      expect st Tlparen "'('";
      let e = parse_expr st in
      expect st Trparen "')'";
      Algebra.Select (p, e)
  | Tname "rename", _ ->
      advance st;
      expect st Tlbracket "'['";
      let mapping = parse_rename_list st in
      expect st Trbracket "']'";
      expect st Tlparen "'('";
      let e = parse_expr st in
      expect st Trparen "')'";
      Algebra.Rename (mapping, e)
  | Tname name, _ ->
      advance st;
      Algebra.Rel name
  | _, pos -> err pos "expected an expression"

let parse src =
  let st = { rest = tokenize src } in
  let e = parse_expr st in
  (match peek st with
  | Teof, _ -> ()
  | _, pos -> err pos "trailing input");
  e

let parse_predicate src =
  let st = { rest = tokenize src } in
  let p = parse_or_pred st in
  (match peek st with
  | Teof, _ -> ()
  | _, pos -> err pos "trailing input");
  p
