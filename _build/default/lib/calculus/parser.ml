exception Parse_error of string

module A = Relational.Algebra
module V = Relational.Value

type token =
  | Tname of string
  | Tint of int
  | Tfloat of float
  | Tstring of string
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tcomma
  | Tdot
  | Tbar
  | Top of A.comparison
  | Teof

let err pos fmt =
  Printf.ksprintf
    (fun s -> raise (Parse_error (Printf.sprintf "at offset %d: %s" pos s)))
    fmt

let is_digit c = c >= '0' && c <= '9'
let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t pos = tokens := (t, pos) :: !tokens in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' -> emit Tlparen i; go (i + 1)
      | ')' -> emit Trparen i; go (i + 1)
      | '{' -> emit Tlbrace i; go (i + 1)
      | '}' -> emit Trbrace i; go (i + 1)
      | ',' -> emit Tcomma i; go (i + 1)
      | '.' -> emit Tdot i; go (i + 1)
      | '|' -> emit Tbar i; go (i + 1)
      | '=' -> emit (Top A.Eq) i; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit (Top A.Ne) i; go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '>' -> emit (Top A.Ne) i; go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit (Top A.Le) i; go (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit (Top A.Ge) i; go (i + 2)
      | '<' -> emit (Top A.Lt) i; go (i + 1)
      | '>' -> emit (Top A.Gt) i; go (i + 1)
      | '"' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then err i "unterminated string literal"
            else if src.[j] = '"' then j + 1
            else begin
              Buffer.add_char buf src.[j];
              str (j + 1)
            end
          in
          let j = str (i + 1) in
          emit (Tstring (Buffer.contents buf)) i;
          go j
      | c when is_digit c || (c = '-' && i + 1 < n && is_digit src.[i + 1]) ->
          let start = i in
          let j = ref (i + 1) in
          while !j < n && is_digit src.[!j] do incr j done;
          let is_float =
            !j + 1 < n && src.[!j] = '.' && is_digit src.[!j + 1]
          in
          if is_float then begin
            incr j;
            while !j < n && is_digit src.[!j] do incr j done
          end;
          let text = String.sub src start (!j - start) in
          (if is_float then emit (Tfloat (float_of_string text)) start
           else emit (Tint (int_of_string text)) start);
          go !j
      | c when is_name_char c ->
          let start = i in
          let j = ref i in
          while !j < n && is_name_char src.[!j] do incr j done;
          emit (Tname (String.sub src start (!j - start))) start;
          go !j
      | c -> err i "unexpected character %C" c
  in
  go 0;
  List.rev ((Teof, n) :: !tokens)

type state = { mutable rest : (token * int) list }

let peek st = match st.rest with [] -> (Teof, 0) | t :: _ -> t
let peek2 st = match st.rest with _ :: t :: _ -> t | _ -> (Teof, 0)
let advance st = match st.rest with [] -> () | _ :: r -> st.rest <- r

let expect st tok what =
  let t, pos = peek st in
  if t = tok then advance st else err pos "expected %s" what

let parse_term st =
  match peek st with
  | Tint k, _ ->
      advance st;
      Formula.Const (V.Int k)
  | Tfloat f, _ ->
      advance st;
      Formula.Const (V.Float f)
  | Tstring s, _ ->
      advance st;
      Formula.Const (V.String s)
  | Tname "true", _ ->
      advance st;
      Formula.Const (V.Bool true)
  | Tname "false", _ ->
      advance st;
      Formula.Const (V.Bool false)
  | Tname v, pos ->
      if List.mem v [ "and"; "or"; "not"; "exists"; "forall" ] then
        err pos "keyword %S cannot be a term" v
      else begin
        advance st;
        Formula.Var v
      end
  | _, pos -> err pos "expected a term"

let parse_var st =
  match peek st with
  | Tname v, pos ->
      if List.mem v [ "and"; "or"; "not"; "exists"; "forall"; "true"; "false" ]
      then err pos "keyword %S cannot be a variable" v
      else begin
        advance st;
        v
      end
  | _, pos -> err pos "expected a variable"

let rec parse_formula st =
  match peek st with
  | Tname ("exists" | "forall"), _ -> parse_quantified st
  | _ -> parse_or st

and parse_quantified st =
  let quantifier =
    match peek st with
    | Tname "exists", _ ->
        advance st;
        `Exists
    | Tname "forall", _ ->
        advance st;
        `Forall
    | _, pos -> err pos "expected a quantifier"
  in
  let rec vars acc =
    let v = parse_var st in
    match peek st with
    | Tcomma, _ ->
        advance st;
        vars (v :: acc)
    | _ -> List.rev (v :: acc)
  in
  let bound = vars [] in
  expect st Tdot "'.' after quantified variables";
  let body = parse_formula st in
  match quantifier with
  | `Exists -> Formula.exists_many bound body
  | `Forall -> Formula.forall_many bound body

and parse_or st =
  let left = parse_and st in
  match peek st with
  | Tname "or", _ ->
      advance st;
      Formula.Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_not st in
  match peek st with
  | Tname "and", _ ->
      advance st;
      Formula.And (left, parse_and st)
  | _ -> left

and parse_not st =
  match peek st with
  | Tname "not", _ ->
      advance st;
      Formula.Not (parse_not st)
  | Tname ("exists" | "forall"), _ -> parse_quantified st
  | _ -> parse_atom_level st

and parse_atom_level st =
  match (peek st, peek2 st) with
  | (Tlparen, _), _ ->
      advance st;
      let f = parse_formula st in
      expect st Trparen "')'";
      f
  | (Tname name, _), (Tlparen, _)
    when not (List.mem name [ "and"; "or"; "not"; "exists"; "forall" ]) ->
      advance st;
      advance st;
      let rec args acc =
        let t = parse_term st in
        match peek st with
        | Tcomma, _ ->
            advance st;
            args (t :: acc)
        | Trparen, _ ->
            advance st;
            List.rev (t :: acc)
        | _, pos -> err pos "expected ',' or ')'"
      in
      let ts = match peek st with
        | Trparen, _ ->
            advance st;
            []
        | _ -> args []
      in
      Formula.Atom (name, ts)
  | _ ->
      let left = parse_term st in
      (match peek st with
      | Top op, _ ->
          advance st;
          Formula.Cmp (op, left, parse_term st)
      | _, pos -> err pos "expected a comparison operator")

let parse_formula_string src =
  let st = { rest = tokenize src } in
  let f = parse_formula st in
  (match peek st with
  | Teof, _ -> ()
  | _, pos -> err pos "trailing input");
  f

let parse_query src =
  let st = { rest = tokenize src } in
  match peek st with
  | Tlbrace, _ ->
      advance st;
      let head =
        match peek st with
        | Tbar, _ -> []
        | _ ->
            let rec vars acc =
              let v = parse_var st in
              match peek st with
              | Tcomma, _ ->
                  advance st;
                  vars (v :: acc)
              | _ -> List.rev (v :: acc)
            in
            vars []
      in
      expect st Tbar "'|'";
      let body = parse_formula st in
      expect st Trbrace "'}'";
      (match peek st with
      | Teof, _ -> ()
      | _, pos -> err pos "trailing input");
      let q = { Formula.head; body } in
      Formula.check_query q;
      q
  | _ ->
      let body = parse_formula_string src in
      { Formula.head = []; body }

let parse_formula = parse_formula_string
