(** Codd's theorem, direction one: calculus → algebra.

    [translate_query db q] compiles a calculus query into a relational
    algebra expression over the catalog of [db] (plus singleton constant
    relations), equivalent to [q] under active-domain semantics.  For
    safe-range queries ({!Safety.is_safe_range}) active-domain and natural
    semantics coincide, so the translation witnesses that "the calculus is
    implementable" [Co2].

    The active domain of each variable is itself expressed in the algebra,
    as the union of projections of base-relation columns of the variable's
    type together with the query's constants — the output needs nothing
    beyond the algebra. *)

val adom_expr :
  Relational.Algebra.catalog ->
  names:string list ->
  constants:Relational.Value.t list ->
  ty:Relational.Value.ty ->
  var:string ->
  Relational.Algebra.t
(** Unary algebra expression, column named [var], denoting every value of
    type [ty] in the named relations or in [constants]. *)

val translate :
  Relational.Algebra.catalog -> names:string list -> Formula.query -> Relational.Algebra.t
(** Raises {!Typing.Type_error} on untypeable queries, {!Formula.Ill_formed}
    on malformed heads.  Vacuous quantifiers (over variables that do not
    occur in their scope) are simplified away. *)

val translate_query : Relational.Database.t -> Formula.query -> Relational.Algebra.t
(** [translate] against the catalog and names of a concrete instance. *)
