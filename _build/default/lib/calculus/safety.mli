(** Safe-range analysis: the syntactic guarantee of domain independence.

    An unrestricted calculus query such as [{x | ¬R(x)}] depends on the
    underlying domain, not just the database; safe-range queries do not,
    and are exactly as expressive as the algebra (Codd's theorem, in the
    form of the Alice book ch. 5).  [range_restricted] computes the set of
    range-restricted variables of a formula in safe-range normal form;
    [is_safe_range] checks the full criterion. *)

type verdict = Safe | Unsafe of string

val srnf : Formula.t -> Formula.t
(** Safe-range normal form: variables renamed apart, ∀ eliminated, double
    negations removed. *)

val range_restricted : Formula.t -> string list option
(** [range_restricted f] for [f] in SRNF: [Some vars] gives the
    range-restricted free variables; [None] means the ⊥ ("unsafe")
    verdict propagated from a quantified variable that is not restricted
    in its scope. *)

val is_safe_range : Formula.query -> verdict
(** A query is safe-range iff (after SRNF) every free variable of the body
    is range-restricted. *)

val explain : verdict -> string
