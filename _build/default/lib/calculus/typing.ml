exception Type_error of string

type env = (string * Relational.Value.ty) list

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

(* Union-find over variable names, with an optional concrete type per
   class root. *)
type uf = {
  parent : (string, string) Hashtbl.t;
  ty : (string, Relational.Value.ty) Hashtbl.t;
}

let uf_create () = { parent = Hashtbl.create 16; ty = Hashtbl.create 16 }

let rec find uf x =
  match Hashtbl.find_opt uf.parent x with
  | None -> x
  | Some p ->
      let root = find uf p in
      if root <> p then Hashtbl.replace uf.parent x root;
      root

let assign uf x ty =
  let root = find uf x in
  match Hashtbl.find_opt uf.ty root with
  | None -> Hashtbl.replace uf.ty root ty
  | Some ty' ->
      if ty <> ty' then
        err "variable %S is used both as %s and as %s" x
          (Relational.Value.ty_to_string ty')
          (Relational.Value.ty_to_string ty)

let union uf x y =
  let rx = find uf x and ry = find uf y in
  if rx <> ry then begin
    let tx = Hashtbl.find_opt uf.ty rx and ty_ = Hashtbl.find_opt uf.ty ry in
    Hashtbl.replace uf.parent rx ry;
    match (tx, ty_) with
    | Some t, None -> Hashtbl.replace uf.ty ry t
    | Some t, Some t' when t <> t' ->
        err "variables %S (%s) and %S (%s) are compared but differ in type" x
          (Relational.Value.ty_to_string t)
          y
          (Relational.Value.ty_to_string t')
    | _ -> ()
  end

let infer catalog formula =
  let uf = uf_create () in
  let touch = Hashtbl.create 16 in
  let see v = Hashtbl.replace touch v () in
  let rec walk f =
    match f with
    | Formula.Atom (r, ts) ->
        let schema =
          try catalog r
          with e ->
            err "unknown relation %S (%s)" r (Printexc.to_string e)
        in
        let types = Relational.Schema.types schema in
        if List.length ts <> List.length types then
          err "atom %s has %d arguments, relation has arity %d" r
            (List.length ts) (List.length types);
        List.iter2
          (fun t ty ->
            match t with
            | Formula.Var v ->
                see v;
                assign uf v ty
            | Formula.Const c ->
                if Relational.Value.type_of c <> ty then
                  err "constant %s has type %s where %s expects %s"
                    (Relational.Value.to_literal c)
                    (Relational.Value.ty_to_string (Relational.Value.type_of c))
                    r
                    (Relational.Value.ty_to_string ty))
          ts types
    | Formula.Cmp (_, a, b) -> (
        match (a, b) with
        | Formula.Var x, Formula.Var y ->
            see x;
            see y;
            union uf x y
        | Formula.Var x, Formula.Const c | Formula.Const c, Formula.Var x ->
            see x;
            assign uf x (Relational.Value.type_of c)
        | Formula.Const c, Formula.Const c' ->
            if Relational.Value.type_of c <> Relational.Value.type_of c' then
              err "comparison between constants of different types %s and %s"
                (Relational.Value.to_literal c)
                (Relational.Value.to_literal c'))
    | Formula.And (p, q) | Formula.Or (p, q) ->
        walk p;
        walk q
    | Formula.Not p -> walk p
    | Formula.Exists (x, p) | Formula.Forall (x, p) ->
        see x;
        walk p
  in
  walk formula;
  Hashtbl.fold
    (fun v () acc ->
      match Hashtbl.find_opt uf.ty (find uf v) with
      | Some ty -> (v, ty) :: acc
      | None -> err "variable %S cannot be assigned a type" v)
    touch []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let type_of_var env v =
  match List.assoc_opt v env with
  | Some ty -> ty
  | None -> err "variable %S has no inferred type" v
