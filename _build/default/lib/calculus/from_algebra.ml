module R = Relational
module A = R.Algebra

let tautology =
  Formula.Cmp (A.Eq, Formula.Const (R.Value.Int 0), Formula.Const (R.Value.Int 0))

let contradiction =
  Formula.Cmp (A.Ne, Formula.Const (R.Value.Int 0), Formula.Const (R.Value.Int 0))

let predicate_formula p =
  let term = function
    | A.Attr a -> Formula.Var a
    | A.Const v -> Formula.Const v
  in
  let rec go = function
    | A.True -> tautology
    | A.False -> contradiction
    | A.Cmp (c, l, r) -> Formula.Cmp (c, term l, term r)
    | A.And (p, q) -> Formula.And (go p, go q)
    | A.Or (p, q) -> Formula.Or (go p, go q)
    | A.Not p -> Formula.Not (go p)
  in
  go p

let rec formula_of catalog expr =
  match expr with
  | A.Rel name ->
      let attrs = R.Schema.attributes (catalog name) in
      Formula.Atom (name, List.map (fun a -> Formula.Var a) attrs)
  | A.Singleton [] -> tautology
  | A.Singleton bindings ->
      Formula.conj
        (List.map
           (fun (a, v) -> Formula.Cmp (A.Eq, Formula.Var a, Formula.Const v))
           bindings)
  | A.Select (p, e) -> Formula.And (formula_of catalog e, predicate_formula p)
  | A.Project (attrs, e) ->
      let inner_attrs = R.Schema.attributes (A.schema_of catalog e) in
      let removed = List.filter (fun a -> not (List.mem a attrs)) inner_attrs in
      Formula.exists_many removed (formula_of catalog e)
  | A.Rename (mapping, e) ->
      Formula.rename_free mapping (formula_of catalog e)
  | A.Product (a, b) | A.Join (a, b) ->
      Formula.And (formula_of catalog a, formula_of catalog b)
  | A.Union (a, b) ->
      Formula.Or (formula_of catalog a, align catalog a b)
  | A.Inter (a, b) ->
      Formula.And (formula_of catalog a, align catalog a b)
  | A.Diff (a, b) ->
      Formula.And (formula_of catalog a, Formula.Not (align catalog a b))
  | A.Divide (r, s) ->
      (* { t over keep | (∃ div: r(t,div)) ∧ (∀ div: s(div) → r(t,div)) } *)
      let div_attrs = R.Schema.attributes (A.schema_of catalog s) in
      let fr = formula_of catalog r and fs = formula_of catalog s in
      let some_pairing = Formula.exists_many div_attrs fr in
      let all_pairings =
        Formula.forall_many div_attrs
          (Formula.Or (Formula.Not fs, fr))
      in
      Formula.And (some_pairing, all_pairings)

(* Set operations align columns by name, so the two bodies already share
   free variables; nothing to do beyond recursing.  (Kept as a function to
   make the intent explicit at call sites.) *)
and align catalog _left right = formula_of catalog right

let query_of catalog expr =
  let head = R.Schema.attributes (A.schema_of catalog expr) in
  { Formula.head; body = formula_of catalog expr }
