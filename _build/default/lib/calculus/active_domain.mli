(** Direct (interpretive) evaluation of calculus queries under active-domain
    semantics.

    Quantifiers range over the active domain of the instance extended with
    the constants of the query, restricted to each variable's inferred
    type.  This evaluator is deliberately naive — it is the specification
    against which the Codd translation ({!To_algebra}) is property-tested,
    and the baseline the translation beats in the benchmark. *)

val relevant_domain :
  Relational.Database.t -> Formula.t -> Relational.Value.ty -> Relational.Value.t list
(** Active domain of the instance plus the formula's constants, filtered to
    the given type. *)

val eval_formula :
  Relational.Database.t ->
  (string -> Relational.Value.t list) ->
  (string * Relational.Value.t) list ->
  Formula.t ->
  bool
(** [eval_formula db domain_of env f] decides [f] under assignment [env],
    with quantified variables ranging over [domain_of var]. *)

val eval : Relational.Database.t -> Formula.query -> Relational.Relation.t
(** Evaluates a query; the result schema assigns each head variable its
    inferred type, in head order.  Raises {!Typing.Type_error} on
    untypeable queries and {!Formula.Ill_formed} on malformed heads. *)
