(** A concrete syntax for relational calculus queries.

    {v
    query   := "{" var, var, ... "|" formula "}"     (boolean: just a formula)
    formula := quantified | or
    quantified := ("exists" | "forall") var (, var)* "." formula
    or      := and ("or" and)*
    and     := not ("and" not)*
    not     := "not" not | atom-level
    atom-level := NAME "(" term, ... ")"             relation atom
                | term OP term                        comparison (= != <> < <= > >=)
                | "(" formula ")"
    term    := variable | 42 | 3.14 | "text" | true | false
    v}

    Example: [{x | exists y. edge(x, y) and not edge(x, x)}]. *)

exception Parse_error of string

val parse_query : string -> Formula.query
val parse_formula : string -> Formula.t
