lib/calculus/parser.mli: Formula
