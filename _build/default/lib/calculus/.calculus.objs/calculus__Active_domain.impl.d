lib/calculus/active_domain.ml: Array Formula Hashtbl List Printf Relational Set Typing
