lib/calculus/to_algebra.mli: Formula Relational
