lib/calculus/to_algebra.ml: Formula Hashtbl List Printf Relational Set String Typing
