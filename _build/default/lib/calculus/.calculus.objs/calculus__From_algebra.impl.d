lib/calculus/from_algebra.ml: Formula List Relational
