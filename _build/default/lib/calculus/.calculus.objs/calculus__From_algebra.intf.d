lib/calculus/from_algebra.mli: Formula Relational
