lib/calculus/active_domain.mli: Formula Relational
