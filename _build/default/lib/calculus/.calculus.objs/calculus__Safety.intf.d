lib/calculus/safety.mli: Formula
