lib/calculus/safety.ml: Formula List Printf Relational Set String
