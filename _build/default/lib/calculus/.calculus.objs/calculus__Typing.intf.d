lib/calculus/typing.mli: Formula Relational
