lib/calculus/typing.ml: Formula Hashtbl List Printexc Printf Relational String
