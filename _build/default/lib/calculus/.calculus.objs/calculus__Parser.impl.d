lib/calculus/parser.ml: Buffer Formula List Printf Relational String
