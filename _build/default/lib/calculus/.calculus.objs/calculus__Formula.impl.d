lib/calculus/formula.ml: Format Hashtbl List Printf Relational Set String
