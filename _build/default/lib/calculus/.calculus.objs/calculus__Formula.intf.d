lib/calculus/formula.mli: Format Relational
