type verdict = Safe | Unsafe of string

module Ss = Set.Make (String)

(* Push negations as SRNF requires: eliminate double negation and apply
   De Morgan over ∨ (negation is NOT pushed through ∧ — safe-range keeps
   negated conjunctions as guarded negations). *)
let rec push_not f =
  match f with
  | Formula.Not (Formula.Not p) -> push_not p
  | Formula.Not (Formula.Or (p, q)) ->
      Formula.And (push_not (Formula.Not p), push_not (Formula.Not q))
  | Formula.Not p -> Formula.Not (push_not p)
  | Formula.And (p, q) -> Formula.And (push_not p, push_not q)
  | Formula.Or (p, q) -> Formula.Or (push_not p, push_not q)
  | Formula.Exists (x, p) -> Formula.Exists (x, push_not p)
  | Formula.Forall (x, p) -> Formula.Forall (x, push_not p)
  | Formula.Atom _ | Formula.Cmp _ -> f

let srnf f = push_not (Formula.remove_forall (Formula.rectify f))

(* Range restriction per the Alice book, with equality propagation inside
   conjunctions: conjuncts x = y extend the restricted set of the whole
   conjunction by closure. *)
let rec flatten_and = function
  | Formula.And (p, q) -> flatten_and p @ flatten_and q
  | f -> [ f ]

exception Bottom of string

let rec rr f =
  match f with
  | Formula.Atom (_, ts) ->
      List.fold_left
        (fun acc t ->
          match t with Formula.Var v -> Ss.add v acc | Formula.Const _ -> acc)
        Ss.empty ts
  | Formula.Cmp (Relational.Algebra.Eq, Formula.Var x, Formula.Const _)
  | Formula.Cmp (Relational.Algebra.Eq, Formula.Const _, Formula.Var x) ->
      Ss.singleton x
  | Formula.Cmp _ -> Ss.empty
  | Formula.And _ ->
      let conjuncts = flatten_and f in
      let base =
        List.fold_left (fun acc c -> Ss.union acc (rr c)) Ss.empty conjuncts
      in
      (* propagate x = y equalities to a fixpoint *)
      let equalities =
        List.filter_map
          (function
            | Formula.Cmp (Relational.Algebra.Eq, Formula.Var x, Formula.Var y)
              ->
                Some (x, y)
            | _ -> None)
          conjuncts
      in
      let rec close acc =
        let acc' =
          List.fold_left
            (fun acc (x, y) ->
              if Ss.mem x acc then Ss.add y acc
              else if Ss.mem y acc then Ss.add x acc
              else acc)
            acc equalities
        in
        if Ss.equal acc acc' then acc else close acc'
      in
      close base
  | Formula.Or (p, q) -> Ss.inter (rr p) (rr q)
  | Formula.Not p ->
      (* a negated subformula contributes nothing, but its own quantifiers
         must still be safe *)
      let (_ : Ss.t) = rr p in
      Ss.empty
  | Formula.Exists (x, p) ->
      let rp = rr p in
      if Ss.mem x rp then Ss.remove x rp
      else raise (Bottom (Printf.sprintf "quantified variable %S is not range-restricted" x))
  | Formula.Forall (x, _) ->
      raise
        (Bottom
           (Printf.sprintf
              "formula is not in SRNF: universal quantifier over %S remains" x))

let range_restricted f =
  match rr f with s -> Some (Ss.elements s) | exception Bottom _ -> None

let is_safe_range q =
  Formula.check_query q;
  let body = srnf q.Formula.body in
  match rr body with
  | restricted ->
      let free = Ss.of_list (Formula.free_vars body) in
      if Ss.subset free restricted then Safe
      else begin
        let missing = Ss.elements (Ss.diff free restricted) in
        Unsafe
          (Printf.sprintf "free variable(s) %s are not range-restricted"
             (String.concat ", " missing))
      end
  | exception Bottom msg -> Unsafe msg

let explain = function
  | Safe -> "safe-range (domain-independent)"
  | Unsafe msg -> "unsafe: " ^ msg
