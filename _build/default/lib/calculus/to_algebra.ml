module R = Relational
module A = R.Algebra

module Ss = Set.Make (String)

let adom_expr catalog ~names ~constants ~ty ~var =
  let column_pieces =
    List.concat_map
      (fun name ->
        let schema = catalog name in
        List.filter_map
          (fun (attr, ty') ->
            if ty' = ty then begin
              let projected = A.Project ([ attr ], A.Rel name) in
              if String.equal attr var then Some projected
              else Some (A.Rename ([ (attr, var) ], projected))
            end
            else None)
          (R.Schema.pairs schema))
      names
  in
  let const_pieces =
    List.filter_map
      (fun c ->
        if R.Value.type_of c = ty then Some (A.Singleton [ (var, c) ]) else None)
      constants
  in
  match column_pieces @ const_pieces with
  | [] ->
      raise
        (Typing.Type_error
           (Printf.sprintf
              "no source for the active domain of type %s (variable %S)"
              (R.Value.ty_to_string ty) var))
  | first :: rest -> List.fold_left (fun acc e -> A.Union (acc, e)) first rest

let constants_of body =
  let rec go acc = function
    | Formula.Atom (_, ts) ->
        List.fold_left
          (fun acc t ->
            match t with Formula.Const c -> c :: acc | Formula.Var _ -> acc)
          acc ts
    | Formula.Cmp (_, a, b) ->
        let add acc = function
          | Formula.Const c -> c :: acc
          | Formula.Var _ -> acc
        in
        add (add acc a) b
    | Formula.And (p, q) | Formula.Or (p, q) -> go (go acc p) q
    | Formula.Not p -> go acc p
    | Formula.Exists (_, p) | Formula.Forall (_, p) -> go acc p
  in
  go [] body

let cmp_holds c v w =
  let n = R.Value.compare v w in
  match c with
  | A.Eq -> n = 0
  | A.Ne -> n <> 0
  | A.Lt -> n < 0
  | A.Le -> n <= 0
  | A.Gt -> n > 0
  | A.Ge -> n >= 0

let truth = A.Singleton []
let falsity = A.Diff (A.Singleton [], A.Singleton [])

let translate catalog ~names query =
  Formula.check_query query;
  let body =
    Formula.drop_vacuous (Formula.remove_forall (Formula.rectify query.Formula.body))
  in
  let types = Typing.infer catalog body in
  let constants = constants_of body in
  let adom var =
    adom_expr catalog ~names ~constants
      ~ty:(Typing.type_of_var types var)
      ~var
  in
  (* E(f) denotes a relation whose columns are exactly the sorted free
     variables of f *)
  let canon fvs e = A.Project (Ss.elements fvs, e) in
  let rec trans f =
    let fvs = Ss.of_list (Formula.free_vars f) in
    let expr =
      match f with
      | Formula.Atom (r, ts) ->
          let attrs = R.Schema.attributes (catalog r) in
          if List.length attrs <> List.length ts then
            raise
              (Typing.Type_error
                 (Printf.sprintf "atom %s: arity mismatch" r));
          let bound = List.combine attrs ts in
          let first_occ = Hashtbl.create 8 in
          let selects =
            List.filter_map
              (fun (attr, t) ->
                match t with
                | Formula.Const c -> Some (A.Cmp (A.Eq, A.Attr attr, A.Const c))
                | Formula.Var v -> (
                    match Hashtbl.find_opt first_occ v with
                    | Some attr0 ->
                        Some (A.Cmp (A.Eq, A.Attr attr, A.Attr attr0))
                    | None ->
                        Hashtbl.add first_occ v attr;
                        None))
              bound
          in
          let base =
            match selects with
            | [] -> A.Rel r
            | _ -> A.Select (A.conjoin selects, A.Rel r)
          in
          let keep =
            List.filter_map
              (fun (attr, t) ->
                match t with
                | Formula.Var v when Hashtbl.find_opt first_occ v = Some attr ->
                    Some (attr, v)
                | _ -> None)
              bound
          in
          let projected = A.Project (List.map fst keep, base) in
          let mapping = List.filter (fun (a, v) -> a <> v) keep in
          if mapping = [] then projected else A.Rename (mapping, projected)
      | Formula.Cmp (c, Formula.Const a, Formula.Const b) ->
          if cmp_holds c a b then truth else falsity
      | Formula.Cmp (c, Formula.Var x, Formula.Const k)
        ->
          A.Select (A.Cmp (c, A.Attr x, A.Const k), adom x)
      | Formula.Cmp (c, Formula.Const k, Formula.Var x) ->
          A.Select (A.Cmp (c, A.Const k, A.Attr x), adom x)
      | Formula.Cmp (c, Formula.Var x, Formula.Var y) when String.equal x y ->
          A.Select (A.Cmp (c, A.Attr x, A.Attr y), adom x)
      | Formula.Cmp (c, Formula.Var x, Formula.Var y) ->
          A.Select (A.Cmp (c, A.Attr x, A.Attr y), A.Product (adom x, adom y))
      | Formula.And (p, q) -> A.Join (trans p, trans q)
      | Formula.Or (p, q) ->
          let fp = Ss.of_list (Formula.free_vars p)
          and fq = Ss.of_list (Formula.free_vars q) in
          let pad e present =
            Ss.fold
              (fun v acc -> A.Product (acc, adom v))
              (Ss.diff fvs present) e
          in
          A.Union (pad (trans p) fp, pad (trans q) fq)
      | Formula.Not p ->
          let full =
            match Ss.elements fvs with
            | [] -> truth
            | v :: rest ->
                List.fold_left
                  (fun acc w -> A.Product (acc, adom w))
                  (adom v) rest
          in
          A.Diff (full, trans p)
      | Formula.Exists (x, p) ->
          let fp = Formula.free_vars p in
          A.Project (List.filter (fun v -> v <> x) fp, trans p)
      | Formula.Forall _ ->
          (* removed by remove_forall *)
          assert false
    in
    canon fvs expr
  in
  A.Project (query.Formula.head, trans body)

let translate_query db query =
  translate
    (A.catalog_of_database db)
    ~names:(R.Database.names db)
    query
