module R = Relational

let constants f =
  let rec go acc = function
    | Formula.Atom (_, ts) ->
        List.fold_left
          (fun acc t ->
            match t with Formula.Const c -> c :: acc | Formula.Var _ -> acc)
          acc ts
    | Formula.Cmp (_, a, b) ->
        let add acc = function
          | Formula.Const c -> c :: acc
          | Formula.Var _ -> acc
        in
        add (add acc a) b
    | Formula.And (p, q) | Formula.Or (p, q) -> go (go acc p) q
    | Formula.Not p -> go acc p
    | Formula.Exists (_, p) | Formula.Forall (_, p) -> go acc p
  in
  go [] f

let relevant_domain db f ty =
  let module Vs = Set.Make (struct
    type t = R.Value.t

    let compare = R.Value.compare_poly
  end) in
  let vs = Vs.of_list (R.Database.active_domain db) in
  let vs = List.fold_left (fun acc c -> Vs.add c acc) vs (constants f) in
  List.filter (fun v -> R.Value.type_of v = ty) (Vs.elements vs)

let eval_formula db domain_of env f =
  let rec go env = function
    | Formula.Atom (r, ts) ->
        let rel = R.Database.find db r in
        let tup =
          Array.of_list
            (List.map
               (function
                 | Formula.Const c -> c
                 | Formula.Var v -> (
                     match List.assoc_opt v env with
                     | Some value -> value
                     | None ->
                         raise
                           (Formula.Ill_formed
                              (Printf.sprintf "unbound variable %S" v))))
               ts)
        in
        R.Relation.mem rel tup
    | Formula.Cmp (c, a, b) ->
        let value = function
          | Formula.Const v -> v
          | Formula.Var x -> (
              match List.assoc_opt x env with
              | Some v -> v
              | None ->
                  raise
                    (Formula.Ill_formed (Printf.sprintf "unbound variable %S" x)))
        in
        let cmp = R.Value.compare (value a) (value b) in
        (match c with
        | R.Algebra.Eq -> cmp = 0
        | R.Algebra.Ne -> cmp <> 0
        | R.Algebra.Lt -> cmp < 0
        | R.Algebra.Le -> cmp <= 0
        | R.Algebra.Gt -> cmp > 0
        | R.Algebra.Ge -> cmp >= 0)
    | Formula.And (p, q) -> go env p && go env q
    | Formula.Or (p, q) -> go env p || go env q
    | Formula.Not p -> not (go env p)
    | Formula.Exists (x, p) ->
        List.exists (fun v -> go ((x, v) :: env) p) (domain_of x)
    | Formula.Forall (x, p) ->
        List.for_all (fun v -> go ((x, v) :: env) p) (domain_of x)
  in
  go env f

let eval db query =
  Formula.check_query query;
  let body = Formula.drop_vacuous (Formula.rectify query.Formula.body) in
  let catalog = R.Algebra.catalog_of_database db in
  let types = Typing.infer catalog body in
  let domain_cache = Hashtbl.create 8 in
  let domain_of_ty ty =
    match Hashtbl.find_opt domain_cache ty with
    | Some d -> d
    | None ->
        let d = relevant_domain db body ty in
        Hashtbl.add domain_cache ty d;
        d
  in
  let domain_of v = domain_of_ty (Typing.type_of_var types v) in
  let head = query.Formula.head in
  let schema =
    R.Schema.make (List.map (fun v -> (v, Typing.type_of_var types v)) head)
  in
  (* enumerate assignments of the head variables; the body decides *)
  let rec enumerate env = function
    | [] ->
        if eval_formula db domain_of env body then
          [ Array.of_list (List.map (fun v -> List.assoc v env) head) ]
        else []
    | v :: rest ->
        List.concat_map
          (fun value -> enumerate ((v, value) :: env) rest)
          (domain_of v)
  in
  R.Relation.of_tuples schema (enumerate [] head)
