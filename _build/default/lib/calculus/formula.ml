type term = Var of string | Const of Relational.Value.t

type t =
  | Atom of string * term list
  | Cmp of Relational.Algebra.comparison * term * term
  | And of t * t
  | Or of t * t
  | Not of t
  | Exists of string * t
  | Forall of string * t

type query = { head : string list; body : t }

exception Ill_formed of string

let err fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

module Ss = Set.Make (String)

let term_vars = function Var v -> Ss.singleton v | Const _ -> Ss.empty

let rec fv = function
  | Atom (_, ts) ->
      List.fold_left (fun acc t -> Ss.union acc (term_vars t)) Ss.empty ts
  | Cmp (_, a, b) -> Ss.union (term_vars a) (term_vars b)
  | And (p, q) | Or (p, q) -> Ss.union (fv p) (fv q)
  | Not p -> fv p
  | Exists (x, p) | Forall (x, p) -> Ss.remove x (fv p)

let free_vars f = Ss.elements (fv f)

let rec av = function
  | Atom (_, ts) ->
      List.fold_left (fun acc t -> Ss.union acc (term_vars t)) Ss.empty ts
  | Cmp (_, a, b) -> Ss.union (term_vars a) (term_vars b)
  | And (p, q) | Or (p, q) -> Ss.union (av p) (av q)
  | Not p -> av p
  | Exists (x, p) | Forall (x, p) -> Ss.add x (av p)

let all_vars f = Ss.elements (av f)

let exists_many xs f = List.fold_right (fun x acc -> Exists (x, acc)) xs f
let forall_many xs f = List.fold_right (fun x acc -> Forall (x, acc)) xs f

let conj = function
  | [] -> invalid_arg "Formula.conj: empty list"
  | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let fresh_counter = ref 0

let fresh base =
  incr fresh_counter;
  Printf.sprintf "%s_%d" base !fresh_counter

let subst_term mapping = function
  | Var v -> (
      match List.assoc_opt v mapping with Some w -> Var w | None -> Var v)
  | Const c -> Const c

let rec rename_free mapping f =
  match f with
  | Atom (r, ts) -> Atom (r, List.map (subst_term mapping) ts)
  | Cmp (c, a, b) -> Cmp (c, subst_term mapping a, subst_term mapping b)
  | And (p, q) -> And (rename_free mapping p, rename_free mapping q)
  | Or (p, q) -> Or (rename_free mapping p, rename_free mapping q)
  | Not p -> Not (rename_free mapping p)
  | Exists (x, p) -> quantify mapping x p (fun x p -> Exists (x, p))
  | Forall (x, p) -> quantify mapping x p (fun x p -> Forall (x, p))

and quantify mapping x p rebuild =
  let mapping = List.filter (fun (src, _) -> src <> x) mapping in
  let targets = List.map snd mapping in
  if List.mem x targets then begin
    (* the bound variable would capture a renamed free variable *)
    let x' = fresh x in
    let p' = rename_free [ (x, x') ] p in
    rebuild x' (rename_free mapping p')
  end
  else rebuild x (rename_free mapping p)

let rectify f =
  let used = ref (fv f) in
  let pick base =
    if Ss.mem base !used then begin
      let rec loop () =
        let cand = fresh base in
        if Ss.mem cand !used then loop () else cand
      in
      loop ()
    end
    else base
  in
  let rec go env f =
    match f with
    | Atom (r, ts) -> Atom (r, List.map (subst_term env) ts)
    | Cmp (c, a, b) -> Cmp (c, subst_term env a, subst_term env b)
    | And (p, q) -> And (go env p, go env q)
    | Or (p, q) -> Or (go env p, go env q)
    | Not p -> Not (go env p)
    | Exists (x, p) ->
        let x' = pick x in
        used := Ss.add x' !used;
        Exists (x', go ((x, x') :: env) p)
    | Forall (x, p) ->
        let x' = pick x in
        used := Ss.add x' !used;
        Forall (x', go ((x, x') :: env) p)
  in
  go [] f

let rec remove_forall = function
  | Atom _ as a -> a
  | Cmp _ as c -> c
  | And (p, q) -> And (remove_forall p, remove_forall q)
  | Or (p, q) -> Or (remove_forall p, remove_forall q)
  | Not p -> Not (remove_forall p)
  | Exists (x, p) -> Exists (x, remove_forall p)
  | Forall (x, p) -> Not (Exists (x, Not (remove_forall p)))

let rec drop_vacuous f =
  match f with
  | Exists (x, p) when not (Ss.mem x (fv p)) -> drop_vacuous p
  | Forall (x, p) when not (Ss.mem x (fv p)) -> drop_vacuous p
  | Exists (x, p) -> Exists (x, drop_vacuous p)
  | Forall (x, p) -> Forall (x, drop_vacuous p)
  | And (p, q) -> And (drop_vacuous p, drop_vacuous q)
  | Or (p, q) -> Or (drop_vacuous p, drop_vacuous q)
  | Not p -> Not (drop_vacuous p)
  | Atom _ | Cmp _ -> f

let check_query { head; body } =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v then err "head variable %S repeats" v
      else Hashtbl.add seen v ())
    head;
  let free = fv body in
  List.iter
    (fun v ->
      if not (Ss.mem v free) then
        err "head variable %S is not free in the body" v)
    head

let term_to_string = function
  | Var v -> v
  | Const c -> Relational.Value.to_literal c

let rec to_string = function
  | Atom (r, ts) ->
      Printf.sprintf "%s(%s)" r (String.concat ", " (List.map term_to_string ts))
  | Cmp (c, a, b) ->
      Printf.sprintf "%s %s %s" (term_to_string a)
        (Relational.Algebra.comparison_to_string c)
        (term_to_string b)
  | And (p, q) -> Printf.sprintf "(%s & %s)" (to_string p) (to_string q)
  | Or (p, q) -> Printf.sprintf "(%s | %s)" (to_string p) (to_string q)
  | Not p -> Printf.sprintf "!%s" (to_string p)
  | Exists (x, p) -> Printf.sprintf "exists %s. %s" x (to_string p)
  | Forall (x, p) -> Printf.sprintf "forall %s. %s" x (to_string p)

let query_to_string { head; body } =
  Printf.sprintf "{%s | %s}" (String.concat ", " head) (to_string body)

let pp fmt f = Format.pp_print_string fmt (to_string f)
