(** Codd's theorem, direction two: algebra → calculus ("the algebra is
    expressive" — every algebra expression is definable in the calculus).

    Each algebra operator maps to its logical counterpart: selection to
    conjunction with the predicate, projection to existential
    quantification, difference to conjunction with negation, division to a
    guarded universal.  Free variables of the resulting body are named
    after the expression's output attributes. *)

val formula_of : Relational.Algebra.catalog -> Relational.Algebra.t -> Formula.t
(** Body formula whose free variables are exactly the output attributes. *)

val query_of : Relational.Algebra.catalog -> Relational.Algebra.t -> Formula.query
(** Full query, head in the expression's column order.  The result is
    always safe-range. *)
