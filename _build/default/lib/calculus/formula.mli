(** Domain relational calculus: abstract syntax and syntactic operations.

    A query is [{ head; body }], denoting the set of assignments to the
    head variables that satisfy the body.  Codd's Theorem — "the calculus
    is implementable and the algebra expressive", the paper's exemplar of a
    solidly positive result — is realized by {!To_algebra} and
    {!From_algebra}. *)

type term = Var of string | Const of Relational.Value.t

type t =
  | Atom of string * term list  (** R(t1, …, tk) *)
  | Cmp of Relational.Algebra.comparison * term * term
  | And of t * t
  | Or of t * t
  | Not of t
  | Exists of string * t
  | Forall of string * t

type query = { head : string list; body : t }
(** Head variables must be distinct and free in the body. *)

exception Ill_formed of string

val free_vars : t -> string list
(** Sorted, without duplicates. *)

val all_vars : t -> string list
(** Free and bound, sorted, without duplicates. *)

val exists_many : string list -> t -> t
val forall_many : string list -> t -> t
val conj : t list -> t
(** Conjunction of a non-empty list. *)

val rename_free : (string * string) list -> t -> t
(** Capture-avoiding renaming of free variables (bound variables that would
    capture are freshened). *)

val rectify : t -> t
(** Renames bound variables so that no variable is bound twice and no bound
    variable shares a name with a free one.  Translations require rectified
    input; evaluation does not. *)

val remove_forall : t -> t
(** Rewrites ∀x.φ to ¬∃x.¬φ. *)

val drop_vacuous : t -> t
(** Removes quantifiers whose variable does not occur in their scope
    (sound under the standard non-empty-domain convention; such variables
    are untypeable and would block translation). *)

val check_query : query -> unit
(** Raises {!Ill_formed} when head variables repeat or are not free in the
    body. *)

val to_string : t -> string
val query_to_string : query -> string
val pp : Format.formatter -> t -> unit
