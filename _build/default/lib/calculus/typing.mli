(** Type inference for calculus formulas.

    Every variable of a well-typed formula acquires a base type from the
    positions where it occurs: relation columns, or comparisons with
    constants or with already-typed variables (propagated by unification).
    A variable that never meets a concrete type is reported untypeable —
    such a query is not domain-independent anyway. *)

exception Type_error of string

type env = (string * Relational.Value.ty) list
(** Variable name to inferred type. *)

val infer : Relational.Algebra.catalog -> Formula.t -> env
(** Types for {e all} variables (free and bound) of a {e rectified}
    formula.  Raises {!Type_error} on arity mismatch, conflicting
    constraints, unknown relations, or untypeable variables. *)

val type_of_var : env -> string -> Relational.Value.ty
(** Raises {!Type_error} if absent. *)
