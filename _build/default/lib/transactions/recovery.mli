(** Write-ahead logging and undo recovery — the "reliability and
    recovery" thread of the transaction-processing tradition (§6).

    A volatile store applies writes in place (steal/no-force): at a crash
    the disk image may contain uncommitted writes and may be missing
    nothing (all writes go through), so recovery must {e undo} the losers.
    Every write is preceded by an undo log record; recovery scans the
    log, determines the winners (committed) and losers, and rolls the
    losers' writes back in reverse order.

    The correctness property (tested, including crash-during-recovery):
    after a crash at {e any} prefix of the log, recovery produces exactly
    the state of the committed transactions' writes applied in log
    order. *)

type value = int

type record =
  | Begin of Schedule.txn
  | Write of Schedule.txn * Schedule.item * value * value
      (** item, before-image, after-image *)
  | Commit of Schedule.txn
  | Abort of Schedule.txn

type log = record list
(** Oldest first. *)

type store = (Schedule.item * value) list
(** The "disk": item to current value; absent items read 0. *)

val read : store -> Schedule.item -> value

val apply_log : store -> log -> store
(** Replays every write in order — the disk image at the crash point under
    steal/no-force with synchronous WAL. *)

val winners : log -> Schedule.txn list
val losers : log -> Schedule.txn list
(** Transactions with a Begin but no Commit/Abort, plus aborted ones whose
    undo may not have reached the disk. *)

val recover : store -> log -> store
(** Undo pass: roll back losers' writes in reverse log order. *)

val committed_state : log -> store
(** The specification: replay only the winners' writes, in log order,
    starting from the empty store. *)

val run_and_crash :
  Support.Rng.t ->
  specs:(Schedule.txn * (Schedule.item * value) list) list ->
  crash_at:int ->
  store * log
(** Executes the transactions' writes randomly interleaved, emitting log
    records, stopping after [crash_at] records; returns the disk image
    and the surviving log.  Execution is strict (per-item write locks
    held to commit, acquired in sorted item order so no deadlock is
    possible) — the discipline undo recovery requires.  Transactions
    whose Commit record fits are winners; the rest are in-flight at the
    crash. *)
