exception Bad_item of string

let index_of_item item =
  if String.length item >= 2 && item.[0] = 'x' then
    match int_of_string_opt (String.sub item 1 (String.length item - 1)) with
    | Some i when i >= 0 -> i
    | _ -> raise (Bad_item item)
  else raise (Bad_item item)

let item_of_index i = Printf.sprintf "x%d" i

let parent i = if i = 0 then None else Some ((i - 1) / 2)

let rec depth i = match parent i with None -> 0 | Some p -> 1 + depth p

let rec ancestor_at i target_depth =
  if depth i = target_depth then i
  else
    match parent i with
    | Some p -> ancestor_at p target_depth
    | None -> i

let rec lca a b =
  let da = depth a and db = depth b in
  if da > db then lca (ancestor_at a db) b
  else if db > da then lca a (ancestor_at b da)
  else if a = b then a
  else
    match (parent a, parent b) with
    | Some pa, Some pb -> lca pa pb
    | _ -> 0

(* path from [top] (inclusive) down to [i] (inclusive) *)
let path_down ~top i =
  let rec up acc j =
    if j = top then top :: acc
    else
      match parent j with
      | Some p -> up (j :: acc) p
      | None -> j :: acc
  in
  up [] i

let create () =
  let table = Locks.create () in
  let entry : (Schedule.txn, int) Hashtbl.t = Hashtbl.create 16 in
  let append, history = Protocol.recorder () in
  let request txn action =
    let item, record =
      match action with
      | Schedule.Read item -> (item, fun () -> append (Schedule.r txn item))
      | Schedule.Write item -> (item, fun () -> append (Schedule.w txn item))
      | Schedule.Commit | Schedule.Abort ->
          invalid_arg "tree_lock: commit/abort must go through try_commit/rollback"
    in
    let i = index_of_item item in
    let top =
      match Hashtbl.find_opt entry txn with
      | Some top -> top
      | None ->
          invalid_arg
            (Printf.sprintf
               "tree_lock: transaction %d made a request before declare" txn)
    in
    (* the access set's LCA dominates every access, so the path exists *)
    let path = path_down ~top:(lca top i) i in
    let rec acquire = function
      | [] ->
          record ();
          Protocol.Granted
      | node :: rest ->
          if
            Locks.acquire table ~txn ~item:(item_of_index node) Locks.Exclusive
          then acquire rest
          else Protocol.Blocked
    in
    acquire path
  in
  {
    Protocol.name = "tree-lock";
    declare =
      (fun txn items ->
        match items with
        | [] -> Hashtbl.replace entry txn 0
        | first :: rest ->
            let top =
              List.fold_left
                (fun acc it -> lca acc (index_of_item it))
                (index_of_item first) rest
            in
            Hashtbl.replace entry txn top);
    begin_txn = (fun _ -> ());
    request;
    try_commit =
      (fun txn ->
        append (Schedule.c txn);
        Locks.release_all table ~txn;
        Protocol.Granted);
    rollback =
      (fun txn ->
        append (Schedule.a txn);
        Locks.release_all table ~txn);
    history;
  }
