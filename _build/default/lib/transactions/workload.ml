type params = {
  txns : int;
  ops_per_txn : int;
  items : int;
  skew : float;
  write_ratio : float;
}

let default =
  { txns = 8; ops_per_txn = 6; items = 32; skew = 0.; write_ratio = 0.3 }

let generate rng params =
  Array.init params.txns (fun _ ->
      List.init params.ops_per_txn (fun _ ->
          let idx = Support.Rng.zipf rng ~n:params.items ~s:params.skew in
          let item = Printf.sprintf "x%d" idx in
          if Support.Rng.float rng 1.0 < params.write_ratio then
            Schedule.Write item
          else Schedule.Read item))

let contention_level params =
  float_of_int (params.txns * params.ops_per_txn)
  /. float_of_int params.items
  *. (1. +. params.skew)
