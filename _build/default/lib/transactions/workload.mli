(** Random transaction workloads for the concurrency-control benchmark:
    a contention sweep over database size, transaction length, skew, and
    write ratio. *)

type params = {
  txns : int;
  ops_per_txn : int;
  items : int;  (** database size; items are named x0 … x(items-1) *)
  skew : float;  (** Zipf parameter; 0. = uniform, higher = hotter spots *)
  write_ratio : float;  (** fraction of operations that are writes *)
}

val default : params

val generate : Support.Rng.t -> params -> Simulation.spec array

val contention_level : params -> float
(** A rough scalar: ops per transaction × transactions / items, scaled by
    skew — used to label benchmark rows. *)
