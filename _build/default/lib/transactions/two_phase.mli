(** Strict two-phase locking — "most database products seem to have
    adopted the simplest solutions [GR] (two-phase locking, …)" (§6).

    Reads take shared locks, writes exclusive locks; every lock is held
    until commit or abort (strictness), which makes the output both
    conflict-serializable and strict (property-tested).  Deadlocks are
    possible; the simulation driver resolves them by victim abort. *)

val create : unit -> Protocol.t

val create_wait_die : unit -> Protocol.t
(** Strict 2PL with wait–die deadlock {e prevention}: on a lock conflict
    an older transaction waits, a younger one dies (restarts with its
    original priority, so it cannot starve).  Trades the deadlock
    detector for extra restarts — the benchmark's deadlock column drops
    to zero while the restart column grows. *)
