lib/transactions/two_phase.ml: Hashtbl List Locks Printf Protocol Schedule
