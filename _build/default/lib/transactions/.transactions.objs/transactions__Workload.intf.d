lib/transactions/workload.mli: Simulation Support
