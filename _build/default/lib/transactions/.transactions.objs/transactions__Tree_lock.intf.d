lib/transactions/tree_lock.mli: Protocol
