lib/transactions/timestamp.mli: Protocol
