lib/transactions/recovery.ml: Hashtbl Int List Schedule String Support
