lib/transactions/serializability.ml: Hashtbl List Schedule String
