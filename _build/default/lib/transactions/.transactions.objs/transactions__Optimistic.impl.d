lib/transactions/optimistic.ml: Hashtbl List Printf Protocol Schedule Set String
