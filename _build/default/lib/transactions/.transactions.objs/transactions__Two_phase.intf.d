lib/transactions/two_phase.mli: Protocol
