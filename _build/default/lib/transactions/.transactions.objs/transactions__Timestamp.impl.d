lib/transactions/timestamp.ml: Hashtbl Printf Protocol Schedule
