lib/transactions/serializability.mli: Schedule
