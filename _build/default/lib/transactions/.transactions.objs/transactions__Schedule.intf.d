lib/transactions/schedule.mli:
