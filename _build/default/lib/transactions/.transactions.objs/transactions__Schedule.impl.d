lib/transactions/schedule.ml: Int List Printf String
