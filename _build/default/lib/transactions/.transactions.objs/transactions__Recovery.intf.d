lib/transactions/recovery.mli: Schedule Support
