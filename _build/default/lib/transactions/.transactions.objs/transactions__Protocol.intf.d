lib/transactions/protocol.mli: Schedule
