lib/transactions/workload.ml: Array List Printf Schedule Support
