lib/transactions/locks.mli: Schedule
