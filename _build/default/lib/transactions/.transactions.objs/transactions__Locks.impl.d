lib/transactions/locks.ml: Hashtbl List Schedule String
