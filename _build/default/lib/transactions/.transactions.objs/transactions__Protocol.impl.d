lib/transactions/protocol.ml: List Schedule
