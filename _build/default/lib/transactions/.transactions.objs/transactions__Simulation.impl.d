lib/transactions/simulation.ml: Array Hashtbl List Protocol Schedule String
