lib/transactions/simulation.mli: Protocol Schedule
