lib/transactions/optimistic.mli: Protocol
