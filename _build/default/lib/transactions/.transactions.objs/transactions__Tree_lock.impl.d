lib/transactions/tree_lock.ml: Hashtbl List Locks Printf Protocol Schedule String
