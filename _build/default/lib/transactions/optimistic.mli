(** Optimistic (validation-based) concurrency control — the "occasionally
    optimistic methods" of §6 (Kung–Robinson backward validation).

    Transactions execute without any synchronization, buffering writes;
    at commit, a transaction validates that no transaction that committed
    after it started wrote anything it read.  On success the buffered
    writes are installed atomically; on failure the transaction restarts.
    Never blocks; pays with restarts under contention. *)

val create : unit -> Protocol.t
