(** The common interface of concurrency-control protocols, consumed by the
    {!Simulation} driver.

    A protocol admits, delays, or rejects individual operations, and
    records the history it actually executes (deferred-write protocols
    record writes at install time, so the recorded history is the real
    execution order). *)

type verdict =
  | Granted  (** the operation executed *)
  | Blocked  (** retry later (lock conflict) *)
  | Rejected  (** the transaction must abort and restart *)

type t = {
  name : string;
  declare : Schedule.txn -> Schedule.item list -> unit;
      (** access-set pre-declaration (used by the tree protocol); called
          once per incarnation before any request *)
  begin_txn : Schedule.txn -> unit;
      (** called at transaction start and at every restart *)
  request : Schedule.txn -> Schedule.action -> verdict;
      (** data operations only (Read/Write) *)
  try_commit : Schedule.txn -> verdict;
      (** [Granted] commits; [Rejected] means validation failed *)
  rollback : Schedule.txn -> unit;
  history : unit -> Schedule.t;  (** executed operations, oldest first *)
}

val recorder : unit -> (Schedule.op -> unit) * (unit -> Schedule.t)
(** A shared helper: an append function and a snapshot function. *)
