(** A shared/exclusive lock table. *)

type mode = Shared | Exclusive

type t

val create : unit -> t

val acquire : t -> txn:Schedule.txn -> item:Schedule.item -> mode -> bool
(** [true] when granted (including re-grants and S→X upgrades by a sole
    holder); [false] when the request must wait.  Polling model: a denied
    request leaves no queue entry — callers simply retry. *)

val release_all : t -> txn:Schedule.txn -> unit

val holders : t -> item:Schedule.item -> (Schedule.txn * mode) list

val held_items : t -> txn:Schedule.txn -> Schedule.item list
