(** Basic timestamp ordering, with the Thomas write rule as an option.

    Each (incarnation of a) transaction receives a monotone timestamp;
    operations arriving "too late" relative to an item's read/write
    timestamps reject the transaction, which restarts with a fresh
    timestamp.  Never blocks, hence never deadlocks — it trades waiting
    for restarts. *)

val create : ?thomas:bool -> unit -> Protocol.t
(** With [thomas] (default false), an outdated write is silently skipped
    instead of rejecting the transaction. *)
