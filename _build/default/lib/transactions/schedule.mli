(** Schedules (histories) of read/write transactions — the raw material of
    concurrency-control theory. *)

type txn = int
type item = string

type action = Read of item | Write of item | Commit | Abort

type op = { txn : txn; action : action }

type t = op list
(** Operations in temporal order. *)

val r : txn -> item -> op
val w : txn -> item -> op
val c : txn -> op
val a : txn -> op

val of_string : string -> t
(** Compact notation: ["r1(x) w1(x) r2(y) c1 c2"] — rN/wN with the item in
    parentheses, cN / aN for commit and abort.  Raises [Invalid_argument]
    on malformed input. *)

val to_string : t -> string

val txns : t -> txn list
(** Sorted, without duplicates. *)

val committed : t -> txn list
val aborted : t -> txn list
val items : t -> item list

val project : t -> txn -> t
(** Operations of one transaction, in order. *)

val well_formed : t -> bool
(** Each transaction terminates at most once and performs no operation
    after terminating. *)

val committed_projection : t -> t
(** Operations of committed transactions only — the input to
    serializability analysis. *)

val serial : t list -> t
(** Concatenation of transaction programs as a serial schedule. *)

val is_serial : t -> bool
(** No transaction interleaves with another. *)

val conflicting : op -> op -> bool
(** Different transactions, same item, at least one write. *)

val permutations_are_interleavings : t -> t -> bool
(** Do the two schedules contain exactly the same operations per
    transaction, in the same per-transaction order? *)
