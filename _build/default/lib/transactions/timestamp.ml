let create ?(thomas = false) () =
  let clock = ref 0 in
  let ts = Hashtbl.create 16 in
  let read_ts = Hashtbl.create 64 in
  let write_ts = Hashtbl.create 64 in
  (* uncommitted writes per item, to emulate commit-time visibility would
     complicate the model; basic TO applies operations immediately *)
  let append, history = Protocol.recorder () in
  let stamp txn =
    match Hashtbl.find_opt ts txn with
    | Some t -> t
    | None -> invalid_arg (Printf.sprintf "timestamp: unknown transaction %d" txn)
  in
  let get table item =
    match Hashtbl.find_opt table item with Some t -> t | None -> -1
  in
  let request txn action =
    let t = stamp txn in
    match action with
    | Schedule.Read item ->
        if t < get write_ts item then Protocol.Rejected
        else begin
          Hashtbl.replace read_ts item (max t (get read_ts item));
          append (Schedule.r txn item);
          Protocol.Granted
        end
    | Schedule.Write item ->
        if t < get read_ts item then Protocol.Rejected
        else if t < get write_ts item then
          if thomas then Protocol.Granted (* obsolete write skipped *)
          else Protocol.Rejected
        else begin
          Hashtbl.replace write_ts item t;
          append (Schedule.w txn item);
          Protocol.Granted
        end
    | Schedule.Commit | Schedule.Abort ->
        invalid_arg "timestamp: commit/abort must go through try_commit/rollback"
  in
  {
    Protocol.name = (if thomas then "timestamp+thomas" else "timestamp");
    declare = (fun _ _ -> ());
    begin_txn =
      (fun txn ->
        incr clock;
        Hashtbl.replace ts txn !clock);
    request;
    try_commit =
      (fun txn ->
        append (Schedule.c txn);
        Protocol.Granted);
    rollback = (fun txn -> append (Schedule.a txn));
    history;
  }
