module Sset = Set.Make (String)

type txn_state = {
  mutable start_tn : int;  (** commit counter at start *)
  mutable read_set : Sset.t;
  mutable write_set : Sset.t;
  mutable write_order : Schedule.item list;  (** buffered, oldest first *)
}

let create () =
  let commit_counter = ref 0 in
  (* committed write sets, newest first: (commit number, write set) *)
  let committed : (int * Sset.t) list ref = ref [] in
  let states : (Schedule.txn, txn_state) Hashtbl.t = Hashtbl.create 16 in
  let append, history = Protocol.recorder () in
  let state txn =
    match Hashtbl.find_opt states txn with
    | Some s -> s
    | None ->
        invalid_arg (Printf.sprintf "optimistic: unknown transaction %d" txn)
  in
  let request txn action =
    let s = state txn in
    match action with
    | Schedule.Read item ->
        s.read_set <- Sset.add item s.read_set;
        append (Schedule.r txn item);
        Protocol.Granted
    | Schedule.Write item ->
        if not (Sset.mem item s.write_set) then begin
          s.write_set <- Sset.add item s.write_set;
          s.write_order <- s.write_order @ [ item ]
        end;
        Protocol.Granted
    | Schedule.Commit | Schedule.Abort ->
        invalid_arg "optimistic: commit/abort must go through try_commit/rollback"
  in
  {
    Protocol.name = "optimistic";
    declare = (fun _ _ -> ());
    begin_txn =
      (fun txn ->
        Hashtbl.replace states txn
          {
            start_tn = !commit_counter;
            read_set = Sset.empty;
            write_set = Sset.empty;
            write_order = [];
          });
    request;
    try_commit =
      (fun txn ->
        let s = state txn in
        let conflicts =
          List.exists
            (fun (tn, writes) ->
              tn > s.start_tn && not (Sset.is_empty (Sset.inter writes s.read_set)))
            !committed
        in
        if conflicts then Protocol.Rejected
        else begin
          (* install buffered writes, then commit *)
          List.iter (fun item -> append (Schedule.w txn item)) s.write_order;
          incr commit_counter;
          committed := (!commit_counter, s.write_set) :: !committed;
          append (Schedule.c txn);
          Protocol.Granted
        end);
    rollback = (fun txn -> append (Schedule.a txn));
    history;
  }
