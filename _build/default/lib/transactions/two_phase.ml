let create () =
  let table = Locks.create () in
  let append, history = Protocol.recorder () in
  let request txn action =
    match action with
    | Schedule.Read item ->
        if Locks.acquire table ~txn ~item Locks.Shared then begin
          append (Schedule.r txn item);
          Protocol.Granted
        end
        else Protocol.Blocked
    | Schedule.Write item ->
        if Locks.acquire table ~txn ~item Locks.Exclusive then begin
          append (Schedule.w txn item);
          Protocol.Granted
        end
        else Protocol.Blocked
    | Schedule.Commit | Schedule.Abort ->
        invalid_arg "two_phase: commit/abort must go through try_commit/rollback"
  in
  {
    Protocol.name = "strict-2pl";
    declare = (fun _ _ -> ());
    begin_txn = (fun _ -> ());
    request;
    try_commit =
      (fun txn ->
        append (Schedule.c txn);
        Locks.release_all table ~txn;
        Protocol.Granted);
    rollback =
      (fun txn ->
        append (Schedule.a txn);
        Locks.release_all table ~txn);
    history;
  }

let create_wait_die () =
  let table = Locks.create () in
  let append, history = Protocol.recorder () in
  (* wait-die priorities: the timestamp of a transaction's FIRST
     incarnation, so a restarted transaction keeps its seniority and
     cannot starve *)
  let clock = ref 0 in
  let priority : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let base txn = txn mod 1000 in
  let prio txn =
    match Hashtbl.find_opt priority (base txn) with
    | Some p -> p
    | None ->
        invalid_arg (Printf.sprintf "wait-die: unknown transaction %d" txn)
  in
  let try_lock txn item mode =
    if Locks.acquire table ~txn ~item mode then Protocol.Granted
    else begin
      (* conflict: wait if older than every conflicting holder, die
         otherwise *)
      let holders = Locks.holders table ~item in
      let conflicting =
        List.filter
          (fun (holder, hmode) ->
            holder <> txn && (mode = Locks.Exclusive || hmode = Locks.Exclusive))
          holders
      in
      if List.for_all (fun (holder, _) -> prio txn < prio holder) conflicting
      then Protocol.Blocked
      else Protocol.Rejected
    end
  in
  let request txn action =
    match action with
    | Schedule.Read item ->
        let verdict = try_lock txn item Locks.Shared in
        if verdict = Protocol.Granted then append (Schedule.r txn item);
        verdict
    | Schedule.Write item ->
        let verdict = try_lock txn item Locks.Exclusive in
        if verdict = Protocol.Granted then append (Schedule.w txn item);
        verdict
    | Schedule.Commit | Schedule.Abort ->
        invalid_arg "wait-die: commit/abort must go through try_commit/rollback"
  in
  {
    Protocol.name = "2pl-wait-die";
    declare = (fun _ _ -> ());
    begin_txn =
      (fun txn ->
        if not (Hashtbl.mem priority (base txn)) then begin
          incr clock;
          Hashtbl.replace priority (base txn) !clock
        end);
    request;
    try_commit =
      (fun txn ->
        append (Schedule.c txn);
        Locks.release_all table ~txn;
        Protocol.Granted);
    rollback =
      (fun txn ->
        append (Schedule.a txn);
        Locks.release_all table ~txn);
    history;
  }
