type value = int

type record =
  | Begin of Schedule.txn
  | Write of Schedule.txn * Schedule.item * value * value
  | Commit of Schedule.txn
  | Abort of Schedule.txn

type log = record list

type store = (Schedule.item * value) list

let read store item =
  match List.assoc_opt item store with Some v -> v | None -> 0

let write store item value = (item, value) :: List.remove_assoc item store

let apply_log store log =
  List.fold_left
    (fun store record ->
      match record with
      | Write (_, item, _, after) -> write store item after
      | Begin _ | Commit _ | Abort _ -> store)
    store log

let winners log =
  List.filter_map (function Commit t -> Some t | _ -> None) log
  |> List.sort_uniq Int.compare

let losers log =
  let begun =
    List.filter_map (function Begin t -> Some t | _ -> None) log
    |> List.sort_uniq Int.compare
  in
  let won = winners log in
  List.filter (fun t -> not (List.mem t won)) begun

let recover store log =
  let lost = losers log in
  (* undo losers' writes, newest first, restoring before-images *)
  List.fold_left
    (fun store record ->
      match record with
      | Write (t, item, before, _) when List.mem t lost ->
          write store item before
      | _ -> store)
    store (List.rev log)

let committed_state log =
  let won = winners log in
  List.fold_left
    (fun store record ->
      match record with
      | Write (t, item, _, after) when List.mem t won -> write store item after
      | _ -> store)
    [] log

(* Undo recovery needs strict execution: once a transaction writes an
   item, no other writes it until the first commits — otherwise a loser's
   before-image can resurrect a pre-winner value.  The simulator enforces
   this with per-item write locks held to commit; each transaction's
   writes are pre-sorted by item so lock acquisition follows a canonical
   order and can never deadlock. *)
let run_and_crash rng ~specs ~crash_at =
  let specs =
    List.map
      (fun (t, writes) ->
        (t, List.sort (fun (a, _) (b, _) -> String.compare a b) writes))
      specs
  in
  let store = ref [] in
  let log = ref [] in
  let emitted = ref 0 in
  let crashed () = !emitted >= crash_at in
  let emit r =
    log := r :: !log;
    incr emitted;
    match r with
    | Write (_, item, _, after) -> store := write !store item after
    | Begin _ | Commit _ | Abort _ -> ()
  in
  let locks : (Schedule.item, Schedule.txn) Hashtbl.t = Hashtbl.create 16 in
  let states = Hashtbl.create 16 in
  List.iter (fun (t, writes) -> Hashtbl.replace states t (`Not_started, writes)) specs;
  let txns = List.map fst specs in
  let can_progress t =
    match Hashtbl.find states t with
    | `Done, _ -> false
    | `Not_started, _ -> true
    | `Running, [] -> true
    | `Running, (item, _) :: _ -> (
        match Hashtbl.find_opt locks item with
        | Some holder -> holder = t
        | None -> true)
  in
  let step t =
    match Hashtbl.find states t with
    | `Not_started, writes ->
        emit (Begin t);
        Hashtbl.replace states t (`Running, writes)
    | `Running, [] ->
        emit (Commit t);
        Hashtbl.iter
          (fun item holder -> if holder = t then Hashtbl.remove locks item)
          (Hashtbl.copy locks);
        Hashtbl.replace states t (`Done, [])
    | `Running, (item, v) :: rest ->
        Hashtbl.replace locks item t;
        emit (Write (t, item, read !store item, v));
        Hashtbl.replace states t (`Running, rest)
    | `Done, _ -> ()
  in
  let rec loop () =
    if not (crashed ()) then begin
      let runnable = List.filter can_progress txns in
      match runnable with
      | [] -> ()
      | _ ->
          step (List.nth runnable (Support.Rng.int rng (List.length runnable)));
          loop ()
    end
  in
  loop ();
  (!store, List.rev !log)
