type mode = Shared | Exclusive

type t = (Schedule.item, (Schedule.txn * mode) list) Hashtbl.t

let create () : t = Hashtbl.create 64

let holders t ~item =
  match Hashtbl.find_opt t item with Some hs -> hs | None -> []

let acquire t ~txn ~item mode =
  let hs = holders t ~item in
  let mine = List.assoc_opt txn hs in
  let others = List.filter (fun (t', _) -> t' <> txn) hs in
  match (mine, mode) with
  | Some Exclusive, _ -> true
  | Some Shared, Shared -> true
  | Some Shared, Exclusive ->
      (* upgrade allowed only as the sole holder *)
      if others = [] then begin
        Hashtbl.replace t item [ (txn, Exclusive) ];
        true
      end
      else false
  | None, Shared ->
      if List.for_all (fun (_, m) -> m = Shared) others then begin
        Hashtbl.replace t item ((txn, Shared) :: others);
        true
      end
      else false
  | None, Exclusive ->
      if others = [] then begin
        Hashtbl.replace t item [ (txn, Exclusive) ];
        true
      end
      else false

let release_all t ~txn =
  Hashtbl.iter
    (fun item hs ->
      let hs' = List.filter (fun (t', _) -> t' <> txn) hs in
      if List.length hs' <> List.length hs then Hashtbl.replace t item hs')
    (Hashtbl.copy t)

let held_items t ~txn =
  Hashtbl.fold
    (fun item hs acc -> if List.mem_assoc txn hs then item :: acc else acc)
    t []
  |> List.sort String.compare
