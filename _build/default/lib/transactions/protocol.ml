type verdict = Granted | Blocked | Rejected

type t = {
  name : string;
  declare : Schedule.txn -> Schedule.item list -> unit;
  begin_txn : Schedule.txn -> unit;
  request : Schedule.txn -> Schedule.action -> verdict;
  try_commit : Schedule.txn -> verdict;
  rollback : Schedule.txn -> unit;
  history : unit -> Schedule.t;
}

let recorder () =
  let ops = ref [] in
  let append op = ops := op :: !ops in
  let snapshot () = List.rev !ops in
  (append, snapshot)
