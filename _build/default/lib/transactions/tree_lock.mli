(** The tree (hierarchical) locking protocol — §6's "tree-based locking".

    Data items are arranged in an implicit binary tree by integer suffix
    (item ["x5"] is the child of ["x2"], etc.).  A transaction's first
    lock is the lowest common ancestor of its declared access set; every
    further lock requires the parent to be held.  All locks are exclusive
    and held to the end (a legal, conservative instance of the protocol).
    Deadlock-free by construction — the property the benchmark
    demonstrates against 2PL. *)

exception Bad_item of string
(** Items must be named [x<int>]. *)

val create : unit -> Protocol.t
(** Requires {!Protocol.t.declare} to be called with the transaction's
    full access set before its first request. *)

val parent : int -> int option
(** Tree structure on item indexes: parent of i is (i-1)/2; the root 0 has
    none. *)

val lca : int -> int -> int
