type txn = int
type item = string

type action = Read of item | Write of item | Commit | Abort

type op = { txn : txn; action : action }

type t = op list

let r txn item = { txn; action = Read item }
let w txn item = { txn; action = Write item }
let c txn = { txn; action = Commit }
let a txn = { txn; action = Abort }

let of_string s =
  let tokens =
    String.split_on_char ' ' s |> List.filter (fun x -> x <> "")
  in
  let parse_op tok =
    let fail () = invalid_arg (Printf.sprintf "Schedule.of_string: bad token %S" tok) in
    if String.length tok < 2 then fail ();
    let kind = tok.[0] in
    match kind with
    | 'c' | 'a' -> (
        match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some n -> if kind = 'c' then c n else a n
        | None -> fail ())
    | 'r' | 'w' -> (
        match String.index_opt tok '(' with
        | Some i when String.length tok > i + 1 && tok.[String.length tok - 1] = ')'
          -> (
            let n = String.sub tok 1 (i - 1) in
            let item = String.sub tok (i + 1) (String.length tok - i - 2) in
            match int_of_string_opt n with
            | Some n when item <> "" -> if kind = 'r' then r n item else w n item
            | _ -> fail ())
        | _ -> fail ())
    | _ -> fail ()
  in
  List.map parse_op tokens

let op_to_string { txn; action } =
  match action with
  | Read item -> Printf.sprintf "r%d(%s)" txn item
  | Write item -> Printf.sprintf "w%d(%s)" txn item
  | Commit -> Printf.sprintf "c%d" txn
  | Abort -> Printf.sprintf "a%d" txn

let to_string sched = String.concat " " (List.map op_to_string sched)

let txns sched = List.sort_uniq Int.compare (List.map (fun o -> o.txn) sched)

let committed sched =
  List.filter_map
    (fun o -> match o.action with Commit -> Some o.txn | _ -> None)
    sched
  |> List.sort_uniq Int.compare

let aborted sched =
  List.filter_map
    (fun o -> match o.action with Abort -> Some o.txn | _ -> None)
    sched
  |> List.sort_uniq Int.compare

let items sched =
  List.filter_map
    (fun o ->
      match o.action with Read i | Write i -> Some i | Commit | Abort -> None)
    sched
  |> List.sort_uniq String.compare

let project sched txn = List.filter (fun o -> o.txn = txn) sched

let well_formed sched =
  List.for_all
    (fun t ->
      let ops = project sched t in
      let rec check seen_end = function
        | [] -> true
        | o :: rest -> (
            if seen_end then false
            else
              match o.action with
              | Commit | Abort -> check true rest
              | Read _ | Write _ -> check false rest)
      in
      check false ops)
    (txns sched)

let committed_projection sched =
  let ok = committed sched in
  List.filter (fun o -> List.mem o.txn ok) sched

let serial programs = List.concat programs

let is_serial sched =
  (* the sequence of transaction ids, with consecutive duplicates
     collapsed, must not repeat any id *)
  let rec collapse = function
    | [] -> []
    | [ x ] -> [ x ]
    | x :: (y :: _ as rest) when x = y -> collapse rest
    | x :: rest -> x :: collapse rest
  in
  let sequence = collapse (List.map (fun o -> o.txn) sched) in
  List.length sequence = List.length (List.sort_uniq Int.compare sequence)

let conflicting o1 o2 =
  o1.txn <> o2.txn
  &&
  match (o1.action, o2.action) with
  | Write x, Write y | Write x, Read y | Read x, Write y -> String.equal x y
  | Read _, Read _ | _, (Commit | Abort) | (Commit | Abort), _ -> false

let permutations_are_interleavings s1 s2 =
  let t1 = txns s1 and t2 = txns s2 in
  t1 = t2 && List.for_all (fun t -> project s1 t = project s2 t) t1
