open Schedule

let precedence_graph sched =
  let sched = committed_projection sched in
  let rec edges acc = function
    | [] -> acc
    | o :: rest ->
        let acc =
          List.fold_left
            (fun acc o' ->
              if conflicting o o' then (o.txn, o'.txn) :: acc else acc)
            acc rest
        in
        edges acc rest
  in
  List.sort_uniq compare (edges [] sched)

let topological_sort nodes edges =
  let in_degree = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace in_degree n 0) nodes;
  List.iter
    (fun (_, dst) ->
      Hashtbl.replace in_degree dst (1 + Hashtbl.find in_degree dst))
    edges;
  let rec loop acc remaining =
    if remaining = [] then Some (List.rev acc)
    else begin
      match
        List.find_opt (fun n -> Hashtbl.find in_degree n = 0) remaining
      with
      | None -> None (* cycle *)
      | Some n ->
          List.iter
            (fun (src, dst) ->
              if src = n then
                Hashtbl.replace in_degree dst (Hashtbl.find in_degree dst - 1))
            edges;
          loop (n :: acc) (List.filter (fun m -> m <> n) remaining)
    end
  in
  loop [] nodes

let conflict_equivalent_serial_order sched =
  let nodes = committed sched in
  topological_sort nodes (precedence_graph sched)

let is_conflict_serializable sched =
  conflict_equivalent_serial_order sched <> None

let conflict_pairs sched =
  let rec pairs acc = function
    | [] -> acc
    | o :: rest ->
        let acc =
          List.fold_left
            (fun acc o' -> if conflicting o o' then (o, o') :: acc else acc)
            acc rest
        in
        pairs acc rest
  in
  List.sort_uniq compare (pairs [] sched)

let conflict_equivalent s1 s2 =
  permutations_are_interleavings s1 s2 && conflict_pairs s1 = conflict_pairs s2

let reads_from sched =
  let rec go last_writer acc = function
    | [] -> List.rev acc
    | o :: rest -> (
        match o.action with
        | Read item ->
            let writer = List.assoc_opt item last_writer in
            go last_writer ((o.txn, item, writer) :: acc) rest
        | Write item ->
            go ((item, o.txn) :: List.remove_assoc item last_writer) acc rest
        | Commit | Abort -> go last_writer acc rest)
  in
  go [] [] sched

let final_writers sched =
  let rec go acc = function
    | [] -> acc
    | o :: rest -> (
        match o.action with
        | Write item -> go ((item, o.txn) :: List.remove_assoc item acc) rest
        | Read _ | Commit | Abort -> go acc rest)
  in
  List.sort compare (go [] sched)

let view_equivalent s1 s2 =
  permutations_are_interleavings s1 s2
  && reads_from s1 = reads_from s2
  && final_writers s1 = final_writers s2

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun p -> x :: p)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

let is_view_serializable sched =
  let sched = committed_projection sched in
  let ts = txns sched in
  List.exists
    (fun order ->
      let serial = List.concat_map (project sched) order in
      view_equivalent sched serial)
    (permutations ts)

(* --- recoverability ------------------------------------------------------- *)

(* positions of operations, for temporal comparisons *)
let indexed sched = List.mapi (fun i o -> (i, o)) sched

let termination_index sched t =
  List.find_map
    (fun (i, o) ->
      if o.txn = t then
        match o.action with
        | Commit -> Some (i, `Commit)
        | Abort -> Some (i, `Abort)
        | Read _ | Write _ -> None
      else None)
    (indexed sched)

(* reads-from pairs with positions: (reader, read position, writer) where
   the writer is a transaction (not the initial state) and the write is
   the last one on that item before the read, by a different txn *)
let read_from_pairs sched =
  let ops = indexed sched in
  List.filter_map
    (fun (i, o) ->
      match o.action with
      | Read item ->
          let writer =
            List.fold_left
              (fun acc (j, o') ->
                match o'.action with
                | Write item' when j < i && String.equal item item' && o'.txn <> o.txn
                  -> (
                    (* the write must not be from an already-aborted txn at
                       read time *)
                    match termination_index sched o'.txn with
                    | Some (k, `Abort) when k < i -> acc
                    | _ -> Some (j, o'.txn))
                | _ -> acc)
              None ops
          in
          (match writer with Some (j, wt) -> Some (o.txn, i, wt, j) | None -> None)
      | _ -> None)
    ops

let is_recoverable sched =
  List.for_all
    (fun (reader, _, writer, _) ->
      match (termination_index sched reader, termination_index sched writer) with
      | Some (ci, `Commit), Some (cj, `Commit) -> cj < ci
      | Some (_, `Commit), (Some (_, `Abort) | None) ->
          (* reader committed although its source did not commit first *)
          false
      | (Some (_, `Abort) | None), _ -> true)
    (read_from_pairs sched)

let avoids_cascading_aborts sched =
  List.for_all
    (fun (_, read_pos, writer, _) ->
      match termination_index sched writer with
      | Some (cj, `Commit) -> cj < read_pos
      | _ -> false)
    (read_from_pairs sched)

let is_strict sched =
  let ops = indexed sched in
  List.for_all
    (fun (i, o) ->
      match o.action with
      | Read item | Write item ->
          (* the last write on item before position i by another txn must
             be terminated before i *)
          let last_writer =
            List.fold_left
              (fun acc (j, o') ->
                match o'.action with
                | Write item' when j < i && String.equal item item' && o'.txn <> o.txn
                  ->
                    Some (j, o'.txn)
                | _ -> acc)
              None ops
          in
          (match last_writer with
          | None -> true
          | Some (_, wt) -> (
              match termination_index sched wt with
              | Some (k, _) -> k < i
              | None -> false))
      | Commit | Abort -> true)
    ops
