type cq = { head : Ast.term list; body : Ast.atom list }

exception Not_conjunctive of string

let of_rule rule =
  let body =
    List.map
      (function
        | Ast.Pos a -> a
        | Ast.Neg a ->
            raise
              (Not_conjunctive
                 (Printf.sprintf "negated atom %s" (Ast.atom_to_string a)))
        | Ast.Cmp _ as l ->
            raise
              (Not_conjunctive
                 (Printf.sprintf "comparison %s" (Ast.literal_to_string l))))
      rule.Ast.body
  in
  { head = rule.Ast.head.Ast.args; body }

let to_rule pred cq =
  {
    Ast.head = Ast.atom pred cq.head;
    body = List.map (fun a -> Ast.Pos a) cq.body;
  }

(* Substitutions map source-query variables to target-query terms; the
   target's variables are "frozen" (treated as constants) and never bound. *)
let unify_term subst source target =
  match source with
  | Ast.Const c -> (
      match target with
      | Ast.Const c' when Relational.Value.equal c c' -> Some subst
      | _ -> None)
  | Ast.Var v -> (
      match List.assoc_opt v subst with
      | Some t -> if t = target then Some subst else None
      | None -> Some ((v, target) :: subst))

let unify_atoms subst (source : Ast.atom) (target : Ast.atom) =
  if not (String.equal source.Ast.pred target.Ast.pred) then None
  else if List.length source.Ast.args <> List.length target.Ast.args then None
  else
    List.fold_left2
      (fun acc s t ->
        match acc with None -> None | Some subst -> unify_term subst s t)
      (Some subst) source.Ast.args target.Ast.args

(* Find a homomorphism mapping [source]'s atoms into [target]'s atoms and
   source head to target head. *)
let homomorphism source target =
  let rec assign subst = function
    | [] -> Some subst
    | atom :: rest ->
        List.find_map
          (fun candidate ->
            match unify_atoms subst atom candidate with
            | Some subst' -> assign subst' rest
            | None -> None)
          target.body
  in
  (* head compatibility first: source head term i must map to target head
     term i *)
  let head_subst =
    if List.length source.head <> List.length target.head then None
    else
      List.fold_left2
        (fun acc s t ->
          match acc with
          | None -> None
          | Some subst -> unify_term subst s t)
        (Some []) source.head target.head
  in
  match head_subst with
  | None -> None
  | Some subst -> assign subst source.body

let contained q1 q2 =
  (* Q1 ⊆ Q2 iff Q2 maps homomorphically onto Q1 *)
  Option.is_some (homomorphism q2 q1)

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let minimize cq =
  (* repeatedly try to drop an atom while staying equivalent; the result
     is the core (unique up to isomorphism) *)
  let rec shrink body =
    let try_drop i =
      let smaller = { cq with body = List.filteri (fun j _ -> j <> i) body } in
      if equivalent { cq with body } smaller then Some smaller.body else None
    in
    let rec attempt i =
      if i >= List.length body then body
      else
        match try_drop i with
        | Some smaller -> shrink smaller
        | None -> attempt (i + 1)
    in
    attempt 0
  in
  { cq with body = shrink cq.body }
