module Tuple_set = Relational.Relation.Tuple_set

exception Unsupported of string

type adornment = bool list

let adornment_to_string a =
  String.concat "" (List.map (fun b -> if b then "b" else "f") a)

let adorned_name p a = p ^ "#" ^ adornment_to_string a

let magic_name p a = "m#" ^ adorned_name p a

(* Only constants count as bound in the seed query: a bound argument must
   supply a ground value for the magic seed fact. *)
let adornment_of_query q =
  List.map (function Ast.Const _ -> true | Ast.Var _ -> false) q.Ast.args

module Ss = Set.Make (String)

let bound_args adornment args =
  List.filteri (fun i _ -> List.nth adornment i) args

let atom_adornment bound a =
  List.map
    (function
      | Ast.Const _ -> true
      | Ast.Var v -> Ss.mem v bound)
    a.Ast.args

let rewrite prog query =
  List.iter
    (fun r ->
      List.iter
        (function
          | Ast.Neg a ->
              raise
                (Unsupported
                   (Printf.sprintf
                      "magic-sets rewriting requires a positive program; \
                       found 'not %s'"
                      (Ast.atom_to_string a)))
          | Ast.Pos _ | Ast.Cmp _ -> ())
        r.Ast.body)
    prog;
  let idb = Ast.idb_predicates prog in
  let is_idb p = List.mem p idb in
  if not (is_idb query.Ast.pred) then
    raise
      (Unsupported
         (Printf.sprintf "query predicate %S is not an IDB predicate"
            query.Ast.pred));
  let seen = Hashtbl.create 16 in
  let out_rules = ref [] in
  let emit r = out_rules := r :: !out_rules in
  let worklist = Queue.create () in
  let demand p a =
    if is_idb p && not (Hashtbl.mem seen (p, a)) then begin
      Hashtbl.add seen (p, a) ();
      Queue.add (p, a) worklist
    end
  in
  let q_adornment = adornment_of_query query in
  demand query.Ast.pred q_adornment;
  while not (Queue.is_empty worklist) do
    let p, a = Queue.pop worklist in
    let rules = List.filter (fun r -> String.equal (Ast.head_pred r) p) prog in
    List.iter
      (fun rule ->
        (* variables bound on entry: head vars in bound positions *)
        let head_bound_vars =
          List.concat_map Ast.term_vars (bound_args a rule.Ast.head.Ast.args)
        in
        let magic_head_atom =
          Ast.atom (magic_name p a) (bound_args a rule.Ast.head.Ast.args)
        in
        (* walk the body left-to-right, adorning IDB atoms and emitting a
           magic rule for each *)
        let bound = ref (Ss.of_list head_bound_vars) in
        let prefix = ref [ Ast.Pos magic_head_atom ] in
        let new_body =
          List.map
            (fun lit ->
              match (lit : Ast.literal) with
              | Ast.Cmp _ ->
                  (* comparisons pass through; their variables are already
                     bound, so they tighten the magic prefixes too *)
                  prefix := lit :: !prefix;
                  lit
              | Ast.Neg _ -> assert false (* rejected above *)
              | Ast.Pos atom ->
              let lit' =
                if is_idb atom.Ast.pred then begin
                  let sub_a = atom_adornment !bound atom in
                  demand atom.Ast.pred sub_a;
                  (* magic rule: demand for this subgoal *)
                  emit
                    {
                      Ast.head =
                        Ast.atom
                          (magic_name atom.Ast.pred sub_a)
                          (bound_args sub_a atom.Ast.args);
                      body = List.rev !prefix;
                    };
                  Ast.Pos
                    (Ast.atom (adorned_name atom.Ast.pred sub_a) atom.Ast.args)
                end
                else Ast.Pos atom
              in
              bound := Ss.union !bound (Ss.of_list (Ast.atom_vars atom));
              prefix := lit' :: !prefix;
              lit')
            rule.Ast.body
        in
        (* transformed rule, guarded by its magic predicate *)
        emit
          {
            Ast.head = Ast.atom (adorned_name p a) rule.Ast.head.Ast.args;
            body = Ast.Pos magic_head_atom :: new_body;
          })
      rules
  done;
  (* seed: the query's demand *)
  let seed_values =
    List.filter_map
      (function Ast.Const c -> Some (Ast.Const c) | Ast.Var _ -> None)
      query.Ast.args
  in
  emit
    {
      Ast.head =
        Ast.atom (magic_name query.Ast.pred q_adornment) seed_values;
      body = [];
    };
  let query' =
    Ast.atom (adorned_name query.Ast.pred q_adornment) query.Ast.args
  in
  (List.rev !out_rules, query')

let query_with_stats prog edb q =
  let idb = Ast.idb_predicates prog in
  if not (List.mem q.Ast.pred idb) then
    (* querying a base relation needs no rewriting *)
    (Naive.filter_by_query (Facts.get edb q.Ast.pred) q,
     { Naive.iterations = 0; derivations = 0 })
  else begin
    let magic_prog, magic_query = rewrite prog q in
    let result, stats = Seminaive.eval_with_stats magic_prog edb in
    (Naive.filter_by_query (Facts.get result magic_query.Ast.pred) magic_query,
     stats)
  end

let query prog edb q = fst (query_with_stats prog edb q)
