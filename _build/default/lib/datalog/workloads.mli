(** Standard recursive-query workloads: the programs and graph instances
    used in the logic-database literature (and by the Figure-3-era
    benchmarks): transitive closure and same-generation on chains, trees,
    cycles, grids, and random graphs. *)

val transitive_closure : Ast.program
(** path(X,Y) :- edge(X,Y).  path(X,Y) :- edge(X,Z), path(Z,Y). *)

val transitive_closure_left : Ast.program
(** The left-linear variant: path(X,Y) :- path(X,Z), edge(Z,Y). *)

val same_generation : Ast.program
(** sg(X,Y) :- flat(X,Y).  sg(X,Y) :- up(X,U), sg(U,V), down(V,Y). *)

val reachable_negation : Ast.program
(** unreachable pairs via stratified negation:
    node(X) :- edge(X,Y).  node(Y) :- edge(X,Y).
    path as usual; unreach(X,Y) :- node(X), node(Y), not path(X,Y). *)

val win_move : Ast.program
(** win(X) :- move(X,Y), not win(Y) — stratifiable only on acyclic move
    graphs; used by the stratification tests. *)

val chain : n:int -> Facts.t
(** edge facts 0→1→…→n. *)

val cycle : n:int -> Facts.t

val binary_tree : depth:int -> Facts.t
(** up/down/flat facts for same-generation on a complete binary tree:
    up(child, parent), down(parent, child), flat(leaf, leaf'). *)

val random_graph : Support.Rng.t -> nodes:int -> edges:int -> Facts.t

val grid : width:int -> height:int -> Facts.t
(** Directed grid edges (right and down). *)
