(** Naive (Gauss–Seidel-free, recompute-everything) bottom-up evaluation.

    Each iteration re-applies every rule of the current stratum to the
    full relations and stops when nothing new appears.  Kept as the
    baseline that semi-naive evaluation beats — the "beautiful ideas …
    for the implementation of recursive queries" the paper laments never
    reached products start here. *)

type stats = { iterations : int; derivations : int }
(** [derivations] counts head tuples produced across all rule
    applications, including re-derivations of known facts — the work a
    smarter strategy avoids. *)

val eval : Ast.program -> Facts.t -> Facts.t
(** [eval program edb] returns EDB ∪ IDB.  Checks safety and
    stratifiability first (ground facts in the program join the EDB). *)

val eval_with_stats : Ast.program -> Facts.t -> Facts.t * stats

val query : Ast.program -> Facts.t -> Ast.query -> Facts.Tuple_set.t
(** Evaluates the program, then filters the queried predicate by the
    query's constant pattern. *)

val filter_by_query : Facts.Tuple_set.t -> Ast.query -> Facts.Tuple_set.t
(** Tuples of a relation matching the query's constant pattern. *)
