module Tuple_set = Relational.Relation.Tuple_set

type env = (string * Relational.Value.t) list

let match_tuple args tup env =
  let rec go i args env =
    match args with
    | [] -> Some env
    | Ast.Const c :: rest ->
        if Relational.Value.equal tup.(i) c then go (i + 1) rest env else None
    | Ast.Var v :: rest -> (
        match List.assoc_opt v env with
        | Some bound ->
            if Relational.Value.equal tup.(i) bound then go (i + 1) rest env
            else None
        | None -> go (i + 1) rest ((v, tup.(i)) :: env))
  in
  go 0 args env

let match_atom tuples atom env =
  Tuple_set.fold
    (fun tup acc ->
      match match_tuple atom.Ast.args tup env with
      | Some env' -> env' :: acc
      | None -> acc)
    tuples []

let instantiate atom env =
  Array.of_list
    (List.map
       (function
         | Ast.Const c -> c
         | Ast.Var v -> (
             match List.assoc_opt v env with
             | Some value -> value
             | None ->
                 invalid_arg
                   (Printf.sprintf "unbound variable %S in %s" v
                      (Ast.atom_to_string atom))))
       atom.Ast.args)

let ground_term env = function
  | Ast.Const c -> c
  | Ast.Var v -> (
      match List.assoc_opt v env with
      | Some value -> value
      | None -> invalid_arg (Printf.sprintf "unbound variable %S in comparison" v))

let comparison_holds c a b env =
  let n =
    Relational.Value.compare (ground_term env a) (ground_term env b)
  in
  match c with
  | Relational.Algebra.Eq -> n = 0
  | Relational.Algebra.Ne -> n <> 0
  | Relational.Algebra.Lt -> n < 0
  | Relational.Algebra.Le -> n <= 0
  | Relational.Algebra.Gt -> n > 0
  | Relational.Algebra.Ge -> n >= 0

let eval_rule ~pos_source ~neg_source rule =
  let step envs (i, lit) =
    match lit with
    | Ast.Pos a ->
        let tuples = pos_source i a.Ast.pred in
        List.concat_map (fun env -> match_atom tuples a env) envs
    | Ast.Neg a ->
        let tuples = neg_source a.Ast.pred in
        List.filter
          (fun env -> not (Tuple_set.mem (instantiate a env) tuples))
          envs
    | Ast.Cmp (c, a, b) ->
        List.filter (fun env -> comparison_holds c a b env) envs
  in
  let indexed = List.mapi (fun i l -> (i, l)) rule.Ast.body in
  let envs = List.fold_left step [ [] ] indexed in
  List.fold_left
    (fun acc env -> Tuple_set.add (instantiate rule.Ast.head env) acc)
    Tuple_set.empty envs

let stratum_preds rules =
  List.sort_uniq String.compare (List.map Ast.head_pred rules)
