module R = Relational

let facts_of_database db =
  R.Database.fold
    (fun name rel acc ->
      Facts.set acc name (R.Relation.tuples rel))
    db Facts.empty

let relation_of_tuples tuples ~columns =
  match Facts.Tuple_set.choose_opt tuples with
  | None ->
      invalid_arg
        "relation_of_tuples: cannot infer column types from an empty set"
  | Some witness ->
      if Array.length witness <> List.length columns then
        invalid_arg "relation_of_tuples: column count mismatch";
      let schema =
        R.Schema.make
          (List.mapi
             (fun i name -> (name, R.Value.type_of witness.(i)))
             columns)
      in
      R.Relation.of_tuples schema (Facts.Tuple_set.elements tuples)

(* Select-project-join expressions with equality-only predicates map to
   conjunctive queries; we translate by threading a variable environment
   per attribute. *)
let cq_of_algebra catalog expr =
  let module A = R.Algebra in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "V%d" !counter
  in
  (* returns (atoms, binding of output attribute -> term) *)
  let rec go expr =
    match expr with
    | A.Rel name ->
        let attrs = R.Schema.attributes (catalog name) in
        let binding = List.map (fun a -> (a, Ast.Var (fresh ()))) attrs in
        Some ([ Ast.atom name (List.map snd binding) ], binding)
    | A.Project (attrs, e) ->
        Option.map
          (fun (atoms, binding) ->
            (atoms, List.filter (fun (a, _) -> List.mem a attrs) binding))
          (go e)
    | A.Rename (mapping, e) ->
        Option.map
          (fun (atoms, binding) ->
            ( atoms,
              List.map
                (fun (a, t) ->
                  match List.assoc_opt a mapping with
                  | Some b -> (b, t)
                  | None -> (a, t))
                binding ))
          (go e)
    | A.Select (p, e) -> (
        match go e with
        | None -> None
        | Some (atoms, binding) ->
            (* only conjunctions of equalities stay conjunctive *)
            let rec conj = function
              | A.True -> Some []
              | A.And (a, b) -> (
                  match (conj a, conj b) with
                  | Some xs, Some ys -> Some (xs @ ys)
                  | _ -> None)
              | A.Cmp (A.Eq, l, r) -> Some [ (l, r) ]
              | A.Cmp _ | A.Or _ | A.Not _ | A.False -> None
            in
            (match conj p with
            | None -> None
            | Some eqs ->
                (* each equality merges terms: substitute one side by the
                   other throughout atoms and binding *)
                let term_of = function
                  | A.Attr a -> List.assoc_opt a binding
                  | A.Const c -> Some (Ast.Const c)
                in
                let substitute from_ to_ (atoms, binding) =
                  let fix t = if t = from_ then to_ else t in
                  ( List.map
                      (fun at -> { at with Ast.args = List.map fix at.Ast.args })
                      atoms,
                    List.map (fun (a, t) -> (a, fix t)) binding )
                in
                let rec apply eqs acc =
                  match (eqs, acc) with
                  | [], _ -> Some acc
                  | (l, r) :: rest, (atoms, binding) -> (
                      match (term_of l, term_of r) with
                      | Some tl, Some tr -> (
                          match (tl, tr) with
                          | Ast.Const a, Ast.Const b ->
                              if R.Value.equal a b then apply rest acc else None
                          | Ast.Var _, _ ->
                              apply rest (substitute tl tr (atoms, binding))
                          | _, Ast.Var _ ->
                              apply rest (substitute tr tl (atoms, binding))
                          )
                      | _ -> None)
                in
                (* re-resolve term_of after each substitution by rebuilding
                   bindings: handled by substitute over binding *)
                apply eqs (atoms, binding)))
    | A.Product (a, b) | A.Join (a, b) -> (
        match (go a, go b) with
        | Some (atoms_a, bind_a), Some (atoms_b, bind_b) ->
            (* natural join: shared attributes are equated *)
            let shared =
              List.filter (fun (attr, _) -> List.mem_assoc attr bind_a) bind_b
            in
            let merged = ref (atoms_a @ atoms_b, bind_a @ bind_b) in
            let ok =
              List.for_all
                (fun (attr, tb) ->
                  let ta = List.assoc attr bind_a in
                  match (ta, tb) with
                  | Ast.Const a, Ast.Const b -> R.Value.equal a b
                  | Ast.Var _, t ->
                      let atoms, binding = !merged in
                      let fix x = if x = ta then t else x in
                      merged :=
                        ( List.map
                            (fun at ->
                              { at with Ast.args = List.map fix at.Ast.args })
                            atoms,
                          List.map (fun (a, x) -> (a, fix x)) binding );
                      true
                  | t, Ast.Var _ ->
                      let atoms, binding = !merged in
                      let fix x = if x = tb then t else x in
                      merged :=
                        ( List.map
                            (fun at ->
                              { at with Ast.args = List.map fix at.Ast.args })
                            atoms,
                          List.map (fun (a, x) -> (a, fix x)) binding );
                      true)
                shared
            in
            if ok then begin
              let atoms, binding = !merged in
              (* deduplicate binding entries by attribute (shared attrs
                 appear twice with now-equal terms) *)
              let seen = Hashtbl.create 8 in
              let binding =
                List.filter
                  (fun (a, _) ->
                    if Hashtbl.mem seen a then false
                    else begin
                      Hashtbl.add seen a ();
                      true
                    end)
                  binding
              in
              Some (atoms, binding)
            end
            else None
        | _ -> None)
    | A.Singleton _ | A.Union _ | A.Inter _ | A.Diff _ | A.Divide _ -> None
  in
  match go expr with
  | None -> None
  | Some (atoms, binding) ->
      let attrs = R.Schema.attributes (R.Algebra.schema_of catalog expr) in
      let head = List.map (fun a -> List.assoc a binding) attrs in
      Some { Containment.head; body = atoms }
