module Tuple_set = Relational.Relation.Tuple_set
module Smap = Map.Make (String)

type t = Tuple_set.t Smap.t

let empty = Smap.empty

let is_empty t = Smap.for_all (fun _ s -> Tuple_set.is_empty s) t

let get t pred =
  match Smap.find_opt pred t with Some s -> s | None -> Tuple_set.empty

let add t pred tup = Smap.add pred (Tuple_set.add tup (get t pred)) t

let add_list t pred rows =
  List.fold_left (fun t row -> add t pred (Array.of_list row)) t rows

let mem t pred tup = Tuple_set.mem tup (get t pred)

let set t pred tuples = Smap.add pred tuples t

let preds t = List.map fst (Smap.bindings t)

let cardinality t pred = Tuple_set.cardinal (get t pred)

let total t = Smap.fold (fun _ s acc -> acc + Tuple_set.cardinal s) t 0

let union a b =
  Smap.union (fun _ s1 s2 -> Some (Tuple_set.union s1 s2)) a b

let diff_new candidate old =
  Smap.filter_map
    (fun pred s ->
      let d = Tuple_set.diff s (get old pred) in
      if Tuple_set.is_empty d then None else Some d)
    candidate

let equal a b =
  let non_empty t =
    Smap.filter (fun _ s -> not (Tuple_set.is_empty s)) t
  in
  Smap.equal Tuple_set.equal (non_empty a) (non_empty b)

let fold f t init = Smap.fold f t init

let of_program_facts prog =
  List.fold_left
    (fun acc rule ->
      match rule.Ast.body with
      | [] ->
          let values =
            List.map
              (function
                | Ast.Const c -> c
                | Ast.Var v ->
                    invalid_arg
                      (Printf.sprintf "non-ground fact: variable %S in %s" v
                         (Ast.rule_to_string rule)))
              rule.Ast.head.Ast.args
          in
          add acc rule.Ast.head.Ast.pred (Array.of_list values)
      | _ :: _ -> acc)
    empty prog

let to_string t =
  let buf = Buffer.create 256 in
  Smap.iter
    (fun pred s ->
      Tuple_set.iter
        (fun tup ->
          Buffer.add_string buf
            (Printf.sprintf "%s(%s).\n" pred
               (String.concat ", "
                  (Array.to_list (Array.map Relational.Value.to_literal tup)))))
        s)
    t;
  Buffer.contents buf
