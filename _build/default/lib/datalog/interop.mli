(** Bridge between the untyped Datalog fact stores and the typed
    relational model, so Datalog programs can run over relational
    instances and their answers flow back into the algebra. *)

val facts_of_database : Relational.Database.t -> Facts.t
(** Every relation becomes a predicate of the same name. *)

val relation_of_tuples :
  Facts.Tuple_set.t -> columns:string list -> Relational.Relation.t
(** Builds a typed relation from a tuple set, inferring each column's type
    from the first tuple.  Raises [Invalid_argument] on an empty set with
    no way to infer types, or on heterogeneous columns. *)

val cq_of_algebra :
  Relational.Algebra.catalog ->
  Relational.Algebra.t ->
  Containment.cq option
(** Conjunctive queries correspond to select-project-join algebra; returns
    [None] for expressions outside that fragment (union, difference,
    negation, division, non-equality selections). *)
