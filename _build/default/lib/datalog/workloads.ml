let parse = Parser.parse_program

let transitive_closure =
  parse {|
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  |}

let transitive_closure_left =
  parse {|
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
  |}

let same_generation =
  parse {|
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
  |}

let reachable_negation =
  parse {|
    node(X) :- edge(X, Y).
    node(Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    unreach(X, Y) :- node(X), node(Y), not path(X, Y).
  |}

let win_move =
  parse {|
    win(X) :- move(X, Y), not win(Y).
  |}

let int_ i = Relational.Value.Int i

let edge_facts pairs =
  Facts.add_list Facts.empty "edge"
    (List.map (fun (a, b) -> [ int_ a; int_ b ]) pairs)

let chain ~n = edge_facts (List.init n (fun i -> (i, i + 1)))

let cycle ~n =
  edge_facts (List.init n (fun i -> (i, (i + 1) mod n)))

let binary_tree ~depth =
  (* nodes 1 .. 2^(depth+1)-1, children of i are 2i and 2i+1 *)
  let max_node = (1 lsl (depth + 1)) - 1 in
  let internal = List.init ((1 lsl depth) - 1) (fun i -> i + 1) in
  let up =
    List.concat_map
      (fun parent -> [ (2 * parent, parent); ((2 * parent) + 1, parent) ])
      internal
  in
  let down = List.map (fun (c, p) -> (p, c)) up in
  let leaves =
    List.init (1 lsl depth) (fun i -> (1 lsl depth) + i)
    |> List.filter (fun v -> v <= max_node)
  in
  let flat =
    (* adjacent leaves are "flat" neighbours *)
    List.concat_map
      (fun v -> if v + 1 <= max_node then [ (v, v + 1); (v + 1, v) ] else [])
      leaves
  in
  let add name pairs facts =
    Facts.add_list facts name
      (List.map (fun (a, b) -> [ int_ a; int_ b ]) pairs)
  in
  Facts.empty |> add "up" up |> add "down" down |> add "flat" flat

let random_graph rng ~nodes ~edges =
  let rec distinct acc k =
    if k = 0 then acc
    else begin
      let a = Support.Rng.int rng nodes and b = Support.Rng.int rng nodes in
      distinct ((a, b) :: acc) (k - 1)
    end
  in
  edge_facts (List.sort_uniq compare (distinct [] edges))

let grid ~width ~height =
  let id x y = (y * width) + x in
  let horizontal =
    List.concat_map
      (fun y -> List.init (width - 1) (fun x -> (id x y, id (x + 1) y)))
      (List.init height Fun.id)
  in
  let vertical =
    List.concat_map
      (fun y -> List.init width (fun x -> (id x y, id x (y + 1))))
      (List.init (height - 1) Fun.id)
  in
  edge_facts (horizontal @ vertical)
