lib/datalog/provenance.mli: Ast Facts Relational
