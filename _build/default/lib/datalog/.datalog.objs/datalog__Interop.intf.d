lib/datalog/interop.mli: Containment Facts Relational
