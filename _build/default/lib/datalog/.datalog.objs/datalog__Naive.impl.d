lib/datalog/naive.ml: Ast Checks Engine Facts List Relational
