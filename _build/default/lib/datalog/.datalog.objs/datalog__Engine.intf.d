lib/datalog/engine.mli: Ast Relational
