lib/datalog/engine.ml: Array Ast List Printf Relational String
