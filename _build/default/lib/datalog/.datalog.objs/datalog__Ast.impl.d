lib/datalog/ast.ml: Format Hashtbl List Option Printf Relational String
