lib/datalog/containment.mli: Ast
