lib/datalog/magic.mli: Ast Facts Naive
