lib/datalog/workloads.mli: Ast Facts Support
