lib/datalog/ast.mli: Format Relational
