lib/datalog/magic.ml: Ast Facts Hashtbl List Naive Printf Queue Relational Seminaive Set String
