lib/datalog/provenance.ml: Array Ast Buffer Checks Engine Facts Hashtbl List Printf Relational String
