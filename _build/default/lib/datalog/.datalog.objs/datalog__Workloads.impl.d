lib/datalog/workloads.ml: Facts Fun List Parser Relational Support
