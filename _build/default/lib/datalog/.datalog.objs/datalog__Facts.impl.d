lib/datalog/facts.ml: Array Ast Buffer List Map Printf Relational String
