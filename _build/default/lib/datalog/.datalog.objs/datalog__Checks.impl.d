lib/datalog/checks.ml: Ast Hashtbl List Printf Set String
