lib/datalog/checks.mli: Ast
