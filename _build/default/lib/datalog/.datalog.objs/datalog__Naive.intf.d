lib/datalog/naive.mli: Ast Facts
