lib/datalog/interop.ml: Array Ast Containment Facts Hashtbl List Option Printf Relational
