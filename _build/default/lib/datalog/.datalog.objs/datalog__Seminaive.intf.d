lib/datalog/seminaive.mli: Ast Facts Naive
