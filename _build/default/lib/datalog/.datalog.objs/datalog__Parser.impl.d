lib/datalog/parser.ml: Ast Buffer List Printf Relational String
