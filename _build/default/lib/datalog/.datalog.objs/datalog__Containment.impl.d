lib/datalog/containment.ml: Ast List Option Printf Relational String
