lib/datalog/facts.mli: Ast Relational
