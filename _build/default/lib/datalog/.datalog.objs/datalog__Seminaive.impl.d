lib/datalog/seminaive.ml: Ast Checks Engine Facts List Naive Relational
