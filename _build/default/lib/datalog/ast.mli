(** Datalog abstract syntax: terms, atoms, literals, rules, programs.

    Predicates are untyped here (a predicate is a set of value tuples);
    the {!Interop} module bridges to the typed relational model. *)

type term = Var of string | Const of Relational.Value.t

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of Relational.Algebra.comparison * term * term
      (** built-in comparison, e.g. [X < Y]; both sides must be bound by
          positive atoms (enforced by {!Checks.check_safety}) *)

type rule = { head : atom; body : literal list }

type program = rule list

type query = atom
(** A query is an atom, e.g. [path(1, X)]: constants restrict, variables
    are outputs. *)

val atom : string -> term list -> atom
val fact : string -> Relational.Value.t list -> rule
(** A rule with an empty body and constant head. *)

val atom_of : literal -> atom option
(** [None] for comparison literals. *)

val is_positive : literal -> bool
(** True only for [Pos]. *)

val is_comparison : literal -> bool

val term_vars : term -> string list
val atom_vars : atom -> string list
val literal_vars : literal -> string list
val rule_vars : rule -> string list
(** Each sorted, without duplicates. *)

val head_pred : rule -> string
val body_preds : rule -> string list

val idb_predicates : program -> string list
(** Predicates occurring in some head, sorted. *)

val edb_predicates : program -> string list
(** Predicates occurring only in bodies, sorted. *)

val arity_map : program -> (string * int) list
(** Arity of every predicate; raises [Invalid_argument] on inconsistent
    use. *)

val rename_rule_apart : rule -> suffix:string -> rule
(** Renames every variable of the rule by appending [suffix]. *)

val term_to_string : term -> string
val atom_to_string : atom -> string
val literal_to_string : literal -> string
val rule_to_string : rule -> string
val program_to_string : program -> string
val pp_rule : Format.formatter -> rule -> unit
val pp_program : Format.formatter -> program -> unit
