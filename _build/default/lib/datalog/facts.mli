(** Fact stores: immutable maps from predicate names to sets of value
    tuples.  Used for EDB inputs, IDB results, and the per-iteration
    deltas of semi-naive evaluation. *)

module Tuple_set = Relational.Relation.Tuple_set

type t

val empty : t
val is_empty : t -> bool
val add : t -> string -> Relational.Tuple.t -> t
val add_list : t -> string -> Relational.Value.t list list -> t
val get : t -> string -> Tuple_set.t
(** Empty set for unknown predicates. *)

val mem : t -> string -> Relational.Tuple.t -> bool
val set : t -> string -> Tuple_set.t -> t
val preds : t -> string list
val cardinality : t -> string -> int
val total : t -> int
(** Total number of facts across all predicates. *)

val union : t -> t -> t
val diff_new : t -> t -> t
(** [diff_new candidate old] keeps only tuples of [candidate] absent from
    [old] — the semi-naive delta step. *)

val equal : t -> t -> bool
val fold : (string -> Tuple_set.t -> 'a -> 'a) -> t -> 'a -> 'a
val of_program_facts : Ast.program -> t
(** Extracts the ground facts (empty-body, constant-head rules) of a
    program.  Raises [Invalid_argument] on a non-ground fact. *)

val to_string : t -> string
