type justification = {
  rule : Ast.rule;
  body : (string * Relational.Tuple.t) list;
  negated : (string * Relational.Tuple.t) list;
}

module Key = struct
  type t = string * Relational.Tuple.t

  let equal (p1, t1) (p2, t2) = String.equal p1 p2 && Relational.Tuple.equal t1 t2
  let hash (p, t) = Hashtbl.hash (p, Relational.Tuple.hash t)
end

module Store = Hashtbl.Make (Key)

type t = { table : justification Store.t; edb : Facts.t }

(* Evaluate one rule and return each new head fact with its
   justification.  The environments are threaded with the instantiated
   body facts, rather than reconstructed afterwards. *)
let eval_rule_with_proofs all rule =
  let step states (lit : Ast.literal) =
    match lit with
    | Ast.Pos a ->
        List.concat_map
          (fun (env, body_facts) ->
            Engine.match_atom (Facts.get all a.Ast.pred) a env
            |> List.map (fun env' ->
                   (env', (a.Ast.pred, Engine.instantiate a env') :: body_facts)))
          states
    | Ast.Neg a ->
        List.filter_map
          (fun (env, body_facts) ->
            let tup = Engine.instantiate a env in
            if Facts.mem all a.Ast.pred tup then None else Some (env, body_facts))
          states
    | Ast.Cmp (c, a, b) ->
        List.filter
          (fun (env, _) -> Engine.comparison_holds c a b env)
          states
  in
  let states = List.fold_left step [ ([], []) ] rule.Ast.body in
  List.map
    (fun (env, body_facts_rev) ->
      let head_fact = Engine.instantiate rule.Ast.head env in
      let body = List.rev body_facts_rev in
      let negated =
        List.filter_map
          (function
            | Ast.Neg a -> Some (a.Ast.pred, Engine.instantiate a env)
            | Ast.Pos _ | Ast.Cmp _ -> None)
          rule.Ast.body
      in
      (head_fact, { rule; body; negated }))
    states

let eval prog edb =
  Checks.check_safety prog;
  let strata = Checks.stratify prog in
  let edb = Facts.union edb (Facts.of_program_facts prog) in
  let store = Store.create 256 in
  let eval_stratum all rules =
    let rules = List.filter (fun r -> r.Ast.body <> []) rules in
    let rec fixpoint all =
      let additions = ref [] in
      List.iter
        (fun rule ->
          List.iter
            (fun (fact, just) ->
              let pred = rule.Ast.head.Ast.pred in
              if not (Facts.mem all pred fact) then
                additions := (pred, fact, just) :: !additions)
            (eval_rule_with_proofs all rule))
        rules;
      match !additions with
      | [] -> all
      | adds ->
          let all =
            List.fold_left
              (fun all (pred, fact, just) ->
                if not (Store.mem store (pred, fact)) then
                  Store.replace store (pred, fact) just;
                Facts.add all pred fact)
              all adds
          in
          fixpoint all
    in
    fixpoint all
  in
  let result = List.fold_left eval_stratum edb strata in
  (result, { table = store; edb })

let justification_of t pred tup = Store.find_opt t.table (pred, tup)

type proof =
  | Edb_fact of string * Relational.Tuple.t
  | Derived of
      string
      * Relational.Tuple.t
      * Ast.rule
      * proof list
      * (string * Relational.Tuple.t) list

let rec proof_of t pred tup =
  match Store.find_opt t.table (pred, tup) with
  | Some just ->
      let subs =
        List.map
          (fun (p, f) ->
            match proof_of t p f with
            | Some proof -> proof
            | None -> Edb_fact (p, f))
          just.body
      in
      Some (Derived (pred, tup, just.rule, subs, just.negated))
  | None ->
      if Facts.mem t.edb pred tup then Some (Edb_fact (pred, tup)) else None

let rec proof_depth = function
  | Edb_fact _ -> 1
  | Derived (_, _, _, subs, _) ->
      1 + List.fold_left (fun acc p -> max acc (proof_depth p)) 0 subs

let rec proof_size = function
  | Edb_fact _ -> 1
  | Derived (_, _, _, subs, _) ->
      1 + List.fold_left (fun acc p -> acc + proof_size p) 0 subs

let fact_to_string pred tup =
  Printf.sprintf "%s(%s)" pred
    (String.concat ", "
       (Array.to_list (Array.map Relational.Value.to_literal tup)))

let explain t pred tup =
  match proof_of t pred tup with
  | None -> Printf.sprintf "%s is not derivable" (fact_to_string pred tup)
  | Some proof ->
      let buf = Buffer.create 256 in
      let rec render indent = function
        | Edb_fact (p, f) ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s   [edb]\n" indent (fact_to_string p f))
        | Derived (p, f, rule, subs, negated) ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s   [%s]\n" indent (fact_to_string p f)
                 (Ast.rule_to_string rule));
            List.iter (render (indent ^ "  ")) subs;
            List.iter
              (fun (np, nf) ->
                Buffer.add_string buf
                  (Printf.sprintf "%s  not %s   [checked absent]\n" indent
                     (fact_to_string np nf)))
              negated
      in
      render "" proof;
      Buffer.contents buf
