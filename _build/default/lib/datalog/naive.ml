module Tuple_set = Relational.Relation.Tuple_set

type stats = { iterations : int; derivations : int }

let filter_by_query tuples query =
  Tuple_set.filter
    (fun tup ->
      match Engine.match_tuple query.Ast.args tup [] with
      | Some _ -> true
      | None -> false)
    tuples

let eval_with_stats prog edb =
  Checks.check_safety prog;
  let strata = Checks.stratify prog in
  let edb = Facts.union edb (Facts.of_program_facts prog) in
  let iterations = ref 0 and derivations = ref 0 in
  let eval_stratum all rules =
    let rules = List.filter (fun r -> r.Ast.body <> []) rules in
    let rec fixpoint all =
      incr iterations;
      let derived =
        List.fold_left
          (fun acc rule ->
            let source _ p = Facts.get all p in
            let out =
              Engine.eval_rule ~pos_source:source ~neg_source:(Facts.get all)
                rule
            in
            derivations := !derivations + Tuple_set.cardinal out;
            Facts.set acc rule.Ast.head.Ast.pred
              (Tuple_set.union (Facts.get acc rule.Ast.head.Ast.pred) out))
          Facts.empty rules
      in
      let grown = Facts.union all derived in
      if Facts.equal grown all then all else fixpoint grown
    in
    fixpoint all
  in
  let result = List.fold_left eval_stratum edb strata in
  (result, { iterations = !iterations; derivations = !derivations })

let eval prog edb = fst (eval_with_stats prog edb)

let query prog edb q = filter_by_query (Facts.get (eval prog edb) q.Ast.pred) q
