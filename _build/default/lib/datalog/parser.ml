exception Parse_error of string

type token =
  | Tident of string
  | Tvar of string
  | Tint of int
  | Tfloat of float
  | Tstring of string
  | Tbool of bool
  | Tlparen
  | Trparen
  | Tcomma
  | Tdot
  | Tturnstile  (* :- *)
  | Tquery      (* ?- *)
  | Tnot
  | Tcmp of Relational.Algebra.comparison
  | Teof

let err line col fmt =
  Printf.ksprintf
    (fun s -> raise (Parse_error (Printf.sprintf "line %d, col %d: %s" line col s)))
    fmt

(* --- lexer ---------------------------------------------------------------- *)

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make_lexer src = { src; pos = 0; line = 1; col = 1 }

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = c >= 'A' && c <= 'Z'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '_'

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some ('%' | '#') ->
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws lx
  | _ -> ()

let lex_while lx pred =
  let start = lx.pos in
  let rec go () =
    match peek_char lx with
    | Some c when pred c ->
        advance lx;
        go ()
    | _ -> ()
  in
  go ();
  String.sub lx.src start (lx.pos - start)

let next_token lx =
  skip_ws lx;
  let line = lx.line and col = lx.col in
  match peek_char lx with
  | None -> (Teof, line, col)
  | Some '(' ->
      advance lx;
      (Tlparen, line, col)
  | Some ')' ->
      advance lx;
      (Trparen, line, col)
  | Some ',' ->
      advance lx;
      (Tcomma, line, col)
  | Some '.' ->
      advance lx;
      (Tdot, line, col)
  | Some ':' ->
      advance lx;
      (match peek_char lx with
      | Some '-' ->
          advance lx;
          (Tturnstile, line, col)
      | _ -> err line col "expected '-' after ':'")
  | Some '?' ->
      advance lx;
      (match peek_char lx with
      | Some '-' ->
          advance lx;
          (Tquery, line, col)
      | _ -> err line col "expected '-' after '?'")
  | Some '=' ->
      advance lx;
      (Tcmp Relational.Algebra.Eq, line, col)
  | Some '!' ->
      advance lx;
      (match peek_char lx with
      | Some '=' ->
          advance lx;
          (Tcmp Relational.Algebra.Ne, line, col)
      | _ -> err line col "expected '=' after '!'")
  | Some '<' ->
      advance lx;
      (match peek_char lx with
      | Some '=' ->
          advance lx;
          (Tcmp Relational.Algebra.Le, line, col)
      | Some '>' ->
          advance lx;
          (Tcmp Relational.Algebra.Ne, line, col)
      | _ -> (Tcmp Relational.Algebra.Lt, line, col))
  | Some '>' ->
      advance lx;
      (match peek_char lx with
      | Some '=' ->
          advance lx;
          (Tcmp Relational.Algebra.Ge, line, col)
      | _ -> (Tcmp Relational.Algebra.Gt, line, col))
  | Some '"' ->
      advance lx;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek_char lx with
        | None -> err line col "unterminated string literal"
        | Some '"' -> advance lx
        | Some '\\' ->
            advance lx;
            (match peek_char lx with
            | Some 'n' -> Buffer.add_char buf '\n'
            | Some 't' -> Buffer.add_char buf '\t'
            | Some c -> Buffer.add_char buf c
            | None -> err line col "unterminated escape");
            advance lx;
            go ()
        | Some c ->
            Buffer.add_char buf c;
            advance lx;
            go ()
      in
      go ();
      (Tstring (Buffer.contents buf), line, col)
  | Some ('-' | '0' .. '9') ->
      let start = lx.pos in
      if peek_char lx = Some '-' then advance lx;
      let (_ : string) = lex_while lx is_digit in
      let is_float =
        match peek_char lx with
        | Some '.' when lx.pos + 1 < String.length lx.src && is_digit lx.src.[lx.pos + 1] ->
            advance lx;
            let (_ : string) = lex_while lx is_digit in
            true
        | _ -> false
      in
      let text = String.sub lx.src start (lx.pos - start) in
      if is_float then
        (match float_of_string_opt text with
        | Some f -> (Tfloat f, line, col)
        | None -> err line col "bad float literal %S" text)
      else (
        match int_of_string_opt text with
        | Some i -> (Tint i, line, col)
        | None -> err line col "bad integer literal %S" text)
  | Some c when is_lower c ->
      let word = lex_while lx is_ident_char in
      (match word with
      | "not" -> (Tnot, line, col)
      | "true" -> (Tbool true, line, col)
      | "false" -> (Tbool false, line, col)
      | _ -> (Tident word, line, col))
  | Some c when is_upper c || c = '_' ->
      let word = lex_while lx is_ident_char in
      (Tvar word, line, col)
  | Some c -> err line col "unexpected character %C" c

(* --- parser --------------------------------------------------------------- *)

type parser_state = {
  lx : lexer;
  mutable tok : token;
  mutable tline : int;
  mutable tcol : int;
}

let make_parser src =
  let lx = make_lexer src in
  let tok, l, c = next_token lx in
  { lx; tok; tline = l; tcol = c }

let advance_tok ps =
  let tok, l, c = next_token ps.lx in
  ps.tok <- tok;
  ps.tline <- l;
  ps.tcol <- c

let expect ps tok what =
  if ps.tok = tok then advance_tok ps
  else err ps.tline ps.tcol "expected %s" what

let parse_term ps =
  match ps.tok with
  | Tvar v ->
      advance_tok ps;
      if String.equal v "_" then err ps.tline ps.tcol "anonymous variables are not supported"
      else Ast.Var v
  | Tident s ->
      advance_tok ps;
      Ast.Const (Relational.Value.String s)
  | Tstring s ->
      advance_tok ps;
      Ast.Const (Relational.Value.String s)
  | Tint i ->
      advance_tok ps;
      Ast.Const (Relational.Value.Int i)
  | Tfloat f ->
      advance_tok ps;
      Ast.Const (Relational.Value.Float f)
  | Tbool b ->
      advance_tok ps;
      Ast.Const (Relational.Value.Bool b)
  | _ -> err ps.tline ps.tcol "expected a term"

let parse_atom ps =
  match ps.tok with
  | Tident pred ->
      advance_tok ps;
      expect ps Tlparen "'('";
      let rec args acc =
        let t = parse_term ps in
        match ps.tok with
        | Tcomma ->
            advance_tok ps;
            args (t :: acc)
        | Trparen ->
            advance_tok ps;
            List.rev (t :: acc)
        | _ -> err ps.tline ps.tcol "expected ',' or ')' in argument list"
      in
      let args = if ps.tok = Trparen then (advance_tok ps; []) else args [] in
      Ast.atom pred args
  | _ -> err ps.tline ps.tcol "expected a predicate name"

(* peek whether the upcoming tokens form "term CMP term" rather than an
   atom: an atom is an identifier followed by '(' *)
let starts_comparison ps =
  match ps.tok with
  | Tvar _ | Tint _ | Tfloat _ | Tstring _ | Tbool _ -> true
  | Tident _ -> (
      (* look ahead one token without consuming: save and restore *)
      let saved_lx_pos = ps.lx.pos and saved_line = ps.lx.line and saved_col = ps.lx.col in
      let saved = (ps.tok, ps.tline, ps.tcol) in
      advance_tok ps;
      let next_is_lparen = ps.tok = Tlparen in
      (* restore *)
      ps.lx.pos <- saved_lx_pos;
      ps.lx.line <- saved_line;
      ps.lx.col <- saved_col;
      let tok, l, c = saved in
      ps.tok <- tok;
      ps.tline <- l;
      ps.tcol <- c;
      not next_is_lparen)
  | _ -> false

let parse_literal ps =
  match ps.tok with
  | Tnot ->
      advance_tok ps;
      Ast.Neg (parse_atom ps)
  | _ when starts_comparison ps ->
      let left = parse_term ps in
      (match ps.tok with
      | Tcmp c ->
          advance_tok ps;
          let right = parse_term ps in
          Ast.Cmp (c, left, right)
      | _ -> err ps.tline ps.tcol "expected a comparison operator")
  | _ -> Ast.Pos (parse_atom ps)

let parse_rule_body ps head =
  match ps.tok with
  | Tdot ->
      advance_tok ps;
      { Ast.head; body = [] }
  | Tturnstile ->
      advance_tok ps;
      let rec literals acc =
        let l = parse_literal ps in
        match ps.tok with
        | Tcomma ->
            advance_tok ps;
            literals (l :: acc)
        | Tdot ->
            advance_tok ps;
            List.rev (l :: acc)
        | _ -> err ps.tline ps.tcol "expected ',' or '.' after a literal"
      in
      { Ast.head; body = literals [] }
  | _ -> err ps.tline ps.tcol "expected ':-' or '.' after the head"

let parse_program src =
  let ps = make_parser src in
  let rec rules acc =
    match ps.tok with
    | Teof -> List.rev acc
    | _ ->
        let head = parse_atom ps in
        let rule = parse_rule_body ps head in
        rules (rule :: acc)
  in
  rules []

let parse_rule src =
  match parse_program src with
  | [ r ] -> r
  | rules ->
      raise
        (Parse_error
           (Printf.sprintf "expected exactly one rule, got %d" (List.length rules)))

let parse_query src =
  let ps = make_parser src in
  if ps.tok = Tquery then advance_tok ps;
  let a = parse_atom ps in
  if ps.tok = Tdot then advance_tok ps;
  (match ps.tok with
  | Teof -> ()
  | _ -> err ps.tline ps.tcol "trailing input after query");
  a
