type term = Var of string | Const of Relational.Value.t

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of Relational.Algebra.comparison * term * term

type rule = { head : atom; body : literal list }

type program = rule list

type query = atom

let atom pred args = { pred; args }

let fact pred values =
  { head = { pred; args = List.map (fun v -> Const v) values }; body = [] }

let atom_of = function Pos a | Neg a -> Some a | Cmp _ -> None
let is_positive = function Pos _ -> true | Neg _ | Cmp _ -> false
let is_comparison = function Cmp _ -> true | Pos _ | Neg _ -> false

let term_vars = function Var v -> [ v ] | Const _ -> []

let atom_vars a =
  List.sort_uniq String.compare (List.concat_map term_vars a.args)

let literal_vars = function
  | Pos a | Neg a -> atom_vars a
  | Cmp (_, a, b) ->
      List.sort_uniq String.compare (term_vars a @ term_vars b)

let rule_vars r =
  List.sort_uniq String.compare
    (atom_vars r.head @ List.concat_map literal_vars r.body)

let head_pred r = r.head.pred

let body_preds r =
  List.sort_uniq String.compare
    (List.filter_map (fun l -> Option.map (fun a -> a.pred) (atom_of l)) r.body)

let idb_predicates prog =
  List.sort_uniq String.compare (List.map head_pred prog)

let edb_predicates prog =
  let idb = idb_predicates prog in
  List.sort_uniq String.compare
    (List.concat_map body_preds prog)
  |> List.filter (fun p -> not (List.mem p idb))

let arity_map prog =
  let table = Hashtbl.create 16 in
  let note where a =
    let n = List.length a.args in
    match Hashtbl.find_opt table a.pred with
    | None -> Hashtbl.add table a.pred n
    | Some n' ->
        if n <> n' then
          invalid_arg
            (Printf.sprintf
               "predicate %s used with arities %d and %d (%s)" a.pred n' n
               where)
  in
  List.iter
    (fun r ->
      note "head" r.head;
      List.iter
        (fun l ->
          match atom_of l with Some a -> note "body" a | None -> ())
        r.body)
    prog;
  Hashtbl.fold (fun p n acc -> (p, n) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let rename_rule_apart r ~suffix =
  let fix = function Var v -> Var (v ^ suffix) | Const c -> Const c in
  let fix_atom a = { a with args = List.map fix a.args } in
  {
    head = fix_atom r.head;
    body =
      List.map
        (function
          | Pos a -> Pos (fix_atom a)
          | Neg a -> Neg (fix_atom a)
          | Cmp (c, a, b) -> Cmp (c, fix a, fix b))
        r.body;
  }

let term_to_string = function
  | Var v -> v
  | Const c -> Relational.Value.to_literal c

let atom_to_string a =
  Printf.sprintf "%s(%s)" a.pred
    (String.concat ", " (List.map term_to_string a.args))

let literal_to_string = function
  | Pos a -> atom_to_string a
  | Neg a -> "not " ^ atom_to_string a
  | Cmp (c, a, b) ->
      Printf.sprintf "%s %s %s" (term_to_string a)
        (Relational.Algebra.comparison_to_string c)
        (term_to_string b)

let rule_to_string r =
  match r.body with
  | [] -> atom_to_string r.head ^ "."
  | body ->
      Printf.sprintf "%s :- %s." (atom_to_string r.head)
        (String.concat ", " (List.map literal_to_string body))

let program_to_string prog =
  String.concat "\n" (List.map rule_to_string prog)

let pp_rule fmt r = Format.pp_print_string fmt (rule_to_string r)

let pp_program fmt p = Format.pp_print_string fmt (program_to_string p)
