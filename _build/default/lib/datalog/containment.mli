(** Conjunctive-query containment, equivalence, and minimization.

    The Chandra–Merlin theorem: Q1 ⊆ Q2 iff there is a homomorphism from
    Q2 to (the frozen) Q1.  Deciding this is NP-complete — one of the
    "negative methodology" results (§3) that computer science exports; we
    solve it with backtracking, which also powers CQ minimization (the
    core of a query). *)

type cq = { head : Ast.term list; body : Ast.atom list }
(** A conjunctive query: head terms over the body's variables, positive
    body atoms only. *)

exception Not_conjunctive of string

val of_rule : Ast.rule -> cq
(** Raises {!Not_conjunctive} if the rule has a negated literal. *)

val to_rule : string -> cq -> Ast.rule

val homomorphism :
  cq -> cq -> (string * Ast.term) list option
(** [homomorphism q2 q1] finds a mapping of q2's variables to q1's terms
    that maps every atom of q2's body into q1's body and q2's head to
    q1's head — the witness that q1 ⊆ q2. *)

val contained : cq -> cq -> bool
(** [contained q1 q2] decides Q1 ⊆ Q2. *)

val equivalent : cq -> cq -> bool

val minimize : cq -> cq
(** The core: a minimal equivalent subquery, computed by repeatedly
    dropping redundant atoms (folding the query onto itself). *)
