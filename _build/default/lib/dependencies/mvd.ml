type t = { lhs : Attrs.t; rhs : Attrs.t }

let make lhs rhs = { lhs; rhs }

let of_string s =
  let marker = "->>" in
  let rec find i =
    if i + String.length marker > String.length s then None
    else if String.equal (String.sub s i (String.length marker)) marker then
      Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
      let left = String.trim (String.sub s 0 i) in
      let right =
        String.trim (String.sub s (i + 3) (String.length s - i - 3))
      in
      { lhs = Attrs.of_string left; rhs = Attrs.of_string right }
  | None -> invalid_arg (Printf.sprintf "Mvd.of_string: no '->>' in %S" s)

let to_string { lhs; rhs } =
  Printf.sprintf "%s ->> %s" (Attrs.to_string lhs) (Attrs.to_string rhs)

let equal a b = Attrs.equal a.lhs b.lhs && Attrs.equal a.rhs b.rhs

let is_trivial { lhs; rhs } ~universe =
  Attrs.subset rhs lhs || Attrs.equal (Attrs.union lhs rhs) universe

let complement { lhs; rhs } ~universe =
  { lhs; rhs = Attrs.diff (Attrs.diff universe lhs) rhs }

let of_fd (fd : Fd.t) = { lhs = fd.Fd.lhs; rhs = fd.Fd.rhs }

module R = Relational

let positions rel attrs =
  let schema = R.Relation.schema rel in
  Array.of_list (List.map (R.Schema.index_of schema) (Attrs.elements attrs))

let fd_holds_in rel (fd : Fd.t) =
  let px = positions rel fd.Fd.lhs and py = positions rel fd.Fd.rhs in
  let table = Hashtbl.create 64 in
  try
    R.Relation.iter
      (fun tup ->
        let key = R.Tuple.project tup px in
        let image = R.Tuple.project tup py in
        match Hashtbl.find_opt table key with
        | None -> Hashtbl.add table key image
        | Some image' ->
            if not (R.Tuple.equal image image') then raise Exit)
      rel;
    true
  with Exit -> false

let holds_in rel mvd =
  let schema = R.Relation.schema rel in
  let universe = Attrs.of_list (R.Schema.attributes schema) in
  let x = mvd.lhs in
  let y = Attrs.diff mvd.rhs x in
  let z = Attrs.diff (Attrs.diff universe x) y in
  let px = positions rel x and py = positions rel y and pz = positions rel z in
  (* group tuples by X; within a group, every Y-slice must pair with every
     Z-slice *)
  let groups = Hashtbl.create 64 in
  R.Relation.iter
    (fun tup ->
      let key = R.Tuple.project tup px in
      let y_part = R.Tuple.project tup py in
      let z_part = R.Tuple.project tup pz in
      let ys, zs, pairs =
        match Hashtbl.find_opt groups key with
        | Some entry -> entry
        | None ->
            let entry = (Hashtbl.create 8, Hashtbl.create 8, Hashtbl.create 8) in
            Hashtbl.add groups key entry;
            entry
      in
      Hashtbl.replace ys y_part ();
      Hashtbl.replace zs z_part ();
      Hashtbl.replace pairs (y_part, z_part) ())
    rel;
  Hashtbl.fold
    (fun _ (ys, zs, pairs) ok ->
      ok
      && Hashtbl.length pairs = Hashtbl.length ys * Hashtbl.length zs)
    groups true
