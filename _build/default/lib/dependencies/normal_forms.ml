type scheme = { name : string; attrs : Attrs.t; fds : Fd.t list }

type violation = { fd : Fd.t; reason : string }

let nontrivial_fds scheme =
  List.filter (fun fd -> not (Fd.is_trivial fd)) scheme.fds

let violations_2nf scheme =
  let keys = Fd.candidate_keys ~universe:scheme.attrs scheme.fds in
  let prime = List.fold_left Attrs.union Attrs.empty keys in
  List.filter_map
    (fun (fd : Fd.t) ->
      let nonprime_rhs = Attrs.diff (Attrs.diff fd.Fd.rhs fd.Fd.lhs) prime in
      let partial =
        List.exists
          (fun key -> Attrs.subset fd.Fd.lhs key && not (Attrs.equal fd.Fd.lhs key))
          keys
      in
      if partial && not (Attrs.is_empty nonprime_rhs) then
        Some
          {
            fd;
            reason =
              Printf.sprintf
                "nonprime %s depends on %s, a proper subset of a key"
                (Attrs.to_string nonprime_rhs)
                (Attrs.to_string fd.Fd.lhs);
          }
      else None)
    (nontrivial_fds scheme)

let is_2nf scheme = violations_2nf scheme = []

let violations_3nf scheme =
  let prime = Fd.prime_attributes ~universe:scheme.attrs scheme.fds in
  List.filter_map
    (fun (fd : Fd.t) ->
      if Fd.is_superkey fd.Fd.lhs ~universe:scheme.attrs scheme.fds then None
      else begin
        let bad = Attrs.diff (Attrs.diff fd.Fd.rhs fd.Fd.lhs) prime in
        if Attrs.is_empty bad then None
        else
          Some
            {
              fd;
              reason =
                Printf.sprintf "%s is not a superkey and %s is nonprime"
                  (Attrs.to_string fd.Fd.lhs) (Attrs.to_string bad);
            }
      end)
    (nontrivial_fds scheme)

let is_3nf scheme = violations_3nf scheme = []

let violations_bcnf scheme =
  List.filter_map
    (fun (fd : Fd.t) ->
      if Fd.is_superkey fd.Fd.lhs ~universe:scheme.attrs scheme.fds then None
      else
        Some
          {
            fd;
            reason =
              Printf.sprintf "%s is not a superkey" (Attrs.to_string fd.Fd.lhs);
          })
    (nontrivial_fds scheme)

let is_bcnf scheme = violations_bcnf scheme = []

let is_4nf scheme mvds =
  let all_mvds = mvds @ List.map Mvd.of_fd scheme.fds in
  List.for_all
    (fun (mvd : Mvd.t) ->
      Mvd.is_trivial mvd ~universe:scheme.attrs
      || Fd.is_superkey mvd.Mvd.lhs ~universe:scheme.attrs scheme.fds)
    all_mvds

let bcnf_decompose scheme =
  let counter = ref 0 in
  let rec go scheme =
    match violations_bcnf scheme with
    | [] -> [ scheme ]
    | { fd; _ } :: _ ->
        (* split into (X+ ∩ attrs) and (X ∪ (attrs − X+)) *)
        let xplus = Attrs.inter (Fd.closure fd.Fd.lhs scheme.fds) scheme.attrs in
        let left_attrs = xplus in
        let right_attrs =
          Attrs.union fd.Fd.lhs (Attrs.diff scheme.attrs xplus)
        in
        let sub attrs =
          incr counter;
          {
            name = Printf.sprintf "%s_%d" scheme.name !counter;
            attrs;
            fds = Fd.project scheme.fds ~onto:attrs;
          }
        in
        go (sub left_attrs) @ go (sub right_attrs)
  in
  go scheme

let synthesize_3nf scheme =
  let cover = Fd.minimal_cover scheme.fds in
  (* group FDs by left-hand side *)
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (fd : Fd.t) ->
      let key = Attrs.to_string fd.Fd.lhs in
      let existing =
        match Hashtbl.find_opt groups key with
        | Some (lhs, rhs) -> (lhs, Attrs.union rhs fd.Fd.rhs)
        | None -> (fd.Fd.lhs, fd.Fd.rhs)
      in
      Hashtbl.replace groups key existing)
    cover;
  let components =
    Hashtbl.fold
      (fun _ (lhs, rhs) acc -> Attrs.union lhs rhs :: acc)
      groups []
  in
  (* ensure some component contains a candidate key *)
  let keys = Fd.candidate_keys ~universe:scheme.attrs scheme.fds in
  let has_key =
    List.exists
      (fun comp -> List.exists (fun k -> Attrs.subset k comp) keys)
      components
  in
  let components =
    if has_key then components
    else
      match keys with
      | key :: _ -> key :: components
      | [] -> scheme.attrs :: components
  in
  (* attributes in no FD still need a home: put leftovers in their own
     component (they are part of every key, so [keys] covers them when
     has_key holds; this is the defensive path) *)
  let covered = List.fold_left Attrs.union Attrs.empty components in
  let leftovers = Attrs.diff scheme.attrs covered in
  let components =
    if Attrs.is_empty leftovers then components else leftovers :: components
  in
  (* drop components subsumed by others *)
  let components =
    List.filter
      (fun c ->
        not
          (List.exists
             (fun c' -> (not (Attrs.equal c c')) && Attrs.subset c c')
             components))
      components
    |> List.sort_uniq Attrs.compare
  in
  List.mapi
    (fun i attrs ->
      {
        name = Printf.sprintf "%s_%d" scheme.name (i + 1);
        attrs;
        fds = Fd.project scheme.fds ~onto:attrs;
      })
    components

let dependency_preserving scheme decomposition =
  let projected = List.concat_map (fun s -> s.fds) decomposition in
  List.for_all (Fd.implies projected) scheme.fds

let lossless scheme decomposition =
  Chase.lossless_join ~universe:scheme.attrs scheme.fds
    (List.map (fun s -> s.attrs) decomposition)

let scheme_to_string s =
  Printf.sprintf "%s(%s) with {%s}" s.name (Attrs.to_string s.attrs)
    (Fd.set_to_string s.fds)
