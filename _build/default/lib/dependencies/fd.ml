type t = { lhs : Attrs.t; rhs : Attrs.t }

let make lhs rhs = { lhs; rhs }

let of_string s =
  match String.index_opt s '-' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '>' ->
      let left = String.trim (String.sub s 0 i) in
      let right = String.trim (String.sub s (i + 2) (String.length s - i - 2)) in
      { lhs = Attrs.of_string left; rhs = Attrs.of_string right }
  | _ -> invalid_arg (Printf.sprintf "Fd.of_string: no '->' in %S" s)

let set_of_string s =
  String.split_on_char '\n' s
  |> List.concat_map (String.split_on_char ';')
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.map of_string

let to_string { lhs; rhs } =
  Printf.sprintf "%s -> %s" (Attrs.to_string lhs) (Attrs.to_string rhs)

let set_to_string fds = String.concat "; " (List.map to_string fds)

let equal a b = Attrs.equal a.lhs b.lhs && Attrs.equal a.rhs b.rhs

let is_trivial { lhs; rhs } = Attrs.subset rhs lhs

let reflexivity x y = if Attrs.subset y x then Some { lhs = x; rhs = y } else None

let augmentation { lhs; rhs } z =
  { lhs = Attrs.union lhs z; rhs = Attrs.union rhs z }

let transitivity a b =
  if Attrs.equal a.rhs b.lhs then Some { lhs = a.lhs; rhs = b.rhs } else None

let closure x fds =
  let rec grow acc =
    let acc' =
      List.fold_left
        (fun acc fd ->
          if Attrs.subset fd.lhs acc then Attrs.union acc fd.rhs else acc)
        acc fds
    in
    if Attrs.equal acc acc' then acc else grow acc'
  in
  grow x

let implies fds fd = Attrs.subset fd.rhs (closure fd.lhs fds)

let equivalent_sets f g =
  List.for_all (implies f) g && List.for_all (implies g) f

let is_superkey x ~universe fds = Attrs.subset universe (closure x fds)

let is_candidate_key x ~universe fds =
  is_superkey x ~universe fds
  && Attrs.for_all
       (fun a -> not (is_superkey (Attrs.remove a x) ~universe fds))
       x

let candidate_keys ~universe fds =
  (* attributes that appear in no RHS (w.r.t. nontrivial FDs) must belong
     to every key; attributes in no LHS and some RHS belong to none *)
  let rhs_attrs =
    List.fold_left
      (fun acc fd -> Attrs.union acc (Attrs.diff fd.rhs fd.lhs))
      Attrs.empty fds
  in
  let core = Attrs.diff universe rhs_attrs in
  let optional = Attrs.elements (Attrs.diff universe core) in
  let keys = ref [] in
  let is_superset_of_found x =
    List.exists (fun k -> Attrs.subset k x) !keys
  in
  (* enumerate extensions of the core by subsets of the optional
     attributes, in increasing size, pruning supersets of found keys *)
  let n = List.length optional in
  let subsets_of_size k =
    let rec choose k rest =
      if k = 0 then [ [] ]
      else
        match rest with
        | [] -> []
        | x :: tail ->
            List.map (fun s -> x :: s) (choose (k - 1) tail) @ choose k tail
    in
    choose k optional
  in
  for size = 0 to n do
    List.iter
      (fun subset ->
        let cand = Attrs.union core (Attrs.of_list subset) in
        if (not (is_superset_of_found cand)) && is_superkey cand ~universe fds
        then keys := cand :: !keys)
      (subsets_of_size size)
  done;
  List.sort
    (fun a b ->
      let c = Int.compare (Attrs.cardinal a) (Attrs.cardinal b) in
      if c <> 0 then c else String.compare (Attrs.to_string a) (Attrs.to_string b))
    !keys

let prime_attributes ~universe fds =
  List.fold_left Attrs.union Attrs.empty (candidate_keys ~universe fds)

let minimal_cover fds =
  (* 1: singleton right-hand sides *)
  let split =
    List.concat_map
      (fun fd ->
        List.map
          (fun a -> { lhs = fd.lhs; rhs = Attrs.singleton a })
          (Attrs.elements fd.rhs))
      fds
    |> List.filter (fun fd -> not (is_trivial fd))
  in
  (* 2: remove extraneous LHS attributes *)
  let reduce_lhs all fd =
    let rec shrink lhs =
      let removable =
        Attrs.elements lhs
        |> List.find_opt (fun a ->
               let smaller = Attrs.remove a lhs in
               (not (Attrs.is_empty smaller))
               && Attrs.subset fd.rhs (closure smaller all))
      in
      match removable with
      | Some a -> shrink (Attrs.remove a lhs)
      | None -> lhs
    in
    { fd with lhs = shrink fd.lhs }
  in
  let reduced = List.map (reduce_lhs split) split in
  (* 3: drop redundant FDs *)
  let rec drop kept = function
    | [] -> List.rev kept
    | fd :: rest ->
        let others = List.rev_append kept rest in
        if implies others fd then drop kept rest else drop (fd :: kept) rest
  in
  let result = drop [] reduced in
  (* dedupe *)
  List.fold_left
    (fun acc fd -> if List.exists (equal fd) acc then acc else acc @ [ fd ])
    [] result

let project fds ~onto =
  let attrs = Attrs.elements onto in
  let rec subsets = function
    | [] -> [ Attrs.empty ]
    | x :: rest ->
        let smaller = subsets rest in
        smaller @ List.map (Attrs.add x) smaller
  in
  let projected =
    List.filter_map
      (fun x ->
        if Attrs.is_empty x then None
        else begin
          let image = Attrs.inter (closure x fds) onto in
          let fd = { lhs = x; rhs = Attrs.diff image x } in
          if Attrs.is_empty fd.rhs then None else Some fd
        end)
      (subsets attrs)
  in
  minimal_cover projected
