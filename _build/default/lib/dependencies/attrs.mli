(** Attribute sets — the coin of dependency theory. *)

include Set.S with type elt = string

val of_string : string -> t
(** ["ABC"] or ["A B C"] or ["A,B,C"]: single-letter attributes may be run
    together; multi-character names must be separated by spaces or
    commas. *)

val to_string : t -> string
(** Single-letter sets render run together ("ABC"), others
    comma-separated. *)

val pp : Format.formatter -> t -> unit
