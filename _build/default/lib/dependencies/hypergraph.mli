(** Hypergraph acyclicity via GYO reduction — the "acyclicity" thread of
    early PODS relational theory.

    A database scheme is a hypergraph whose hyperedges are the relation
    schemes.  Acyclic schemes admit join trees and make many otherwise
    NP-hard problems easy (Yannakakis); the GYO (Graham / Yu–Özsoyoğlu)
    reduction decides acyclicity: repeatedly remove "ear" edges and
    vertices unique to one edge until nothing changes — the scheme is
    acyclic iff everything disappears. *)

type t = Attrs.t list
(** Hyperedges. *)

type join_tree = (Attrs.t * Attrs.t) list
(** Parent relation between hyperedges of an acyclic scheme: (ear,
    witness) pairs in removal order. *)

val gyo_reduce : t -> t
(** The irreducible residue; [] (or a single empty edge) iff acyclic. *)

val is_acyclic : t -> bool

val join_tree : t -> join_tree option
(** A join tree when acyclic, [None] otherwise.  Edges whose vertices all
    became private during the reduction vanish without a witness and do
    not appear as children. *)

val to_string : t -> string
