(** Armstrong relations: for a set F of functional dependencies, a
    concrete instance that satisfies exactly the dependencies implied by
    F — the "hard facts" a design tool can show a user to demonstrate
    that a dependency does {e not} follow from the others.

    Construction: one base row, plus one row per closed attribute set
    (sets C with C⁺ = C), agreeing with the base row exactly on C.  Two
    rows agree exactly on closed sets, so X → A holds iff A ∈ X⁺. *)

val closed_sets : universe:Attrs.t -> Fd.t list -> Attrs.t list
(** All closed sets, by closing every subset (exponential in the number
    of attributes — design-tool scale). *)

val relation : universe:Attrs.t -> Fd.t list -> Relational.Relation.t
(** The Armstrong relation, with integer columns named by the
    attributes.  Satisfies an FD over [universe] iff F implies it
    (property-tested via {!Mvd.fd_holds_in} and {!Fd.implies}). *)
