(** Yannakakis' algorithm: evaluating acyclic natural-join queries with a
    semijoin full reducer.

    This is the payoff of the acyclicity tradition (§6's early PODS
    themes): for an acyclic database scheme, a GYO ear decomposition
    yields a join tree; one bottom-up and one top-down semijoin sweep
    fully reduce every relation (no dangling tuples), after which the
    join's intermediate results never exceed the final output — total
    time polynomial in input + output, versus the exponential
    intermediate blowup an unlucky join order suffers on cyclic plans.
    The ablation benchmark measures exactly that contrast. *)

exception Cyclic
(** Raised when the relations' schemas do not form an acyclic
    hypergraph. *)

type plan = {
  ears : (int * int) list;
      (** (ear index, witness index) in GYO removal order *)
  independent : int list;
      (** relations whose edges vanished by vertex stripping (attribute-
          disjoint from everything remaining); they contribute a cross
          product *)
}

val plan : Relational.Schema.t list -> plan option
(** [None] when the scheme is cyclic. *)

val full_reduce : Relational.Relation.t list -> Relational.Relation.t list
(** Semijoin program: one pass up the ear order, one pass down.  For a
    connected acyclic query the result has no dangling tuples: every
    surviving tuple participates in some answer (property-tested).
    Raises {!Cyclic}. *)

val join : Relational.Relation.t list -> Relational.Relation.t
(** Full reduction followed by joins in reverse ear order.  Equals the
    natural join of all inputs, in any order (property-tested).  Raises
    {!Cyclic} on cyclic schemes — use plain {!Relational.Relation.join}
    folds there. *)

val semijoin_count : Relational.Relation.t list -> int
(** Number of semijoins the reducer performs (2·|ears|), for reporting. *)
