type t = Attrs.t list

type join_tree = (Attrs.t * Attrs.t) list

(* One GYO pass: (1) drop vertices that occur in exactly one edge,
   (2) drop edges contained in another edge.  Returns the reduced
   hypergraph and the list of (removed ear, witness) pairs. *)
let gyo_step edges =
  (* vertex occurrence counts *)
  let counts = Hashtbl.create 32 in
  List.iter
    (fun e ->
      Attrs.iter
        (fun v ->
          Hashtbl.replace counts v
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
        e)
    edges;
  let stripped =
    List.map
      (fun e -> Attrs.filter (fun v -> Hashtbl.find counts v > 1) e)
      edges
  in
  (* remove one edge contained in another (an ear) *)
  let rec remove_ear acc = function
    | [] -> None
    | e :: rest -> (
        let others = List.rev_append acc rest in
        match List.find_opt (fun e' -> Attrs.subset e e') others with
        | Some witness -> Some (e, witness, others)
        | None -> remove_ear (e :: acc) rest)
  in
  (* also: empty edges vanish silently *)
  let stripped = List.filter (fun e -> not (Attrs.is_empty e)) stripped in
  (stripped, remove_ear [] stripped)

let rec reduce_full edges ears =
  let stripped, ear = gyo_step edges in
  match ear with
  | Some (e, witness, rest) -> reduce_full rest ((e, witness) :: ears)
  | None ->
      if not (List.equal Attrs.equal stripped edges) then
        (* vertex stripping made progress; go around again *)
        reduce_full stripped ears
      else (stripped, List.rev ears)

let gyo_reduce edges = fst (reduce_full edges [])

let is_acyclic edges = gyo_reduce edges = []

let join_tree edges =
  let residue, ears = reduce_full edges [] in
  if residue = [] then Some ears else None

let to_string edges =
  "{" ^ String.concat ", " (List.map Attrs.to_string edges) ^ "}"
