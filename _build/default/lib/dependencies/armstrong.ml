let closed_sets ~universe fds =
  let attrs = Attrs.elements universe in
  let rec subsets = function
    | [] -> [ Attrs.empty ]
    | x :: rest ->
        let smaller = subsets rest in
        smaller @ List.map (Attrs.add x) smaller
  in
  List.map (fun s -> Fd.closure s fds) (subsets attrs)
  |> List.sort_uniq Attrs.compare

let relation ~universe fds =
  let attrs = Attrs.elements universe in
  let schema =
    Relational.Schema.make (List.map (fun a -> (a, Relational.Value.TInt)) attrs)
  in
  let closed = closed_sets ~universe fds in
  (* row 0 is all zeros; row i agrees with row 0 exactly on the i-th
     closed set, using values unique to the row elsewhere *)
  let base = List.map (fun _ -> Relational.Value.Int 0) attrs in
  let rows =
    base
    :: List.mapi
         (fun i c ->
           List.mapi
             (fun j a ->
               if Attrs.mem a c then Relational.Value.Int 0
               else Relational.Value.Int (((i + 1) * 100) + j + 1))
             attrs)
         (List.filter (fun c -> not (Attrs.equal c universe)) closed)
  in
  Relational.Relation.of_list schema rows
