module R = Relational

exception Cyclic

type plan = { ears : (int * int) list; independent : int list }

(* GYO over indexed hyperedges: repeatedly strip attributes private to one
   edge and remove ears (edges whose remaining attributes are covered by
   another edge), recording the witness. *)
let plan schemas =
  let edges =
    Array.of_list (List.map (fun s -> Attrs.of_list (R.Schema.attributes s)) schemas)
  in
  let alive = Array.make (Array.length edges) true in
  let ears = ref [] in
  let independent = ref [] in
  let strip () =
    let counts = Hashtbl.create 32 in
    Array.iteri
      (fun i e ->
        if alive.(i) then
          Attrs.iter
            (fun v ->
              Hashtbl.replace counts v
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
            e)
      edges;
    let changed = ref false in
    Array.iteri
      (fun i e ->
        if alive.(i) then begin
          let stripped = Attrs.filter (fun v -> Hashtbl.find counts v > 1) e in
          if not (Attrs.equal stripped e) then begin
            edges.(i) <- stripped;
            changed := true
          end;
          if Attrs.is_empty edges.(i) then begin
            alive.(i) <- false;
            independent := i :: !independent;
            changed := true
          end
        end)
      edges;
    !changed
  in
  let remove_ear () =
    let found = ref None in
    Array.iteri
      (fun i e ->
        if alive.(i) && !found = None then begin
          let witness = ref None in
          Array.iteri
            (fun j e' ->
              if j <> i && alive.(j) && !witness = None && Attrs.subset e e'
              then witness := Some j)
            edges;
          match !witness with
          | Some j -> found := Some (i, j)
          | None -> ()
        end)
      edges;
    match !found with
    | Some (i, j) ->
        alive.(i) <- false;
        ears := (i, j) :: !ears;
        true
    | None -> false
  in
  let rec loop () =
    let s = strip () in
    let e = remove_ear () in
    if s || e then loop ()
  in
  loop ();
  let remaining = Array.exists Fun.id alive in
  if remaining then None
  else Some { ears = List.rev !ears; independent = List.rev !independent }

let plan_of_relations relations =
  match plan (List.map R.Relation.schema relations) with
  | Some p -> p
  | None -> raise Cyclic

let full_reduce relations =
  let p = plan_of_relations relations in
  let rels = Array.of_list relations in
  (* bottom-up: the witness keeps only tuples that join with the ear *)
  List.iter
    (fun (ear, witness) ->
      rels.(witness) <- R.Relation.semijoin rels.(witness) rels.(ear))
    p.ears;
  (* top-down: the ear keeps only tuples that join with the reduced
     witness *)
  List.iter
    (fun (ear, witness) ->
      rels.(ear) <- R.Relation.semijoin rels.(ear) rels.(witness))
    (List.rev p.ears);
  Array.to_list rels

let join relations =
  match relations with
  | [] -> invalid_arg "Yannakakis.join: no relations"
  | _ ->
      let p = plan_of_relations relations in
      let reduced = Array.of_list (full_reduce relations) in
      (* root(s): relations never removed as ears *)
      let eared = List.map fst p.ears in
      let root_indices =
        List.filteri
          (fun i _ -> not (List.mem i eared))
          (List.mapi (fun i _ -> i) relations)
      in
      let acc =
        match root_indices with
        | [] -> assert false (* at least the last ear's witness survives *)
        | first :: rest ->
            List.fold_left
              (fun acc i -> R.Relation.join acc reduced.(i))
              reduced.(first) rest
      in
      (* attach ears in reverse removal order: each ear's witness is
         already in the accumulated join, so intermediates stay within the
         final result's size *)
      List.fold_left
        (fun acc (ear, _) -> R.Relation.join acc reduced.(ear))
        acc (List.rev p.ears)

let semijoin_count relations =
  let p = plan_of_relations relations in
  2 * List.length p.ears
