module R = Relational

exception Not_acyclic
exception Not_connected of string
exception Unknown_attribute of string

(* Tree structure over relation indices, from the Yannakakis plan: ears
   connect to witnesses; independent relations are isolated nodes. *)
let tree_adjacency relations =
  let n = List.length relations in
  match Yannakakis.plan (List.map R.Relation.schema relations) with
  | None -> raise Not_acyclic
  | Some p ->
      let adj = Array.make n [] in
      List.iter
        (fun (ear, witness) ->
          adj.(ear) <- witness :: adj.(ear);
          adj.(witness) <- ear :: adj.(witness))
        p.Yannakakis.ears;
      adj

(* the subtree spanning a set of required nodes, as the union of tree
   paths back to the first of them; None when they are disconnected *)
let spanning_subtree adj n required =
  match required with
  | [] -> Some []
  | first :: _ ->
      let parent = Array.make n (-1) in
      let seen = Array.make n false in
      let queue = Queue.create () in
      seen.(first) <- true;
      Queue.add first queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
            if not seen.(v) then begin
              seen.(v) <- true;
              parent.(v) <- u;
              Queue.add v queue
            end)
          adj.(u)
      done;
      if List.exists (fun node -> not seen.(node)) required then None
      else begin
        let in_subtree = Array.make n false in
        List.iter
          (fun node ->
            let rec mark v =
              if not in_subtree.(v) then begin
                in_subtree.(v) <- true;
                if parent.(v) >= 0 then mark parent.(v)
              end
            in
            mark node)
          required;
        Some
          (List.filter (fun i -> in_subtree.(i)) (List.init n Fun.id))
      end

let qualification relations attrs =
  let schemas = Array.of_list (List.map R.Relation.schema relations) in
  let n = Array.length schemas in
  let adj = tree_adjacency relations in
  (* each attribute can be served by any relation containing it; search
     the (small) space of choices for the smallest spanning subtree *)
  let holders =
    List.map
      (fun a ->
        let hs =
          List.filter (fun i -> R.Schema.mem schemas.(i) a) (List.init n Fun.id)
        in
        if hs = [] then raise (Unknown_attribute a);
        hs)
      (Attrs.elements attrs)
  in
  let rec combos = function
    | [] -> [ [] ]
    | hs :: rest ->
        let tails = combos rest in
        List.concat_map (fun h -> List.map (fun t -> h :: t) tails) hs
  in
  let all_combos =
    let total = List.fold_left (fun acc hs -> acc * List.length hs) 1 holders in
    if total <= 4096 then combos holders
    else [ List.map List.hd holders ] (* too many choices: fix one *)
  in
  let best = ref None in
  List.iter
    (fun combo ->
      let required = List.sort_uniq Int.compare combo in
      match spanning_subtree adj n required with
      | None -> ()
      | Some subtree -> (
          match !best with
          | Some b when List.length b <= List.length subtree -> ()
          | _ -> best := Some subtree))
    all_combos;
  match !best with
  | Some subtree ->
      List.filteri (fun i _ -> List.mem i subtree) relations
  | None ->
      raise
        (Not_connected
           (Printf.sprintf "attributes %s span disconnected relations"
              (Attrs.to_string attrs)))

let window relations attrs =
  let qual = qualification relations attrs in
  match qual with
  | [] -> invalid_arg "Universal.window: no attributes requested"
  | _ ->
      let joined = Yannakakis.join qual in
      R.Relation.project joined (Attrs.elements attrs)
