lib/dependencies/normal_forms.mli: Attrs Fd Mvd
