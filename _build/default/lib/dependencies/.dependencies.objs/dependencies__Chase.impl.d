lib/dependencies/chase.ml: Array Attrs Fd Hashtbl List Mvd Printf String Support
