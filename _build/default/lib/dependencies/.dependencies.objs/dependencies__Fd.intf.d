lib/dependencies/fd.mli: Attrs
