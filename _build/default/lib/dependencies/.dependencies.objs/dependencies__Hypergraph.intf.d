lib/dependencies/hypergraph.mli: Attrs
