lib/dependencies/armstrong.mli: Attrs Fd Relational
