lib/dependencies/mvd.ml: Array Attrs Fd Hashtbl List Printf Relational String
