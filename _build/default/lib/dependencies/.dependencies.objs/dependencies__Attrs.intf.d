lib/dependencies/attrs.mli: Format Set
