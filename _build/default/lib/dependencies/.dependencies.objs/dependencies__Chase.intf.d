lib/dependencies/chase.mli: Attrs Fd Mvd
