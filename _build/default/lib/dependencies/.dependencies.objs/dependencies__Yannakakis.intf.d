lib/dependencies/yannakakis.mli: Relational
