lib/dependencies/normal_forms.ml: Attrs Chase Fd Hashtbl List Mvd Printf
