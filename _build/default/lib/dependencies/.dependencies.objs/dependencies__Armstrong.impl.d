lib/dependencies/armstrong.ml: Attrs Fd List Relational
