lib/dependencies/mvd.mli: Attrs Fd Relational
