lib/dependencies/attrs.ml: Format List Set String
