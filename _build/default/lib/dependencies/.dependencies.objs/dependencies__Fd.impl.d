lib/dependencies/fd.ml: Attrs Int List Printf String
