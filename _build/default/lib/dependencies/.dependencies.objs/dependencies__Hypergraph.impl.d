lib/dependencies/hypergraph.ml: Attrs Hashtbl List Option String
