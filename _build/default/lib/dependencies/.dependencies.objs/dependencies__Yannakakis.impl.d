lib/dependencies/yannakakis.ml: Array Attrs Fun Hashtbl List Option Relational
