lib/dependencies/universal.ml: Array Attrs Fun Int List Printf Queue Relational Yannakakis
