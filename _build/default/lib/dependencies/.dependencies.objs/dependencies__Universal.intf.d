lib/dependencies/universal.mli: Attrs Relational
