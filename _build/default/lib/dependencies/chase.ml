type symbol = Dist of string | Sub of int

type tableau = { universe : string list; rows : symbol array list }

type dependency = Fd_dep of Fd.t | Mvd_dep of Mvd.t

let initial_tableau ~universe components =
  let attrs = Attrs.elements universe in
  let counter = ref 0 in
  let rows =
    List.map
      (fun component ->
        Array.of_list
          (List.map
             (fun a ->
               if Attrs.mem a component then Dist a
               else begin
                 incr counter;
                 Sub !counter
               end)
             attrs))
      components
  in
  { universe = attrs; rows }

let index_of tableau a =
  let rec loop i = function
    | [] -> invalid_arg (Printf.sprintf "chase: unknown attribute %S" a)
    | x :: rest -> if String.equal x a then i else loop (i + 1) rest
  in
  loop 0 tableau.universe

let positions tableau attrs =
  List.map (index_of tableau) (Attrs.elements attrs)

(* preference order for the surviving symbol of an equate step *)
let prefer a b =
  match (a, b) with
  | Dist _, _ -> (a, b)
  | _, Dist _ -> (b, a)
  | Sub i, Sub j -> if i <= j then (a, b) else (b, a)

let substitute rows ~survivor ~victim =
  List.map (Array.map (fun s -> if s = victim then survivor else s)) rows

let dedup_rows rows = List.sort_uniq compare rows

let agree row1 row2 positions =
  List.for_all (fun i -> row1.(i) = row2.(i)) positions

(* One FD application; returns the merged pair so callers can track the
   substitution the chase performs. *)
let fd_step tableau (fd : Fd.t) =
  let px = positions tableau fd.Fd.lhs and py = positions tableau fd.Fd.rhs in
  let rec pairs = function
    | [] -> None
    | r1 :: rest -> (
        match
          List.find_map
            (fun r2 ->
              if agree r1 r2 px then
                List.find_map
                  (fun i ->
                    if r1.(i) <> r2.(i) then Some (r1.(i), r2.(i)) else None)
                  py
              else None)
            rest
        with
        | Some (a, b) -> Some (a, b)
        | None -> pairs rest)
  in
  match pairs tableau.rows with
  | None -> None
  | Some (a, b) ->
      let survivor, victim = prefer a b in
      Some
        ( { tableau with
            rows = dedup_rows (substitute tableau.rows ~survivor ~victim) },
          Some (survivor, victim) )

(* One MVD application: for rows t1 t2 agreeing on X, the swapped row
   (Y from t1, rest from t2) must exist. *)
let mvd_step tableau (mvd : Mvd.t) =
  let x = mvd.Mvd.lhs in
  let y = Attrs.diff mvd.Mvd.rhs x in
  let px = positions tableau x in
  let py = positions tableau y in
  let swap t1 t2 =
    let row = Array.copy t2 in
    List.iter (fun i -> row.(i) <- t1.(i)) py;
    row
  in
  let existing = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace existing r ()) tableau.rows;
  let missing =
    List.concat_map
      (fun t1 ->
        List.filter_map
          (fun t2 ->
            if t1 != t2 && agree t1 t2 px then begin
              let r = swap t1 t2 in
              if Hashtbl.mem existing r then None else Some r
            end
            else None)
          tableau.rows)
      tableau.rows
  in
  match missing with
  | [] -> None
  | rows -> Some ({ tableau with rows = dedup_rows (rows @ tableau.rows) }, None)

let chase_with_subst tableau deps =
  let merges = Hashtbl.create 16 in
  let step t = function
    | Fd_dep fd -> fd_step t fd
    | Mvd_dep mvd -> mvd_step t mvd
  in
  let rec loop t =
    match List.find_map (step t) deps with
    | Some (t', merged) ->
        (match merged with
        | Some (survivor, victim) -> Hashtbl.replace merges victim survivor
        | None -> ());
        loop t'
    | None -> t
  in
  let final = loop tableau in
  let rec resolve s =
    match Hashtbl.find_opt merges s with
    | Some s' -> resolve s'
    | None -> s
  in
  (final, resolve)

let chase tableau deps = fst (chase_with_subst tableau deps)

let has_distinguished_row tableau =
  List.exists
    (Array.for_all (function Dist _ -> true | Sub _ -> false))
    tableau.rows

let lossless_join_mixed ~universe deps components =
  let t = initial_tableau ~universe components in
  has_distinguished_row (chase t deps)

let lossless_join ~universe fds components =
  lossless_join_mixed ~universe (List.map (fun fd -> Fd_dep fd) fds) components

(* Two-row tableau for implication tests: rows agree exactly on [x]. *)
let implication_tableau ~universe x =
  let attrs = Attrs.elements universe in
  let counter = ref 0 in
  let row1 = Array.of_list (List.map (fun a -> Dist a) attrs) in
  let row2 =
    Array.of_list
      (List.map
         (fun a ->
           if Attrs.mem a x then Dist a
           else begin
             incr counter;
             Sub !counter
           end)
         attrs)
  in
  { universe = attrs; rows = [ row1; row2 ] }

let implies_fd ~universe deps (fd : Fd.t) =
  let t = chase (implication_tableau ~universe fd.Fd.lhs) deps in
  let px = positions t fd.Fd.lhs and py = positions t fd.Fd.rhs in
  List.for_all
    (fun r1 ->
      List.for_all (fun r2 -> (not (agree r1 r2 px)) || agree r1 r2 py) t.rows)
    t.rows

let implies_mvd ~universe deps (mvd : Mvd.t) =
  let t0 = implication_tableau ~universe mvd.Mvd.lhs in
  let t, resolve = chase_with_subst t0 deps in
  match t0.rows with
  | [ row1; row2 ] ->
      (* the witness row: Y-part from row1, remainder from row2 — mapped
         through the substitution the chase performed *)
      let y = Attrs.diff mvd.Mvd.rhs mvd.Mvd.lhs in
      let py = positions t0 y in
      let target = Array.copy row2 in
      List.iter (fun i -> target.(i) <- row1.(i)) py;
      let target = Array.map resolve target in
      List.exists (fun row -> row = target) t.rows
  | _ -> assert false

let symbol_to_string = function
  | Dist a -> "a_" ^ a
  | Sub i -> "b" ^ string_of_int i

let to_string t =
  let header = t.universe in
  let rows =
    List.map (fun r -> Array.to_list (Array.map symbol_to_string r)) t.rows
  in
  Support.Table.render ~header rows
