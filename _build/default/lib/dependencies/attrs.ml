include Set.Make (String)

let of_string s =
  let seps = [ ' '; ','; ';' ] in
  let has_sep = String.exists (fun c -> List.mem c seps) s in
  if has_sep then begin
    String.split_on_char ' ' (String.map (fun c -> if List.mem c seps then ' ' else c) s)
    |> List.filter (fun x -> x <> "")
    |> of_list
  end
  else
    (* run-together single letters *)
    List.init (String.length s) (fun i -> String.make 1 s.[i]) |> of_list

let to_string t =
  let names = elements t in
  if List.for_all (fun n -> String.length n = 1) names then
    String.concat "" names
  else String.concat "," names

let pp fmt t = Format.pp_print_string fmt (to_string t)
