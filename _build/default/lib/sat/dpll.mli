(** A DPLL satisfiability solver with unit propagation and the
    pure-literal rule.

    "Is Cook's Theorem a negative result? … seen as a result in the study
    of algorithms for satisfiability, it is a definite setback, although
    still valuable as a warning against futile research directions" (§3).
    This solver is the executable side of that discussion: complete, and
    exponential in the worst case. *)

type result = Sat of Cnf.assignment | Unsat

type stats = { decisions : int; propagations : int }

val solve_with :
  ?unit_propagation:bool -> ?pure_literal:bool -> Cnf.t -> result * stats
(** The solver with its two inference rules individually switchable — the
    ablation benchmark measures what each contributes. *)

val solve : Cnf.t -> result
(** The returned assignment covers every variable of the formula (unforced
    variables default to false) and satisfies it ([Sat] results are
    checked by the tests against {!Cnf.eval}). *)

val solve_with_stats : Cnf.t -> result * stats

val is_satisfiable : Cnf.t -> bool

val brute_force : Cnf.t -> result
(** Exhaustive reference oracle for the tests (2^n). *)
