(** Propositional formulas in conjunctive normal form.

    Literals are non-zero integers (DIMACS convention): [v] is the
    positive literal of variable [v > 0], [-v] its negation. *)

type literal = int
type clause = literal list
type t = clause list

type assignment = (int * bool) list
(** Variable to truth value. *)

val variables : t -> int list
(** Sorted, without duplicates. *)

val eval_clause : assignment -> clause -> bool
(** An unassigned variable counts as false (total evaluation is the
    caller's responsibility). *)

val eval : assignment -> t -> bool

val is_satisfied_by : assignment -> t -> bool
(** Alias of {!eval}. *)

val to_dimacs : t -> string
val of_dimacs : string -> t
(** Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
(** Human-readable: [(1 ∨ ¬2) ∧ (3)]. *)
