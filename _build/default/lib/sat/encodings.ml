type var_map = (string * int) list

(* A tiny variable allocator keyed by name. *)
let allocator () =
  let table = Hashtbl.create 64 in
  let next = ref 0 in
  let var name =
    match Hashtbl.find_opt table name with
    | Some v -> v
    | None ->
        incr next;
        Hashtbl.add table name !next;
        !next
  in
  let mapping () = Hashtbl.fold (fun name v acc -> (name, v) :: acc) table [] in
  (var, mapping)

let three_coloring ~edges ~nodes =
  let var, mapping = allocator () in
  let colour v k = var (Printf.sprintf "c%d_%d" v k) in
  let at_least_one = List.map (fun v -> [ colour v 0; colour v 1; colour v 2 ]) nodes in
  let at_most_one =
    List.concat_map
      (fun v ->
        [ [ -colour v 0; -colour v 1 ];
          [ -colour v 0; -colour v 2 ];
          [ -colour v 1; -colour v 2 ] ])
      nodes
  in
  let edge_clauses =
    List.concat_map
      (fun (u, w) ->
        if u = w then [ [] ] (* a self-loop is uncolourable *)
        else
          List.map (fun k -> [ -colour u k; -colour w k ]) [ 0; 1; 2 ])
      edges
  in
  ((at_least_one @ at_most_one @ edge_clauses), mapping ())

let decode_coloring var_map assignment =
  List.filter_map
    (fun (name, v) ->
      if List.assoc_opt v assignment = Some true then
        (* names look like "c<node>_<colour>"; Scanf's %d would swallow
           the underscore (numeric separator), so split by hand *)
        match String.split_on_char '_' name with
        | [ head; colour ]
          when String.length head > 1 && head.[0] = 'c' -> (
            match
              ( int_of_string_opt (String.sub head 1 (String.length head - 1)),
                int_of_string_opt colour )
            with
            | Some node, Some colour -> Some (node, colour)
            | _ -> None)
        | _ -> None
      else None)
    var_map

module D = Datalog
module Ts = D.Facts.Tuple_set

let active_domain facts =
  let module Vs = Set.Make (struct
    type t = Relational.Value.t

    let compare = Relational.Value.compare_poly
  end) in
  let vs =
    List.fold_left
      (fun acc pred ->
        Ts.fold
          (fun tup acc -> Array.fold_left (fun acc v -> Vs.add v acc) acc tup)
          (D.Facts.get facts pred) acc)
      Vs.empty (D.Facts.preds facts)
  in
  Vs.elements vs

let cq_vars (cq : D.Containment.cq) =
  List.concat_map D.Ast.atom_vars cq.D.Containment.body
  |> List.sort_uniq String.compare

let boolean_cq (cq : D.Containment.cq) facts =
  let var, mapping = allocator () in
  let domain = Array.of_list (active_domain facts) in
  let n = Array.length domain in
  let qvars = cq_vars cq in
  let assign_var qv k = var (Printf.sprintf "h_%s_%d" qv k) in
  (* each query variable maps to exactly one domain element *)
  let at_least_one =
    List.map (fun qv -> List.init n (fun k -> assign_var qv k)) qvars
  in
  let at_most_one =
    List.concat_map
      (fun qv ->
        List.concat
          (List.init n (fun k ->
               List.filteri (fun k' _ -> k' > k) (List.init n Fun.id)
               |> List.map (fun k' -> [ -assign_var qv k; -assign_var qv k' ]))))
      qvars
  in
  (* per atom: some matching tuple is selected, and selecting it forces the
     variables' images *)
  let atom_clauses =
    List.concat (List.mapi
      (fun ai (atom : D.Ast.atom) ->
        let tuples = Ts.elements (D.Facts.get facts atom.D.Ast.pred) in
        let candidates =
          (* tuples consistent with the atom's constants *)
          List.filteri
            (fun _ tup ->
              List.length atom.D.Ast.args = Array.length tup
              && List.for_all2
                   (fun arg v ->
                     match arg with
                     | D.Ast.Const c -> Relational.Value.equal c v
                     | D.Ast.Var _ -> true)
                   atom.D.Ast.args (Array.to_list tup))
            tuples
        in
        let pick_vars =
          List.mapi
            (fun ti _ -> var (Printf.sprintf "pick_%d_%d" ai ti))
            candidates
        in
        let index_of v =
          let rec loop k =
            if k >= n then
              invalid_arg "boolean_cq: fact value outside active domain"
            else if Relational.Value.equal domain.(k) v then k
            else loop (k + 1)
          in
          loop 0
        in
        let implications =
          List.concat
            (List.mapi
               (fun ti tup ->
                 let pick = List.nth pick_vars ti in
                 List.concat
                   (List.mapi
                      (fun pos arg ->
                        match arg with
                        | D.Ast.Var qv ->
                            [ [ -pick; assign_var qv (index_of tup.(pos)) ] ]
                        | D.Ast.Const _ -> [])
                      atom.D.Ast.args))
               (List.map
                  (fun tup -> tup)
                  candidates))
        in
        (match pick_vars with [] -> [ [] ] | _ -> [ pick_vars ]) @ implications)
      cq.D.Containment.body)
  in
  ((at_least_one @ at_most_one @ atom_clauses), mapping ())

let cq_holds_via_sat cq facts =
  let vars = cq_vars cq in
  if vars <> [] && active_domain facts = [] then false
  else begin
    let cnf, _ = boolean_cq cq facts in
    Dpll.is_satisfiable cnf
  end

let cq_holds_directly (cq : D.Containment.cq) facts =
  let rec search env = function
    | [] -> true
    | (atom : D.Ast.atom) :: rest ->
        let tuples = D.Facts.get facts atom.D.Ast.pred in
        Ts.exists
          (fun tup ->
            match D.Engine.match_tuple atom.D.Ast.args tup env with
            | Some env' -> search env' rest
            | None -> false)
          tuples
  in
  search [] cq.D.Containment.body
