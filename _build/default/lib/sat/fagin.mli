(** A miniature of Fagin's theorem: deciding existential second-order
    sentences on finite structures by reduction to SAT.

    Fagin's theorem [Fa] "makes such a connection between computation and
    logic even more directly" (§3): NP = properties definable by
    ∃SO sentences.  Here the model checker grounds the first-order part
    over the structure's domain, turns the guessed relations' atoms into
    propositional variables, and hands the result to the DPLL solver —
    NP-ness made operational. *)

type term = V of string | C of int

type fo =
  | Guess of string * term list  (** atom over a guessed relation *)
  | Base of string * term list  (** atom over an input relation *)
  | Eq of term * term
  | Not of fo
  | And of fo * fo
  | Or of fo * fo
  | Implies of fo * fo
  | Forall of string * fo
  | Exists of string * fo

type sentence = {
  guesses : (string * int) list;  (** guessed relation names with arities *)
  matrix : fo;  (** must be a sentence: no free first-order variables *)
}

type structure = {
  domain : int list;
  base : (string * int list list) list;  (** input relations *)
}

exception Ill_formed of string

val decide : structure -> sentence -> bool
(** Raises {!Ill_formed} on free variables, unknown relations, or arity
    mismatches. *)

val model : structure -> sentence -> (string * int list list) list option
(** The guessed relations of some satisfying assignment, when one
    exists. *)

val three_colorability : sentence
(** The classic ∃SO sentence over a base relation [edge/2]: ∃ R G B,
    every vertex has exactly one colour and no edge is monochromatic.
    (Vertices are the domain.) *)

val structure_of_graph : edges:(int * int) list -> nodes:int list -> structure
