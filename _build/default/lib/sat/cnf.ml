type literal = int
type clause = literal list
type t = clause list

type assignment = (int * bool) list

let variables cnf =
  List.concat_map (List.map abs) cnf |> List.sort_uniq Int.compare

let literal_holds assignment lit =
  match List.assoc_opt (abs lit) assignment with
  | Some value -> if lit > 0 then value else not value
  | None -> false

let eval_clause assignment clause = List.exists (literal_holds assignment) clause

let eval assignment cnf = List.for_all (eval_clause assignment) cnf

let is_satisfied_by = eval

let to_dimacs cnf =
  let nvars = match variables cnf with [] -> 0 | vs -> List.fold_left max 0 vs in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length cnf));
  List.iter
    (fun clause ->
      List.iter (fun lit -> Buffer.add_string buf (string_of_int lit ^ " ")) clause;
      Buffer.add_string buf "0\n")
    cnf;
  Buffer.contents buf

let of_dimacs text =
  let lines = String.split_on_char '\n' text in
  let clauses = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' || line.[0] = 'p' then ()
      else begin
        let lits =
          String.split_on_char ' ' line
          |> List.filter (fun t -> t <> "")
          |> List.map (fun t ->
                 match int_of_string_opt t with
                 | Some i -> i
                 | None ->
                     invalid_arg
                       (Printf.sprintf "of_dimacs: bad literal %S" t))
        in
        match List.rev lits with
        | 0 :: rest -> clauses := List.rev rest :: !clauses
        | _ -> invalid_arg "of_dimacs: clause line does not end with 0"
      end)
    lines;
  List.rev !clauses

let to_string cnf =
  let clause_str clause =
    "("
    ^ String.concat " | "
        (List.map
           (fun lit ->
             if lit > 0 then string_of_int lit else "~" ^ string_of_int (-lit))
           clause)
    ^ ")"
  in
  String.concat " & " (List.map clause_str cnf)
