type result = Sat of Cnf.assignment | Unsat

type stats = { decisions : int; propagations : int }

(* Simplify a CNF under the decision lit: drop satisfied clauses, remove
   the falsified literal elsewhere.  Returns None when an empty clause
   appears. *)
let assign cnf lit =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | clause :: rest ->
        if List.mem lit clause then go acc rest
        else begin
          let clause' = List.filter (fun l -> l <> -lit) clause in
          if clause' = [] then None else go (clause' :: acc) rest
        end
  in
  go [] cnf

let find_unit cnf =
  List.find_map (function [ lit ] -> Some lit | _ -> None) cnf

let find_pure cnf =
  let polarity = Hashtbl.create 32 in
  List.iter
    (List.iter (fun lit ->
         let v = abs lit in
         match Hashtbl.find_opt polarity v with
         | None -> Hashtbl.replace polarity v (Some (lit > 0))
         | Some (Some p) when p <> (lit > 0) -> Hashtbl.replace polarity v None
         | Some _ -> ()))
    cnf;
  Hashtbl.fold
    (fun v pol acc ->
      match (acc, pol) with
      | Some _, _ -> acc
      | None, Some p -> Some (if p then v else -v)
      | None, None -> None)
    polarity None

let solve_with ?(unit_propagation = true) ?(pure_literal = true) cnf =
  let decisions = ref 0 and propagations = ref 0 in
  let all_vars = Cnf.variables cnf in
  let rec go cnf trail =
    match cnf with
    | [] -> Some trail
    | _ -> (
        match (if unit_propagation then find_unit cnf else None) with
        | Some lit -> (
            incr propagations;
            match assign cnf lit with
            | None -> None
            | Some cnf' -> go cnf' (lit :: trail))
        | None -> (
            match (if pure_literal then find_pure cnf else None) with
            | Some lit -> (
                incr propagations;
                match assign cnf lit with
                | None -> None
                | Some cnf' -> go cnf' (lit :: trail))
            | None -> (
                (* branch on the first literal of the first clause *)
                match cnf with
                | [] -> Some trail
                | [] :: _ -> None
                | (lit :: _) :: _ -> (
                    incr decisions;
                    let try_branch l =
                      match assign cnf l with
                      | None -> None
                      | Some cnf' -> go cnf' (l :: trail)
                    in
                    match try_branch lit with
                    | Some trail -> Some trail
                    | None -> try_branch (-lit)))))
  in
  let result =
    match go cnf [] with
    | None -> Unsat
    | Some trail ->
        let forced = List.map (fun lit -> (abs lit, lit > 0)) trail in
        let full =
          List.map
            (fun v ->
              match List.assoc_opt v forced with
              | Some b -> (v, b)
              | None -> (v, false))
            all_vars
        in
        Sat full
  in
  (result, { decisions = !decisions; propagations = !propagations })

let solve_with_stats cnf = solve_with cnf

let solve cnf = fst (solve_with_stats cnf)

let is_satisfiable cnf = match solve cnf with Sat _ -> true | Unsat -> false

let brute_force cnf =
  let vars = Cnf.variables cnf in
  let rec go assignment = function
    | [] -> if Cnf.eval assignment cnf then Some assignment else None
    | v :: rest -> (
        match go ((v, true) :: assignment) rest with
        | Some a -> Some a
        | None -> go ((v, false) :: assignment) rest)
  in
  match go [] vars with Some a -> Sat a | None -> Unsat
