type term = V of string | C of int

type fo =
  | Guess of string * term list
  | Base of string * term list
  | Eq of term * term
  | Not of fo
  | And of fo * fo
  | Or of fo * fo
  | Implies of fo * fo
  | Forall of string * fo
  | Exists of string * fo

type sentence = { guesses : (string * int) list; matrix : fo }

type structure = { domain : int list; base : (string * int list list) list }

exception Ill_formed of string

let err fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

(* Propositional circuits produced by grounding. *)
type circuit =
  | Ctrue
  | Cfalse
  | Cvar of int
  | Cnot of circuit
  | Cand of circuit list
  | Cor of circuit list

let value env = function
  | C k -> k
  | V x -> (
      match List.assoc_opt x env with
      | Some k -> k
      | None -> err "free first-order variable %S" x)

let ground structure sentence =
  let var_table = Hashtbl.create 64 in
  let next_var = ref 0 in
  let guess_var rel tuple =
    let key = (rel, tuple) in
    match Hashtbl.find_opt var_table key with
    | Some v -> v
    | None ->
        incr next_var;
        Hashtbl.add var_table key !next_var;
        !next_var
  in
  let base_holds rel tuple =
    match List.assoc_opt rel structure.base with
    | Some rows -> List.mem tuple rows
    | None -> err "unknown base relation %S" rel
  in
  let guess_arity rel =
    match List.assoc_opt rel sentence.guesses with
    | Some a -> a
    | None -> err "unknown guessed relation %S" rel
  in
  let rec go env = function
    | Guess (rel, ts) ->
        let tuple = List.map (value env) ts in
        if List.length tuple <> guess_arity rel then
          err "guessed relation %S arity mismatch" rel;
        Cvar (guess_var rel tuple)
    | Base (rel, ts) ->
        if base_holds rel (List.map (value env) ts) then Ctrue else Cfalse
    | Eq (a, b) -> if value env a = value env b then Ctrue else Cfalse
    | Not f -> Cnot (go env f)
    | And (f, g) -> Cand [ go env f; go env g ]
    | Or (f, g) -> Cor [ go env f; go env g ]
    | Implies (f, g) -> Cor [ Cnot (go env f); go env g ]
    | Forall (x, f) ->
        Cand (List.map (fun k -> go ((x, k) :: env) f) structure.domain)
    | Exists (x, f) ->
        Cor (List.map (fun k -> go ((x, k) :: env) f) structure.domain)
  in
  let circuit = go [] sentence.matrix in
  let decode assignment =
    List.map
      (fun (rel, _) ->
        let rows =
          Hashtbl.fold
            (fun (r, tuple) v acc ->
              if String.equal r rel && List.assoc_opt v assignment = Some true
              then tuple :: acc
              else acc)
            var_table []
        in
        (rel, List.sort compare rows))
      sentence.guesses
  in
  (circuit, next_var, decode)

(* Tseitin transformation: each internal gate gets a fresh variable. *)
let tseitin circuit next_var =
  let clauses = ref [] in
  let emit c = clauses := c :: !clauses in
  let fresh () =
    incr next_var;
    !next_var
  in
  (* returns a literal equivalent to the subcircuit, or a constant *)
  let rec enc = function
    | Ctrue -> `Const true
    | Cfalse -> `Const false
    | Cvar v -> `Lit v
    | Cnot f -> (
        match enc f with
        | `Const b -> `Const (not b)
        | `Lit l -> `Lit (-l))
    | Cand fs -> (
        let parts = List.map enc fs in
        if List.exists (fun p -> p = `Const false) parts then `Const false
        else begin
          let lits =
            List.filter_map (function `Lit l -> Some l | `Const _ -> None) parts
          in
          match lits with
          | [] -> `Const true
          | [ l ] -> `Lit l
          | _ ->
              let g = fresh () in
              List.iter (fun l -> emit [ -g; l ]) lits;
              emit (g :: List.map (fun l -> -l) lits);
              `Lit g
        end)
    | Cor fs -> (
        let parts = List.map enc fs in
        if List.exists (fun p -> p = `Const true) parts then `Const true
        else begin
          let lits =
            List.filter_map (function `Lit l -> Some l | `Const _ -> None) parts
          in
          match lits with
          | [] -> `Const false
          | [ l ] -> `Lit l
          | _ ->
              let g = fresh () in
              List.iter (fun l -> emit [ g; -l ]) lits;
              emit (-g :: lits);
              `Lit g
        end)
  in
  match enc circuit with
  | `Const true -> Some []
  | `Const false -> None
  | `Lit root ->
      emit [ root ];
      Some !clauses

let solve structure sentence =
  let circuit, next_var, decode = ground structure sentence in
  match tseitin circuit next_var with
  | None -> None
  | Some cnf -> (
      match Dpll.solve cnf with
      | Dpll.Unsat -> None
      | Dpll.Sat assignment -> Some (decode assignment))

let decide structure sentence = solve structure sentence <> None

let model = solve

let three_colorability =
  let x = V "x" and y = V "y" in
  let one_of =
    Or (Guess ("r", [ x ]), Or (Guess ("g", [ x ]), Guess ("b", [ x ])))
  in
  let at_most =
    And
      ( Not (And (Guess ("r", [ x ]), Guess ("g", [ x ]))),
        And
          ( Not (And (Guess ("r", [ x ]), Guess ("b", [ x ]))),
            Not (And (Guess ("g", [ x ]), Guess ("b", [ x ]))) ) )
  in
  let edge_ok colour =
    Implies
      ( Base ("edge", [ x; y ]),
        Not (And (Guess (colour, [ x ]), Guess (colour, [ y ]))) )
  in
  {
    guesses = [ ("r", 1); ("g", 1); ("b", 1) ];
    matrix =
      And
        ( Forall ("x", And (one_of, at_most)),
          Forall
            ( "x",
              Forall
                ("y", And (edge_ok "r", And (edge_ok "g", edge_ok "b"))) ) );
  }

let structure_of_graph ~edges ~nodes =
  {
    domain = nodes;
    base = [ ("edge", List.map (fun (a, b) -> [ a; b ]) edges) ];
  }
