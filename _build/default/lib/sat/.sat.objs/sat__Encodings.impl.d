lib/sat/encodings.ml: Array Datalog Dpll Fun Hashtbl List Printf Relational Set String
