lib/sat/cnf.ml: Buffer Int List Printf String
