lib/sat/encodings.mli: Cnf Datalog
