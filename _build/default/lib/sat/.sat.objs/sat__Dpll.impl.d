lib/sat/dpll.ml: Cnf Hashtbl List
