lib/sat/fagin.mli:
