lib/sat/cnf.mli:
