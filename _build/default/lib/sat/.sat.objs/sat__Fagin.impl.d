lib/sat/fagin.ml: Dpll Hashtbl List Printf String
