(** Cook-style reductions into SAT.

    Two database-flavoured NP-complete problems are reduced to CNF:
    graph 3-colorability, and Boolean conjunctive-query evaluation
    (equivalently, homomorphism existence — the database side of the
    Cook/Fagin connection the essay highlights in §3). *)

type var_map = (string * int) list
(** Names the encoder gave to CNF variables, for decoding models. *)

val three_coloring : edges:(int * int) list -> nodes:int list -> Cnf.t * var_map
(** Variable ["c<v>_<k>"] means node [v] gets colour [k ∈ {0,1,2}]. *)

val decode_coloring : var_map -> Cnf.assignment -> (int * int) list
(** Node → colour pairs from a satisfying assignment. *)

val boolean_cq :
  Datalog.Containment.cq ->
  Datalog.Facts.t ->
  Cnf.t * var_map
(** Satisfiable iff the Boolean CQ (head ignored) has a homomorphism into
    the facts.  Variable ["h_<qvar>_<k>"] means query variable [qvar]
    maps to the [k]-th value of the active domain; per-atom auxiliary
    variables pick a supporting tuple. *)

val cq_holds_via_sat : Datalog.Containment.cq -> Datalog.Facts.t -> bool

val cq_holds_directly : Datalog.Containment.cq -> Datalog.Facts.t -> bool
(** Backtracking homomorphism search, the baseline the SAT route is
    compared against. *)
